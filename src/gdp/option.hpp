// Option model for generative design pattern templates.
//
// A CO₂P₃S pattern template is "a set of options for adapting the generated
// code to the specific application context" (paper, Section I).  An
// OptionTable declares the options (name, legal values, default — Table 1's
// first two columns) plus cross-option constraints; an OptionSet holds one
// concrete assignment (Table 1's application columns).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace cops::gdp {

enum class OptionType { kBool, kEnum, kInt };

struct OptionSpec {
  std::string key;    // machine name, e.g. "file_cache"
  std::string label;  // display name, e.g. "O6: File cache"
  OptionType type = OptionType::kBool;
  std::vector<std::string> legal_values;  // enum values (lower-case)
  std::string default_value;
  long min_value = 0;  // for kInt
  long max_value = 0;

  [[nodiscard]] bool value_is_legal(const std::string& value) const;
};

class OptionSet {
 public:
  void set(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const;
  // True for "yes"/"true"/"on"/"1" (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

class OptionTable {
 public:
  using Constraint =
      std::function<std::string(const OptionSet&)>;  // "" = satisfied

  void add(OptionSpec spec);
  void add_constraint(std::string description, Constraint check);

  [[nodiscard]] const OptionSpec* find(const std::string& key) const;
  [[nodiscard]] const std::vector<OptionSpec>& specs() const { return specs_; }

  // Fills in defaults for unset options.
  [[nodiscard]] OptionSet with_defaults(OptionSet partial) const;

  // Checks every value against its spec and every constraint; collects all
  // violations.
  [[nodiscard]] std::vector<std::string> validate(const OptionSet& set) const;

 private:
  std::vector<OptionSpec> specs_;
  std::vector<std::pair<std::string, Constraint>> constraints_;
};

}  // namespace cops::gdp
