// PatternTemplate — a generative design pattern: an option table plus a set
// of conditional template files that, instantiated under concrete option
// values, emit a custom application framework (CO₂P₃S's core mechanism).
//
// The crosscut analysis reproduces Table 2 of the paper: for each generated
// unit (row) and each option (column),
//   'o' — the option decides whether the unit exists at all
//         (the file's inclusion condition references it), and
//   '+' — the code generated for the unit depends on the option value
//         (directives or substitutions in its body reference it).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/source_stats.hpp"
#include "common/status.hpp"
#include "gdp/option.hpp"
#include "gdp/template_lang.hpp"

namespace cops::gdp {

struct TemplateFile {
  std::string output_path;  // relative path in the generated tree
  std::string unit_name;    // row label for the crosscut matrix
  std::string condition;    // inclusion expression; empty = always generated
  std::string source;       // template text
};

struct GeneratedFile {
  std::string path;  // absolute path written
  SourceStats stats;
  size_t bytes = 0;
};

struct GenerationReport {
  std::vector<GeneratedFile> files;
  SourceStats totals;

  [[nodiscard]] std::string summary() const;
};

struct CrosscutCell {
  bool existence = false;  // 'o'
  bool body = false;       // '+'
};

class PatternTemplate {
 public:
  PatternTemplate(std::string name, OptionTable options)
      : name_(std::move(name)), options_(std::move(options)) {}

  void add_file(TemplateFile file) { files_.push_back(std::move(file)); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const OptionTable& options() const { return options_; }
  [[nodiscard]] const std::vector<TemplateFile>& files() const {
    return files_;
  }

  // Validates + fills defaults, then writes the instantiated files under
  // `outdir` (creating it).  `extras` supplies non-option substitutions
  // (e.g. the application name).
  Result<GenerationReport> generate(
      OptionSet options, const std::string& outdir,
      const std::map<std::string, std::string>& extras = {}) const;

  // Renders files in memory without touching the filesystem.
  Result<std::map<std::string, std::string>> render_all(
      OptionSet options,
      const std::map<std::string, std::string>& extras = {}) const;

  // unit name → option key → cell (Table 2 analog).
  [[nodiscard]] Result<std::map<std::string, std::map<std::string, CrosscutCell>>>
  crosscut() const;

  // Formats the crosscut as a fixed-width text table in Table 1 option
  // order (columns O1..O12).
  [[nodiscard]] Result<std::string> format_crosscut_table() const;

 private:
  std::string name_;
  OptionTable options_;
  std::vector<TemplateFile> files_;
};

// ---- the N-Server pattern template (nserver_template.cpp) -------------------

PatternTemplate make_nserver_template();

// Table 1 presets: the option settings the paper used for each application.
OptionSet nserver_http_options();  // COPS-HTTP column
OptionSet nserver_ftp_options();   // COPS-FTP column

// ---- the generic Reactor pattern template (reactor_template.cpp) ------------
// The paper's generality/efficiency tradeoff (Section IV): "Without the
// inclusion of the network server application specific code, the N-Server
// would be a template that instantiates the Reactor design pattern ...
// [usable] for many types of applications, such as event-driven simulations
// and graphical user interface frameworks."  This template is that generic
// form: it generates an event-loop application skeleton with no networking.
PatternTemplate make_reactor_template();

// Finds a built-in pattern template by name ("nserver", "reactor").
std::optional<PatternTemplate> find_pattern(const std::string& name);

}  // namespace cops::gdp
