// The template language of the generative pattern engine.
//
// CO₂P₃S generates framework code by instantiating templates under the
// chosen option values, including or excluding feature code at generation
// time — "application code underlying each feature can be included or
// excluded at code generation time, based on the corresponding option
// settings" (paper, Section III).  This processor implements that with
// line-oriented directives embedded in otherwise ordinary source text:
//
//   //% if scheduling
//   int priority_ = 0;                 // only emitted when O8 is on
//   //% elif mode == "debug"
//   ...
//   //% else
//   ...
//   //% end
//
// and `${key}` value substitution.  Expressions support identifiers (option
// keys, truthy when yes/true/on/1 or non-empty non-"no"), `==`/`!=` against
// quoted strings or barewords, `!`, `&&`, `||`, and parentheses.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "gdp/option.hpp"

namespace cops::gdp {

// A parsed boolean expression over option values.
class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] virtual bool evaluate(const OptionSet& options) const = 0;
  virtual void collect_keys(std::set<std::string>& out) const = 0;
};

// Parses an expression; error status on bad syntax.
Result<std::shared_ptr<Expr>> parse_expr(const std::string& text);

// A parsed template, renderable against any OptionSet.
class Template {
 public:
  static Result<Template> parse(const std::string& source);

  // Renders with option values; `${key}` falls back to `extras` when the
  // key is not an option.
  [[nodiscard]] Result<std::string> render(
      const OptionSet& options,
      const std::map<std::string, std::string>& extras = {}) const;

  // Option keys referenced by condition directives (drives Table 2's 'o'/'+'
  // crosscut analysis).
  [[nodiscard]] const std::set<std::string>& condition_keys() const {
    return condition_keys_;
  }
  // Keys referenced via ${...} substitution.
  [[nodiscard]] const std::set<std::string>& substitution_keys() const {
    return substitution_keys_;
  }

  // Parse-tree node; public so the out-of-line renderer can traverse it.
  struct Node;

 private:
  Template() = default;

  std::vector<std::shared_ptr<Node>> nodes_;
  std::set<std::string> condition_keys_;
  std::set<std::string> substitution_keys_;
};

}  // namespace cops::gdp
