#include "gdp/pattern_template.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cops::gdp {

std::string GenerationReport::summary() const {
  std::ostringstream out;
  out << files.size() << " files, " << totals.classes << " classes, "
      << totals.methods << " methods, " << totals.ncss << " NCSS";
  return out.str();
}

Result<std::map<std::string, std::string>> PatternTemplate::render_all(
    OptionSet options, const std::map<std::string, std::string>& extras) const {
  options = options_.with_defaults(std::move(options));
  const auto problems = options_.validate(options);
  if (!problems.empty()) {
    std::string all;
    for (const auto& p : problems) {
      if (!all.empty()) all += "; ";
      all += p;
    }
    return Status::invalid_argument(all);
  }

  std::map<std::string, std::string> rendered;
  for (const auto& file : files_) {
    if (!file.condition.empty()) {
      auto expr = parse_expr(file.condition);
      if (!expr.is_ok()) {
        return Status::invalid_argument("file " + file.output_path +
                                        " condition: " +
                                        expr.status().message());
      }
      if (!expr.value()->evaluate(options)) continue;
    }
    auto tmpl = Template::parse(file.source);
    if (!tmpl.is_ok()) {
      return Status::invalid_argument("file " + file.output_path + ": " +
                                      tmpl.status().message());
    }
    auto text = tmpl.value().render(options, extras);
    if (!text.is_ok()) {
      return Status::invalid_argument("file " + file.output_path + ": " +
                                      text.status().message());
    }
    rendered.emplace(file.output_path, std::move(text).take());
  }
  return rendered;
}

Result<GenerationReport> PatternTemplate::generate(
    OptionSet options, const std::string& outdir,
    const std::map<std::string, std::string>& extras) const {
  auto rendered = render_all(std::move(options), extras);
  if (!rendered.is_ok()) return rendered.status();

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(outdir, ec);
  if (ec) return Status::io_error("mkdir " + outdir + ": " + ec.message());

  GenerationReport report;
  for (const auto& [path, contents] : rendered.value()) {
    const fs::path full = fs::path(outdir) / path;
    fs::create_directories(full.parent_path(), ec);
    std::ofstream out(full, std::ios::binary);
    if (!out) return Status::io_error("cannot write " + full.string());
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    GeneratedFile generated;
    generated.path = full.string();
    generated.bytes = contents.size();
    const auto ext = full.extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
        ext == ".inc") {
      generated.stats = analyze_source(contents);
    }
    report.totals += generated.stats;
    report.files.push_back(std::move(generated));
  }
  return report;
}

Result<std::map<std::string, std::map<std::string, CrosscutCell>>>
PatternTemplate::crosscut() const {
  std::map<std::string, std::map<std::string, CrosscutCell>> matrix;
  for (const auto& file : files_) {
    auto& row = matrix[file.unit_name];
    if (!file.condition.empty()) {
      auto expr = parse_expr(file.condition);
      if (!expr.is_ok()) return expr.status();
      std::set<std::string> keys;
      expr.value()->collect_keys(keys);
      for (const auto& key : keys) row[key].existence = true;
    }
    auto tmpl = Template::parse(file.source);
    if (!tmpl.is_ok()) return tmpl.status();
    for (const auto& key : tmpl.value().condition_keys()) {
      if (options_.find(key) != nullptr) row[key].body = true;
    }
    for (const auto& key : tmpl.value().substitution_keys()) {
      if (options_.find(key) != nullptr) row[key].body = true;
    }
  }
  return matrix;
}

Result<std::string> PatternTemplate::format_crosscut_table() const {
  auto matrix = crosscut();
  if (!matrix.is_ok()) return matrix.status();

  // Column order = declaration order of the option table (O1..O12).
  std::vector<std::string> columns;
  for (const auto& spec : options_.specs()) columns.push_back(spec.key);

  size_t name_width = 10;
  // Preserve template declaration order for rows.
  std::vector<std::string> rows;
  for (const auto& file : files_) {
    if (std::find(rows.begin(), rows.end(), file.unit_name) == rows.end()) {
      rows.push_back(file.unit_name);
      name_width = std::max(name_width, file.unit_name.size());
    }
  }

  std::ostringstream out;
  out << std::string(name_width, ' ') << " |";
  for (size_t i = 0; i < columns.size(); ++i) {
    out << " O" << (i + 1 < 10 ? " " : "") << (i + 1) << " |";
  }
  out << "\n";
  out << std::string(name_width, '-') << "-+";
  for (size_t i = 0; i < columns.size(); ++i) out << "-----+";
  out << "\n";
  for (const auto& unit : rows) {
    out << unit << std::string(name_width - unit.size(), ' ') << " |";
    const auto& row = matrix.value().at(unit);
    for (const auto& key : columns) {
      auto it = row.find(key);
      char mark = ' ';
      if (it != row.end()) {
        if (it->second.existence) {
          mark = 'o';
        } else if (it->second.body) {
          mark = '+';
        }
      }
      out << "  " << mark << "  |";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace cops::gdp
