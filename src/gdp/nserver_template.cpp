// The N-Server pattern template definition: Table 1's options, their
// constraints, and the conditional template files whose instantiation is the
// "generated framework".
//
// Correspondence to the paper: CO₂P₃S emitted the entire framework source
// per option setting.  Here the invariant framework code is factored into
// the cops_nserver library and the generator emits the *varying* layer —
// compile-time traits, per-feature configuration headers, hook-method stubs
// and the server main — with feature code included or excluded at generation
// time.  The crosscut matrix over these units reproduces Table 2's structure
// (existence 'o' vs value-dependence '+').
#include "gdp/pattern_template.hpp"

namespace cops::gdp {
namespace {

OptionTable make_nserver_option_table() {
  OptionTable table;
  table.add({"dispatcher_threads", "O1: # of dispatcher threads",
             OptionType::kInt, {}, "1", 1, 64});
  table.add({"separate_pool", "O2: Separate thread pool for event handling",
             OptionType::kBool, {}, "yes"});
  table.add({"encode_decode", "O3: Encoding/Decoding required",
             OptionType::kBool, {}, "yes"});
  table.add({"completion", "O4: Completion events", OptionType::kEnum,
             {"asynchronous", "synchronous"}, "asynchronous"});
  table.add({"thread_alloc", "O5: Event thread allocation", OptionType::kEnum,
             {"static", "dynamic"}, "static"});
  table.add({"file_cache", "O6: File cache", OptionType::kEnum,
             {"none", "lru", "lfu", "lru-min", "lru-threshold", "hyper-g",
              "custom"},
             "none"});
  table.add({"shutdown_long_idle", "O7: Shutdown long idle", OptionType::kBool,
             {}, "no"});
  table.add({"event_scheduling", "O8: Event scheduling", OptionType::kBool,
             {}, "no"});
  table.add({"overload_control", "O9: Overload control", OptionType::kBool,
             {}, "no"});
  table.add({"mode", "O10: Mode", OptionType::kEnum,
             {"production", "debug"}, "production"});
  table.add({"profiling", "O11: Performance profiling", OptionType::kBool,
             {}, "no"});
  table.add({"logging", "O12: Logging", OptionType::kBool, {}, "no"});
  // O11+ — an extension beyond the paper's twelve: how the profiler's
  // statistics leave the process.  Appended after O12 so the Table 1/Table 2
  // column numbering of the original options is preserved.
  table.add({"stats_export", "O11+: Statistics export", OptionType::kEnum,
             {"none", "admin_http"}, "none"});
  // Send-path extension — also appended after the paper's options so the
  // Table 1/Table 2 column numbering is preserved: how the Send Reply step
  // moves encoded bytes to the socket.  `copy` is the classical flat-buffer
  // write; `writev` gathers owned headers and refcounted cache slices in one
  // syscall with no body copy; `sendfile` additionally streams large
  // uncached files from an open descriptor through the kernel.
  table.add({"send_path", "S1: Send-reply path", OptionType::kEnum,
             {"copy", "writev", "sendfile"}, "writev"});
  // Buffer-management extension — appended after S1, again preserving the
  // earlier column numbering: how the Read Request / Decode Request steps
  // obtain their working memory.  `per_request` allocates a fresh request
  // object and grows the read buffer from nothing (the classical shape);
  // `pooled` recycles read-buffer backing stores and request contexts
  // through per-shard free-lists and reuses a per-connection scratch
  // request, making the steady-state request path allocation-free.
  table.add({"buffer_mgmt", "S2: Buffer management", OptionType::kEnum,
             {"per_request", "pooled"}, "pooled"});
  // Body-framing extension — appended after S2, again preserving the
  // earlier column numbering: how the Encode Reply step frames response
  // bodies.  `content_length` is the classical one-length-header shape;
  // `chunked` advertises Transfer-Encoding: chunked and frames large
  // bodies in fixed windows (RFC 7230 §4.1) — the streaming-reply shape —
  // with only the tiny framing lines copied, the body segments staying
  // zero-copy.  Chunked *request* decoding is unconditional either way.
  table.add({"body_framing", "S3: Body framing", OptionType::kEnum,
             {"content_length", "chunked"}, "content_length"});
  // Proxy-upstream extension — appended after S3, again preserving the
  // earlier column numbering: how a generated *proxy* tier (src/proxy)
  // obtains upstream connections.  `per_request` opens a fresh backend
  // connection per proxied exchange (the classical CGI-era shape);
  // `pooled` keeps completed keep-alive connections in per-backend pools
  // with caps, LIFO idle reuse, and a single stale-connection retry.  The
  // plain N-Server ignores the option; the proxy front end consumes it.
  table.add({"proxy_upstream", "S4: Proxy upstream connections",
             OptionType::kEnum, {"per_request", "pooled"}, "per_request"});
  // Overload-policy extension — appended after S4, again preserving the
  // earlier column numbering: *how* the O9 overload controller decides it
  // is overloaded.  `watermark` is the classical static queue-length gate
  // (suspend accept above the high mark, resume below the low);
  // `adaptive` replaces it with the OverloadManager control loop — CoDel
  // queue-*delay* admission plus pluggable resource monitors driving
  // graduated actions (conserve → pause low priority → shed 503 +
  // Retry-After → stop accept) with EWMA smoothing and hysteresis.
  table.add({"overload", "S5: Overload policy", OptionType::kEnum,
             {"watermark", "adaptive"}, "watermark"});
  // Accept-path extension — appended after S5, again preserving the earlier
  // column numbering: how accepted connections reach their shard.
  // `dispatch` is the classical single-listener shape (one Acceptor on
  // shard 0 round-robins sockets to the other reactors); `reuseport` opens
  // one SO_REUSEPORT listener per shard so the kernel spreads connections
  // and every accept lands directly on the shard that will own it — the
  // shared-nothing scale-out shape.  With a file cache, the generated
  // instance also fronts the shared policy cache with a per-shard L1 tier
  // so the hot read path never crosses shards.
  table.add({"accept_path", "S6: Accept path", OptionType::kEnum,
             {"dispatch", "reuseport"}, "dispatch"});
  // I/O-backend extension — appended after S6: which kernel machinery the
  // generated instance's Reactors poll with.  `epoll` is the classic
  // readiness loop (level-triggered, the default everywhere); `io_uring`
  // swaps in a completion-driven backend — poll re-arms batch into the
  // reactor tick's single io_uring_enter, listeners use multishot
  // IORING_OP_ACCEPT, socket I/O rides per-thread rings, and file loads
  // become real kernel Proactor reads (IORING_OP_READ into registered
  // buffers) instead of thread-pool emulation.  The generated main degrades
  // to epoll at runtime when the kernel probe fails, so one artifact runs
  // everywhere.
  table.add({"io_backend", "S7: I/O backend", OptionType::kEnum,
             {"epoll", "io_uring"}, "epoll"});

  table.add_constraint(
      "O2/O8 interaction", [](const OptionSet& set) -> std::string {
        if (set.get_bool("event_scheduling") && !set.get_bool("separate_pool")) {
          return "event scheduling requires a separate processor pool";
        }
        return {};
      });
  table.add_constraint(
      "O2/O4 interaction", [](const OptionSet& set) -> std::string {
        if (set.get_or("completion", "") == "synchronous" &&
            !set.get_bool("separate_pool")) {
          return "synchronous completions would block the dispatcher";
        }
        return {};
      });
  table.add_constraint(
      "O11+/O11 interaction", [](const OptionSet& set) -> std::string {
        if (set.get_or("stats_export", "none") == "admin_http" &&
            !set.get_bool("profiling")) {
          return "the admin export serves the profiler's statistics; "
                 "enable profiling (O11)";
        }
        return {};
      });
  table.add_constraint(
      "S5/O9 interaction", [](const OptionSet& set) -> std::string {
        if (set.get_or("overload", "watermark") == "adaptive" &&
            !set.get_bool("overload_control")) {
          return "the adaptive overload manager is a refinement of the "
                 "overload controller; enable overload control (O9)";
        }
        return {};
      });
  return table;
}

// ---- template sources --------------------------------------------------------
// Unit names follow Table 2's class rows where the mapping is direct.

constexpr const char* kTraitsHpp = R"tmpl(// Generated by copsgen (N-Server pattern) for ${app_name}.
// Compile-time option traits: `if constexpr` on these prunes feature code
// from the hot path, the generative equivalent of CO2P3S's conditional code
// emission (no dynamic feature checks remain in the generated server).
#pragma once

namespace ${app_name}_traits {

inline constexpr int kDispatcherThreads = ${dispatcher_threads};
//% if separate_pool
inline constexpr bool kSeparateProcessorPool = true;
//% else
inline constexpr bool kSeparateProcessorPool = false;
//% end
//% if encode_decode
inline constexpr bool kEncodeDecode = true;
//% else
inline constexpr bool kEncodeDecode = false;
//% end
//% if completion == "asynchronous"
inline constexpr bool kAsyncCompletion = true;
//% else
inline constexpr bool kAsyncCompletion = false;
//% end
//% if thread_alloc == "dynamic"
inline constexpr bool kDynamicThreads = true;
//% else
inline constexpr bool kDynamicThreads = false;
//% end
//% if file_cache != "none"
inline constexpr bool kFileCache = true;
//% else
inline constexpr bool kFileCache = false;
//% end
//% if shutdown_long_idle
inline constexpr bool kShutdownLongIdle = true;
//% else
inline constexpr bool kShutdownLongIdle = false;
//% end
//% if event_scheduling
inline constexpr bool kEventScheduling = true;
//% else
inline constexpr bool kEventScheduling = false;
//% end
//% if overload_control
inline constexpr bool kOverloadControl = true;
//% else
inline constexpr bool kOverloadControl = false;
//% end
//% if mode == "debug"
inline constexpr bool kDebugMode = true;
//% else
inline constexpr bool kDebugMode = false;
//% end
//% if profiling
inline constexpr bool kProfiling = true;
//% else
inline constexpr bool kProfiling = false;
//% end
//% if logging
inline constexpr bool kLogging = true;
//% else
inline constexpr bool kLogging = false;
//% end
//% if stats_export == "admin_http"
inline constexpr bool kAdminExport = true;
//% else
inline constexpr bool kAdminExport = false;
//% end
//% if send_path == "copy"
inline constexpr bool kZeroCopySend = false;
inline constexpr bool kSendfile = false;
//% elif send_path == "sendfile"
inline constexpr bool kZeroCopySend = true;
inline constexpr bool kSendfile = true;
//% else
inline constexpr bool kZeroCopySend = true;
inline constexpr bool kSendfile = false;
//% end
//% if buffer_mgmt == "pooled"
inline constexpr bool kPooledBuffers = true;
//% else
inline constexpr bool kPooledBuffers = false;
//% end
//% if body_framing == "chunked"
inline constexpr bool kChunkedReplies = true;
//% else
inline constexpr bool kChunkedReplies = false;
//% end
//% if proxy_upstream == "pooled"
inline constexpr bool kPooledUpstream = true;
//% else
inline constexpr bool kPooledUpstream = false;
//% end
//% if overload == "adaptive"
inline constexpr bool kAdaptiveOverload = true;
//% else
inline constexpr bool kAdaptiveOverload = false;
//% end
//% if accept_path == "reuseport"
inline constexpr bool kReuseportAccept = true;
//% else
inline constexpr bool kReuseportAccept = false;
//% end
//% if io_backend == "io_uring"
inline constexpr bool kUringBackend = true;
//% else
inline constexpr bool kUringBackend = false;
//% end

}  // namespace ${app_name}_traits
)tmpl";

constexpr const char* kEventConfigHpp = R"tmpl(// Generated: Event layer configuration for ${app_name}.
#pragma once

#include <cstddef>

#include "nserver/event.hpp"

namespace ${app_name}_gen {

//% if event_scheduling
// Event scheduling (O8): priority levels and per-level quotas.  Higher
// priority = lower level index; quotas avoid starvation (paper, Section IV).
inline constexpr int kPriorityLevels = 2;
inline constexpr std::size_t kPriorityQuotas[kPriorityLevels] = {8, 1};
//% else
// Event scheduling disabled: all events share one FIFO level.
inline constexpr int kPriorityLevels = 1;
//% end
//% if completion == "asynchronous"
// Asynchronous completions (O4): service responses are matched back to
// their issuing connection with an Asynchronous Completion Token.
using CompletionToken = cops::nserver::CompletionToken;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kCompletionConfigHpp = R"tmpl(// Generated: asynchronous completion (Proactor emulation) configuration.
// Exists only when O4 = Asynchronous — Table 2's Completion / File Open /
// File Read Event rows.
#pragma once

namespace ${app_name}_gen {

// Threads in the emulated non-blocking file I/O pool.
inline constexpr std::size_t kFileIoThreads = 2;
//% if file_cache != "none"
// Completed reads are inserted into the file cache before dispatch (O6).
inline constexpr bool kCacheCompletedReads = true;
//% else
inline constexpr bool kCacheCompletedReads = false;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kProcessorConfigHpp = R"tmpl(// Generated: Event Processor configuration (exists when O2 = Yes).
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

//% if thread_alloc == "dynamic"
// Dynamic allocation (O5): the Processor Controller resizes within bounds.
inline constexpr std::size_t kProcessorThreadsInitial = 2;
//% else
inline constexpr std::size_t kProcessorThreads = 2;
//% end
//% if event_scheduling
// The normal event queue is replaced by a quota priority queue (O8).
inline constexpr bool kPriorityQueue = true;
//% else
inline constexpr bool kPriorityQueue = false;
//% end
//% if overload_control
// Queue depth is exported to the overload controller (O9).
inline constexpr bool kExportQueueDepth = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kControllerConfigHpp = R"tmpl(// Generated: Processor Controller (exists when O5 = Dynamic).
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

inline constexpr std::size_t kMinProcessorThreads = 1;
inline constexpr std::size_t kMaxProcessorThreads = 8;
inline constexpr std::size_t kGrowQueueThreshold = 4;
inline constexpr int kShrinkAfterIdleTicks = 10;

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kCacheConfigHpp = R"tmpl(// Generated: transparent file cache (exists when O6 != None).
#pragma once

#include <cstddef>

#include "nserver/cache_policy.hpp"

namespace ${app_name}_gen {

inline constexpr std::size_t kCacheCapacityBytes = 20u * 1024u * 1024u;
inline constexpr const char* kCachePolicy = "${file_cache}";
//% if file_cache == "lru-threshold"
inline constexpr std::size_t kCacheSizeThreshold = 64u * 1024u;
//% end
//% if file_cache == "custom"
// Custom replacement policy hook (paper: "a programmer can implement a
// different cache replacement policy by simply adding code to a hook
// method").  Fill in the victim choice:
cops::nserver::CustomEvictionHook make_eviction_hook();
//% end
//% if profiling
// Profiling (O11) reports the cache hit rate.
inline constexpr bool kReportHitRate = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kReactorConfigHpp = R"tmpl(// Generated: Reactor / Event Dispatcher wiring for ${app_name}.
// The Reactor row of Table 2 crosscuts nearly every option; the generated
// wiring below is what varies.
#pragma once

#include <chrono>

namespace ${app_name}_gen {

inline constexpr int kDispatchers = ${dispatcher_threads};
//% if separate_pool
// Ready events are forwarded to the Event Processor (O2 = Yes).
inline constexpr bool kForwardToProcessor = true;
//% else
// SPED structure: the dispatcher runs handlers inline (O2 = No).
inline constexpr bool kForwardToProcessor = false;
//% end
//% if completion == "asynchronous"
inline constexpr bool kCompletionEventSource = true;
//% end
//% if event_scheduling
inline constexpr bool kClassifyBeforeDispatch = true;
//% end
//% if overload_control
// Watermark overload control (O9): suspend the Acceptor above the high
// watermark, resume below the low one.
inline constexpr std::size_t kQueueHighWatermark = 20;
inline constexpr std::size_t kQueueLowWatermark = 5;
//% end
//% if shutdown_long_idle
// Long-idle connections are reaped by a housekeeping timer (O7).
inline constexpr std::chrono::milliseconds kIdleTimeout{30000};
//% end
//% if mode == "debug"
inline constexpr bool kTraceInternalEvents = true;
//% end
//% if profiling
inline constexpr bool kProfileDispatch = true;
//% end
//% if logging
inline constexpr bool kLogDispatch = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kAcceptorConfigHpp = R"tmpl(// Generated: Acceptor Event Handler configuration.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

inline constexpr int kListenBacklog = 512;
//% if overload_control
// Overload mechanism 1 (O9): bound on simultaneous connections (0 = off).
inline constexpr std::size_t kMaxConnections = 0;
//% end
//% if logging
inline constexpr bool kLogAccepts = true;
//% end
//% if profiling
inline constexpr bool kCountAccepts = true;
//% end
//% if mode == "debug"
inline constexpr bool kTraceAccepts = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kAdminConfigHpp = R"tmpl(// Generated: admin/statistics endpoint (exists when O11+ = admin_http).
// A second listener on the shard-0 dispatcher serving the profiler's
// counters and stage histograms: /stats (Prometheus text), /stats.json,
// and /healthz.
#pragma once

#include <cstdint>

namespace ${app_name}_gen {

// Bind only on loopback by default: the admin surface exposes operational
// internals and has no authentication.
inline constexpr const char* kAdminHost = "127.0.0.1";
inline constexpr std::uint16_t kAdminPort = 0;  // 0 = kernel-assigned

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kSendConfigHpp = R"tmpl(// Generated: segmented send path (exists when send_path != copy).
// The Send Reply step drains a queue of segments — owned header bytes plus
// refcounted body slices — with one scatter-gather writev per round instead
// of flattening each reply into a contiguous buffer.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Scatter-gather batch per writev call: enough for several pipelined
// header+body replies in one syscall.
inline constexpr int kSendIovBatch = 16;
//% if send_path == "sendfile"
// Files at or above this size bypass the in-memory cache and go out via
// sendfile(2) from an open descriptor; smaller files still populate the
// cache and are gathered by writev.
inline constexpr std::size_t kSendfileMinBytes = 256u * 1024u;
//% end
//% if profiling
// Profiling (O11) exports the send-path counters: writev calls, bytes
// materialised into owned buffers, bytes moved by sendfile.
inline constexpr bool kCountSendPath = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kBufferConfigHpp = R"tmpl(// Generated: pooled buffer management (exists when buffer_mgmt = pooled).
// Each shard owns a slab free-list for request contexts and a free-list of
// read-buffer backing stores; connections adopt a recycled buffer on accept
// and return it on close.  Decode hooks reuse a per-connection scratch
// request object, so a keep-alive request in steady state allocates nothing.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Backing-store block handed to each connection's read buffer.  Requests
// larger than a block still work — the buffer grows on the heap and the
// growth is counted as a pool miss.
inline constexpr std::size_t kReadBufferBlockBytes = 16u * 1024u;
// Context slab blocks added per pool-growth step.
inline constexpr std::size_t kCtxBlocksPerChunk = 64;
// Recycled read buffers kept per shard before excess ones are freed.
inline constexpr std::size_t kReadBufferMaxFree = 64;
//% if profiling
// Profiling (O11) exports the recycler counters: pool hits, pool misses,
// total heap bytes acquired by the pools.
inline constexpr bool kCountPools = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kFramingConfigHpp = R"tmpl(// Generated: chunked reply framing (exists when body_framing = chunked).
// The Encode Reply step frames bodies with chunked transfer coding
// (RFC 7230 section 4.1): per window an owned hex size line, the zero-copy
// body slice, and a CRLF — riding the same writev/sendfile gather loop as
// length-framed replies.  Request-side chunked decoding is always on; this
// unit only configures the reply side.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Bodies at or above this size are chunk-framed; smaller replies keep
// Content-Length, where the length is already known and framing overhead
// buys nothing.
inline constexpr std::size_t kChunkedMinBytes = 4u * 1024u;
// Size of each chunk window on the reply side.
inline constexpr std::size_t kReplyChunkBytes = 64u * 1024u;
//% if profiling
// Profiling (O11) exports the chunked-reply counter.
inline constexpr bool kCountChunkedReplies = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kProxyConfigHpp = R"tmpl(// Generated: pooled upstream connections (exists when proxy_upstream = pooled).
// A proxy tier built from this instance (cops::proxy::ProxyServer) keeps
// completed upstream keep-alive connections in per-backend pools instead of
// opening one per proxied exchange: caps bound the connection count, idle
// reuse is LIFO (the hottest socket stays in rotation), and a reused
// connection that dies before its first response byte is retried exactly
// once on a fresh connection.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Per-backend connection cap (in-flight + idle) and idle-list bound.
inline constexpr std::size_t kUpstreamPoolCap = 8;
inline constexpr std::size_t kUpstreamPoolMaxIdle = 8;
// Request bytes retained for the stale-connection replay, per exchange.
inline constexpr std::size_t kUpstreamRetryBufferBytes = 64u * 1024u;
//% if profiling
// Profiling (O11) exports the pool counters (reuse / miss / stale retry).
inline constexpr bool kCountUpstreamPool = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kOverloadConfigHpp = R"tmpl(// Generated: adaptive overload manager (exists when overload = adaptive).
// Replaces the static queue-length watermarks with the OverloadManager
// control loop: CoDel-style queue-delay admission (sliding minimum over the
// interval vs. a target) plus resource monitors (connections, pool miss
// rate, heap bytes) mapped to 0-1 pressure, EWMA-smoothed, driving four
// graduated action tiers with hysteresis — conserve (shrink keep-alive idle
// timeouts), pause low-priority quota classes, shed new requests with
// 503 + Retry-After, and finally suspend accept.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// CoDel admission: standing queue delay the server is willing to carry, and
// the sliding-minimum window it is measured over.
inline constexpr long kOverloadTargetDelayMs = 5;
inline constexpr long kOverloadIntervalMs = 100;
// Pressure smoothing and tier release hysteresis.
inline constexpr double kOverloadEwmaAlpha = 0.3;
inline constexpr double kOverloadHysteresis = 0.10;
// Retry-After on shed 503s is derived from the measured pressure decay,
// clamped to this ceiling (the floor is O9's retry-after setting).
inline constexpr long kOverloadRetryAfterMaxS = 30;
// Heap monitor capacity; 0 disables the heap-bytes monitor.
inline constexpr std::size_t kOverloadMaxHeapBytes = 0;

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kShardConfigHpp = R"tmpl(// Generated: shared-nothing accept path (exists when accept_path = reuseport).
// Each of the ${dispatcher_threads} shards opens its own SO_REUSEPORT
// listener on its own reactor; the kernel's 4-tuple hash spreads incoming
// connections, every accept lands on the shard that will own the
// connection, and the single-listener dispatch hop disappears.  The
// connection cap (O9) stays global — accepts reserve a slot with an atomic
// before admitting, so the bound holds across racing acceptors.
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Listeners = shards; each gets the full configured backlog.
inline constexpr int kShardListeners = ${dispatcher_threads};
//% if file_cache != "none"
// Two-tier file cache: each shard fronts the shared policy cache (the L2)
// with a bounded read-mostly L1 of refcounted entries.  L1 hits are
// lock-free and allocation-free; one shard's miss fills the L2 and the
// other shards promote the entry into their own L1 on their next miss,
// with no cross-shard write contention.
inline constexpr std::size_t kCacheL1Entries = 128;
// Entries larger than this stay L2-only (keeps the L1 byte bound tight).
inline constexpr std::size_t kCacheL1EntryMaxBytes = 256u * 1024u;
//% end
//% if profiling
// Profiling (O11) exports per-shard gauges (accepts, open connections,
// L1 hit rate) with a `shard` label on the admin surface.
inline constexpr bool kCountPerShard = true;
//% end

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kIoConfigHpp = R"tmpl(// Generated: io_uring I/O backend (exists when io_backend = io_uring).
// The Reactors run completion-driven: socket readiness is oneshot
// IORING_OP_POLL_ADD re-armed inside each reactor tick's batched SQE
// submission (level-triggered equivalence — re-arms are free, where epoll
// pays an epoll_ctl syscall per interest change), listeners stream accepted
// descriptors through multishot IORING_OP_ACCEPT, socket reads/writes ride
// per-thread rings, and FileIoService file loads are real kernel Proactor
// reads (IORING_OP_READ / READ_FIXED into registered buffers).
#pragma once

#include <cstddef>

namespace ${app_name}_gen {

// Requested backend; the server re-probes at startup and falls back to
// epoll when io_uring is compiled out or the kernel refuses the ring, so
// this binary still runs on pre-5.19 kernels and seccomp'd containers.
inline constexpr bool kIoUringRequested = true;
// Registered-buffer slabs backing READ_FIXED file loads (engine-owned,
// pulled from a BufferPool and pinned once).
inline constexpr std::size_t kUringFileSlabBytes = 64u * 1024u;
inline constexpr std::size_t kUringFileSlabCount = 16;

}  // namespace ${app_name}_gen
)tmpl";

constexpr const char* kHooksHpp = R"tmpl(// Generated hook-method stubs for ${app_name}.
// These are the ONLY methods you implement — the three application-dependent
// steps of the five-step request cycle (Decode Request, Handle Request,
// Encode Reply).  Read Request and Send Reply are the framework's.
#pragma once

#include "nserver/hooks.hpp"

class ${app_name}Hooks : public cops::nserver::AppHooks {
 public:
//% if encode_decode
  // Decode Request: consume one request's bytes from `in`.
  cops::nserver::DecodeResult decode(cops::nserver::RequestContext& ctx,
                                     cops::ByteBuffer& in) override;
//% end
  // Handle Request: resolve the context with reply()/reply_raw()/finish().
  void handle(cops::nserver::RequestContext& ctx, std::any request) override;
//% if encode_decode
  // Encode Reply: turn the response object into wire bytes.
  std::string encode(cops::nserver::RequestContext& ctx,
                     std::any response) override;
//% end
//% if event_scheduling
  // Event scheduling (O8): classify a request into a priority level
  // (0 = highest).  The paper's differentiated-service experiment
  // implements exactly this hook.
  int classify_priority(const std::any& request);
//% end
};
)tmpl";

constexpr const char* kHooksCpp = R"tmpl(// Generated hook-method stub bodies for ${app_name}.  Fill in the TODOs.
#include "hooks.hpp"

#include "nserver/request_context.hpp"

//% if encode_decode
cops::nserver::DecodeResult ${app_name}Hooks::decode(
    cops::nserver::RequestContext& ctx, cops::ByteBuffer& in) {
  (void)ctx;
  // TODO: parse one request from `in`; e.g. for a line protocol:
  const size_t eol = in.find("\n");
  if (eol == std::string_view::npos) {
    return cops::nserver::DecodeResult::need_more();
  }
  std::string line(in.view().substr(0, eol));
  in.consume(eol + 1);
//% if event_scheduling
  std::any request(std::move(line));
  return cops::nserver::DecodeResult::request_ready(request,
                                                    classify_priority(request));
//% else
  return cops::nserver::DecodeResult::request_ready(std::move(line));
//% end
}

std::string ${app_name}Hooks::encode(cops::nserver::RequestContext& ctx,
                                     std::any response) {
  (void)ctx;
  // TODO: serialize the response object.
  return std::any_cast<std::string>(std::move(response));
}
//% end

void ${app_name}Hooks::handle(cops::nserver::RequestContext& ctx,
                              std::any request) {
//% if encode_decode
  // TODO: compute the reply for the decoded request.
  ctx.reply(std::any_cast<std::string>(std::move(request)) + "\n");
//% else
  // No encode/decode (Fig. 2 variant): `request` is the raw chunk.
  ctx.reply_raw(std::any_cast<std::string>(std::move(request)));
//% end
}

//% if event_scheduling
int ${app_name}Hooks::classify_priority(const std::any& request) {
  (void)request;
  // TODO: return the priority level for this request (0 = highest).
  return 0;
}
//% end
)tmpl";

constexpr const char* kServerMainCpp = R"tmpl(// Generated server main for ${app_name} (N-Server pattern instance).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "nserver/server.hpp"

#include "acceptor_config.hpp"
//% if stats_export == "admin_http"
#include "admin_config.hpp"
//% end
//% if buffer_mgmt == "pooled"
#include "buffer_config.hpp"
//% end
#include "event_config.hpp"
//% if body_framing == "chunked"
#include "framing_config.hpp"
//% end
//% if proxy_upstream == "pooled"
#include "proxy_config.hpp"
//% end
//% if overload == "adaptive"
#include "overload_config.hpp"
//% end
//% if accept_path == "reuseport"
#include "shard_config.hpp"
//% end
#include "hooks.hpp"
#include "reactor_config.hpp"
//% if send_path != "copy"
#include "send_config.hpp"
//% end
#include "traits.hpp"

namespace {
std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }
}  // namespace

int main() {
  cops::nserver::ServerOptions options;
  options.dispatcher_threads = ${dispatcher_threads};
//% if separate_pool
  options.separate_processor_pool = true;
//% else
  options.separate_processor_pool = false;
//% end
//% if encode_decode
  options.encode_decode = true;
//% else
  options.encode_decode = false;
//% end
//% if completion == "asynchronous"
  options.completion = cops::nserver::CompletionMode::kAsynchronous;
//% else
  options.completion = cops::nserver::CompletionMode::kSynchronous;
//% end
//% if thread_alloc == "dynamic"
  options.thread_allocation = cops::nserver::ThreadAllocation::kDynamic;
//% else
  options.thread_allocation = cops::nserver::ThreadAllocation::kStatic;
//% end
//% if file_cache == "lru"
  options.cache_policy = cops::nserver::CachePolicyKind::kLru;
//% elif file_cache == "lfu"
  options.cache_policy = cops::nserver::CachePolicyKind::kLfu;
//% elif file_cache == "lru-min"
  options.cache_policy = cops::nserver::CachePolicyKind::kLruMin;
//% elif file_cache == "lru-threshold"
  options.cache_policy = cops::nserver::CachePolicyKind::kLruThreshold;
//% elif file_cache == "hyper-g"
  options.cache_policy = cops::nserver::CachePolicyKind::kHyperG;
//% elif file_cache == "custom"
  options.cache_policy = cops::nserver::CachePolicyKind::kCustom;
//% else
  options.cache_policy = cops::nserver::CachePolicyKind::kNone;
//% end
//% if shutdown_long_idle
  options.shutdown_long_idle = true;
//% end
//% if event_scheduling
  options.event_scheduling = true;
  options.priority_quotas.assign(
      std::begin(${app_name}_gen::kPriorityQuotas),
      std::end(${app_name}_gen::kPriorityQuotas));
//% end
//% if overload_control
  options.overload_control = true;
  options.queue_high_watermark = ${app_name}_gen::kQueueHighWatermark;
  options.queue_low_watermark = ${app_name}_gen::kQueueLowWatermark;
//% end
//% if overload == "adaptive"
  options.overload_mode = cops::nserver::OverloadMode::kAdaptive;
  options.overload_target_delay =
      std::chrono::milliseconds(${app_name}_gen::kOverloadTargetDelayMs);
  options.overload_interval =
      std::chrono::milliseconds(${app_name}_gen::kOverloadIntervalMs);
  options.overload_ewma_alpha = ${app_name}_gen::kOverloadEwmaAlpha;
  options.overload_hysteresis = ${app_name}_gen::kOverloadHysteresis;
  options.overload_retry_after_max =
      std::chrono::seconds(${app_name}_gen::kOverloadRetryAfterMaxS);
  options.overload_max_heap_bytes = ${app_name}_gen::kOverloadMaxHeapBytes;
//% else
  options.overload_mode = cops::nserver::OverloadMode::kWatermark;
//% end
//% if mode == "debug"
  options.mode = cops::nserver::ServerMode::kDebug;
//% end
//% if profiling
  options.profiling = true;
//% end
//% if logging
  options.logging = true;
//% end
//% if stats_export == "admin_http"
  options.stats_export = cops::nserver::StatsExport::kAdminHttp;
  options.admin_host = ${app_name}_gen::kAdminHost;
  options.admin_port = ${app_name}_gen::kAdminPort;
//% end
//% if send_path == "sendfile"
  options.send_path = cops::nserver::SendPath::kSendfile;
  options.sendfile_min_bytes = ${app_name}_gen::kSendfileMinBytes;
//% elif send_path == "copy"
  options.send_path = cops::nserver::SendPath::kCopy;
//% else
  options.send_path = cops::nserver::SendPath::kWritev;
//% end
//% if buffer_mgmt == "pooled"
  options.buffer_mgmt = cops::nserver::BufferMgmt::kPooled;
  options.read_buffer_block_bytes = ${app_name}_gen::kReadBufferBlockBytes;
//% else
  options.buffer_mgmt = cops::nserver::BufferMgmt::kPerRequest;
//% end
//% if body_framing == "chunked"
  options.body_framing = cops::nserver::BodyFraming::kChunked;
  options.chunked_min_bytes = ${app_name}_gen::kChunkedMinBytes;
  options.reply_chunk_bytes = ${app_name}_gen::kReplyChunkBytes;
//% else
  options.body_framing = cops::nserver::BodyFraming::kContentLength;
//% end
//% if proxy_upstream == "pooled"
  options.upstream_mode = cops::nserver::UpstreamMode::kPooled;
  options.upstream_pool_cap = ${app_name}_gen::kUpstreamPoolCap;
//% else
  options.upstream_mode = cops::nserver::UpstreamMode::kPerRequest;
//% end
//% if accept_path == "reuseport"
  options.accept_path = cops::nserver::AcceptPath::kReuseport;
//% if file_cache != "none"
  options.cache_l1_entries = ${app_name}_gen::kCacheL1Entries;
  options.cache_l1_entry_max_bytes = ${app_name}_gen::kCacheL1EntryMaxBytes;
//% end
//% else
  options.accept_path = cops::nserver::AcceptPath::kDispatch;
//% end
//% if io_backend == "io_uring"
  options.io_backend = cops::nserver::IoBackend::kIoUring;
//% else
  options.io_backend = cops::nserver::IoBackend::kEpoll;
//% end
  options.listen_port = ${listen_port};
  options.listen_backlog = ${app_name}_gen::kListenBacklog;

  auto hooks = std::make_shared<${app_name}Hooks>();
  cops::nserver::Server server(std::move(options), hooks);
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("${app_name} listening on port %u\n", server.port());
//% if stats_export == "admin_http"
  std::printf("admin endpoint (/stats, /stats.json, /healthz) on port %u\n",
              server.admin_port());
//% end
  // The dispatcher threads run the server; park until a signal arrives.
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  server.stop();
  return 0;
}
)tmpl";

constexpr const char* kCMakeListsTxt = R"tmpl(# Generated build file for ${app_name}.
cmake_minimum_required(VERSION 3.16)
project(${app_name} CXX)
set(CMAKE_CXX_STANDARD 20)
set(CMAKE_CXX_STANDARD_REQUIRED ON)

# Point COPS_NSERVER_ROOT at the cops-nserver source tree.
set(COPS_NSERVER_ROOT "" CACHE PATH "Path to the cops-nserver repository")
add_subdirectory(${COPS_NSERVER_ROOT}/src cops_libs)

add_executable(${app_name}
  server_main.cpp
  hooks.cpp
)
target_include_directories(${app_name} PRIVATE ${CMAKE_CURRENT_SOURCE_DIR})
target_link_libraries(${app_name} PRIVATE cops_nserver)
)tmpl";

constexpr const char* kReadmeMd = R"tmpl(# ${app_name}

Generated by `copsgen` from the **N-Server** design pattern template.

Option settings baked into this instance:

| Option | Value |
|---|---|
| O1 dispatcher threads | ${dispatcher_threads} |
| O2 separate processor pool | ${separate_pool} |
| O3 encoding/decoding | ${encode_decode} |
| O4 completion events | ${completion} |
| O5 thread allocation | ${thread_alloc} |
| O6 file cache | ${file_cache} |
| O7 shutdown long idle | ${shutdown_long_idle} |
| O8 event scheduling | ${event_scheduling} |
| O9 overload control | ${overload_control} |
| O10 mode | ${mode} |
| O11 profiling | ${profiling} |
| O12 logging | ${logging} |
| O11+ statistics export | ${stats_export} |
| S1 send-reply path | ${send_path} |
| S2 buffer management | ${buffer_mgmt} |
| S3 body framing | ${body_framing} |
| S4 proxy upstream | ${proxy_upstream} |
| S5 overload | ${overload} |
| S6 accept path | ${accept_path} |
| S7 io backend | ${io_backend} |

Implement the hook methods in `hooks.cpp` (the three application-dependent
steps), then build with CMake, pointing `COPS_NSERVER_ROOT` at the
cops-nserver checkout.
)tmpl";

}  // namespace

PatternTemplate make_nserver_template() {
  PatternTemplate tmpl("nserver", make_nserver_option_table());
  tmpl.add_file({"traits.hpp", "Server Configuration", "", kTraitsHpp});
  tmpl.add_file({"event_config.hpp", "Event", "", kEventConfigHpp});
  tmpl.add_file({"completion_config.hpp", "Completion Event",
                 "completion == \"asynchronous\"", kCompletionConfigHpp});
  tmpl.add_file({"processor_config.hpp", "Event Processor", "separate_pool",
                 kProcessorConfigHpp});
  tmpl.add_file({"controller_config.hpp", "Processor Controller",
                 "thread_alloc == \"dynamic\"", kControllerConfigHpp});
  tmpl.add_file({"cache_config.hpp", "Cache", "file_cache != \"none\"",
                 kCacheConfigHpp});
  tmpl.add_file({"admin_config.hpp", "Admin Endpoint",
                 "stats_export == \"admin_http\"", kAdminConfigHpp});
  tmpl.add_file({"send_config.hpp", "Send Reply", "send_path != \"copy\"",
                 kSendConfigHpp});
  tmpl.add_file({"buffer_config.hpp", "Buffer Management",
                 "buffer_mgmt == \"pooled\"", kBufferConfigHpp});
  tmpl.add_file({"framing_config.hpp", "Body Framing",
                 "body_framing == \"chunked\"", kFramingConfigHpp});
  tmpl.add_file({"proxy_config.hpp", "Proxy Upstream",
                 "proxy_upstream == \"pooled\"", kProxyConfigHpp});
  tmpl.add_file({"overload_config.hpp", "Overload Manager",
                 "overload == \"adaptive\"", kOverloadConfigHpp});
  tmpl.add_file({"shard_config.hpp", "Shard Accept",
                 "accept_path == \"reuseport\"", kShardConfigHpp});
  tmpl.add_file({"io_config.hpp", "I/O Backend",
                 "io_backend == \"io_uring\"", kIoConfigHpp});
  tmpl.add_file({"reactor_config.hpp", "Reactor", "", kReactorConfigHpp});
  tmpl.add_file({"acceptor_config.hpp", "Acceptor Event Handler", "",
                 kAcceptorConfigHpp});
  tmpl.add_file({"hooks.hpp", "Application Event Handler", "", kHooksHpp});
  tmpl.add_file({"hooks.cpp", "Compute Request Event Handler", "", kHooksCpp});
  tmpl.add_file({"server_main.cpp", "Server", "", kServerMainCpp});
  tmpl.add_file({"CMakeLists.txt", "Build", "", kCMakeListsTxt});
  tmpl.add_file({"README.md", "Readme", "", kReadmeMd});
  return tmpl;
}

OptionSet nserver_http_options() {
  OptionSet set;
  set.set("dispatcher_threads", "1");
  set.set("separate_pool", "yes");
  set.set("encode_decode", "yes");
  set.set("completion", "asynchronous");
  set.set("thread_alloc", "static");
  set.set("file_cache", "lru");
  set.set("shutdown_long_idle", "no");
  set.set("event_scheduling", "no");
  set.set("overload_control", "no");
  set.set("mode", "production");
  set.set("profiling", "no");
  set.set("logging", "no");
  set.set("send_path", "writev");
  set.set("buffer_mgmt", "pooled");
  set.set("body_framing", "content_length");
  set.set("proxy_upstream", "per_request");
  set.set("overload", "watermark");
  set.set("accept_path", "dispatch");
  set.set("io_backend", "epoll");
  return set;
}

OptionSet nserver_ftp_options() {
  OptionSet set;
  set.set("dispatcher_threads", "1");
  set.set("separate_pool", "yes");
  set.set("encode_decode", "yes");
  set.set("completion", "synchronous");
  set.set("thread_alloc", "dynamic");
  set.set("file_cache", "none");
  set.set("shutdown_long_idle", "yes");
  set.set("event_scheduling", "no");
  set.set("overload_control", "no");
  set.set("mode", "production");
  set.set("profiling", "no");
  set.set("logging", "no");
  set.set("send_path", "copy");
  set.set("buffer_mgmt", "per_request");
  set.set("body_framing", "content_length");
  set.set("proxy_upstream", "per_request");
  set.set("overload", "watermark");
  set.set("accept_path", "dispatch");
  set.set("io_backend", "epoll");
  return set;
}

}  // namespace cops::gdp
