#include "gdp/option.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace cops::gdp {

bool OptionSpec::value_is_legal(const std::string& value) const {
  switch (type) {
    case OptionType::kBool: {
      const auto lower = to_lower(value);
      return lower == "yes" || lower == "no" || lower == "true" ||
             lower == "false" || lower == "on" || lower == "off" ||
             lower == "1" || lower == "0";
    }
    case OptionType::kEnum: {
      const auto lower = to_lower(value);
      return std::find(legal_values.begin(), legal_values.end(), lower) !=
             legal_values.end();
    }
    case OptionType::kInt: {
      const long parsed = parse_non_negative(value);
      return parsed >= 0 && parsed >= min_value && parsed <= max_value;
    }
  }
  return false;
}

void OptionSet::set(std::string key, std::string value) {
  values_[std::move(key)] = to_lower(value);
}

std::optional<std::string> OptionSet::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string OptionSet::get_or(const std::string& key,
                              std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

bool OptionSet::get_bool(const std::string& key) const {
  const auto v = get_or(key, "no");
  return v == "yes" || v == "true" || v == "on" || v == "1";
}

long OptionSet::get_int(const std::string& key, long fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  const long parsed = parse_non_negative(*v);
  return parsed < 0 ? fallback : parsed;
}

void OptionTable::add(OptionSpec spec) { specs_.push_back(std::move(spec)); }

void OptionTable::add_constraint(std::string description, Constraint check) {
  constraints_.emplace_back(std::move(description), std::move(check));
}

const OptionSpec* OptionTable::find(const std::string& key) const {
  for (const auto& spec : specs_) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

OptionSet OptionTable::with_defaults(OptionSet partial) const {
  for (const auto& spec : specs_) {
    if (!partial.get(spec.key)) partial.set(spec.key, spec.default_value);
  }
  return partial;
}

std::vector<std::string> OptionTable::validate(const OptionSet& set) const {
  std::vector<std::string> problems;
  for (const auto& [key, value] : set.values()) {
    const auto* spec = find(key);
    if (spec == nullptr) {
      problems.push_back("unknown option '" + key + "'");
      continue;
    }
    if (!spec->value_is_legal(value)) {
      problems.push_back("option '" + key + "' has illegal value '" + value +
                         "'");
    }
  }
  for (const auto& spec : specs_) {
    if (!set.get(spec.key)) {
      problems.push_back("option '" + spec.key + "' is unset");
    }
  }
  if (!problems.empty()) return problems;
  for (const auto& [description, check] : constraints_) {
    const auto violation = check(set);
    if (!violation.empty()) {
      problems.push_back(description + ": " + violation);
    }
  }
  return problems;
}

}  // namespace cops::gdp
