#include "gdp/template_lang.hpp"

#include <cctype>

#include "common/string_util.hpp"

namespace cops::gdp {
namespace {

// ---- expression AST ---------------------------------------------------------

class IdentExpr : public Expr {
 public:
  explicit IdentExpr(std::string key) : key_(std::move(key)) {}
  bool evaluate(const OptionSet& options) const override {
    const auto value = options.get_or(key_, "");
    if (value.empty() || value == "no" || value == "false" || value == "off" ||
        value == "0" || value == "none") {
      return false;
    }
    return true;
  }
  void collect_keys(std::set<std::string>& out) const override {
    out.insert(key_);
  }
  [[nodiscard]] const std::string& key() const { return key_; }

 private:
  std::string key_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(std::string key, std::string literal, bool negated)
      : key_(std::move(key)), literal_(to_lower(literal)), negated_(negated) {}
  bool evaluate(const OptionSet& options) const override {
    const bool equal = options.get_or(key_, "") == literal_;
    return negated_ ? !equal : equal;
  }
  void collect_keys(std::set<std::string>& out) const override {
    out.insert(key_);
  }

 private:
  std::string key_;
  std::string literal_;
  bool negated_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(std::shared_ptr<Expr> inner) : inner_(std::move(inner)) {}
  bool evaluate(const OptionSet& options) const override {
    return !inner_->evaluate(options);
  }
  void collect_keys(std::set<std::string>& out) const override {
    inner_->collect_keys(out);
  }

 private:
  std::shared_ptr<Expr> inner_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(bool is_and, std::shared_ptr<Expr> lhs, std::shared_ptr<Expr> rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  bool evaluate(const OptionSet& options) const override {
    return is_and_ ? (lhs_->evaluate(options) && rhs_->evaluate(options))
                   : (lhs_->evaluate(options) || rhs_->evaluate(options));
  }
  void collect_keys(std::set<std::string>& out) const override {
    lhs_->collect_keys(out);
    rhs_->collect_keys(out);
  }

 private:
  bool is_and_;
  std::shared_ptr<Expr> lhs_;
  std::shared_ptr<Expr> rhs_;
};

// ---- expression parser (recursive descent) ----------------------------------

struct Token {
  enum Kind { kIdent, kString, kEq, kNe, kNot, kAnd, kOr, kLParen, kRParen,
              kEnd } kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> lex() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) != 0 ||
                text_[j] == '_')) {
          ++j;
        }
        tokens.push_back({Token::kIdent, text_.substr(i, j - i)});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        const size_t close = text_.find(c, i + 1);
        if (close == std::string::npos) {
          return Status::invalid_argument("unterminated string literal");
        }
        tokens.push_back({Token::kString, text_.substr(i + 1, close - i - 1)});
        i = close + 1;
        continue;
      }
      auto two = text_.substr(i, 2);
      if (two == "==") {
        tokens.push_back({Token::kEq, two});
        i += 2;
        continue;
      }
      if (two == "!=") {
        tokens.push_back({Token::kNe, two});
        i += 2;
        continue;
      }
      if (two == "&&") {
        tokens.push_back({Token::kAnd, two});
        i += 2;
        continue;
      }
      if (two == "||") {
        tokens.push_back({Token::kOr, two});
        i += 2;
        continue;
      }
      if (c == '!') {
        tokens.push_back({Token::kNot, "!"});
        ++i;
        continue;
      }
      if (c == '(') {
        tokens.push_back({Token::kLParen, "("});
        ++i;
        continue;
      }
      if (c == ')') {
        tokens.push_back({Token::kRParen, ")"});
        ++i;
        continue;
      }
      return Status::invalid_argument(std::string("bad character '") + c +
                                      "' in expression");
    }
    tokens.push_back({Token::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
};

class ExprParser {
 public:
  explicit ExprParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<Expr>> parse() {
    auto expr = parse_or();
    if (!expr.is_ok()) return expr;
    if (peek().kind != Token::kEnd) {
      return Status::invalid_argument("trailing tokens in expression");
    }
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  Token take() { return tokens_[pos_++]; }

  Result<std::shared_ptr<Expr>> parse_or() {
    auto lhs = parse_and();
    if (!lhs.is_ok()) return lhs;
    auto expr = std::move(lhs).take();
    while (peek().kind == Token::kOr) {
      take();
      auto rhs = parse_and();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(false, std::move(expr),
                                          std::move(rhs).take());
    }
    return expr;
  }

  Result<std::shared_ptr<Expr>> parse_and() {
    auto lhs = parse_unary();
    if (!lhs.is_ok()) return lhs;
    auto expr = std::move(lhs).take();
    while (peek().kind == Token::kAnd) {
      take();
      auto rhs = parse_unary();
      if (!rhs.is_ok()) return rhs;
      expr = std::make_shared<BinaryExpr>(true, std::move(expr),
                                          std::move(rhs).take());
    }
    return expr;
  }

  Result<std::shared_ptr<Expr>> parse_unary() {
    if (peek().kind == Token::kNot) {
      take();
      auto inner = parse_unary();
      if (!inner.is_ok()) return inner;
      return std::shared_ptr<Expr>(
          std::make_shared<NotExpr>(std::move(inner).take()));
    }
    return parse_primary();
  }

  Result<std::shared_ptr<Expr>> parse_primary() {
    if (peek().kind == Token::kLParen) {
      take();
      auto inner = parse_or();
      if (!inner.is_ok()) return inner;
      if (peek().kind != Token::kRParen) {
        return Status::invalid_argument("missing ')'");
      }
      take();
      return inner;
    }
    if (peek().kind != Token::kIdent) {
      return Status::invalid_argument("expected identifier, got '" +
                                      peek().text + "'");
    }
    const std::string key = take().text;
    if (peek().kind == Token::kEq || peek().kind == Token::kNe) {
      const bool negated = take().kind == Token::kNe;
      if (peek().kind != Token::kIdent && peek().kind != Token::kString) {
        return Status::invalid_argument("expected literal after comparison");
      }
      const std::string literal = take().text;
      return std::shared_ptr<Expr>(
          std::make_shared<CompareExpr>(key, literal, negated));
    }
    return std::shared_ptr<Expr>(std::make_shared<IdentExpr>(key));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<Expr>> parse_expr(const std::string& text) {
  auto tokens = Lexer(text).lex();
  if (!tokens.is_ok()) return tokens.status();
  return ExprParser(std::move(tokens).take()).parse();
}

// ---- template nodes ----------------------------------------------------------

struct Template::Node {
  // Text node when expr-less leaf; otherwise a conditional with branches.
  std::string text;  // literal chunk (may contain ${...})
  struct Branch {
    std::shared_ptr<Expr> condition;  // nullptr = else
    std::vector<std::shared_ptr<Node>> children;
  };
  std::vector<Branch> branches;  // empty for text nodes
  [[nodiscard]] bool is_text() const { return branches.empty(); }
};

namespace {

// Returns the directive body if the line is `//% ...`, else nullopt.
std::optional<std::string> directive_of(std::string_view line) {
  auto trimmed = trim(line);
  if (!starts_with(trimmed, "//%")) return std::nullopt;
  return std::string(trim(trimmed.substr(3)));
}

Status substitute(const std::string& text, const OptionSet& options,
                  const std::map<std::string, std::string>& extras,
                  std::string& out) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t open = text.find("${", pos);
    if (open == std::string::npos) {
      out.append(text, pos, std::string::npos);
      return Status::ok();
    }
    out.append(text, pos, open - pos);
    const size_t close = text.find('}', open + 2);
    if (close == std::string::npos) {
      return Status::invalid_argument("unterminated ${...}");
    }
    const std::string key = text.substr(open + 2, close - open - 2);
    if (auto value = options.get(key)) {
      out += *value;
    } else if (auto it = extras.find(key); it != extras.end()) {
      out += it->second;
    } else {
      // Unknown keys pass through verbatim so generated files (e.g.
      // CMakeLists.txt) can use their own ${VAR} syntax.
      out.append(text, open, close - open + 1);
    }
    pos = close + 1;
  }
  return Status::ok();
}

void collect_substitution_keys(const std::string& text,
                               std::set<std::string>& out) {
  size_t pos = 0;
  while ((pos = text.find("${", pos)) != std::string::npos) {
    const size_t close = text.find('}', pos + 2);
    if (close == std::string::npos) return;
    out.insert(text.substr(pos + 2, close - pos - 2));
    pos = close + 1;
  }
}

}  // namespace

Result<Template> Template::parse(const std::string& source) {
  Template tmpl;
  // Stack of open conditional scopes: target vectors to append nodes to.
  struct Scope {
    std::shared_ptr<Node> cond_node;  // the conditional being built
  };
  std::vector<Scope> stack;

  auto current_children = [&]() -> std::vector<std::shared_ptr<Node>>& {
    if (stack.empty()) return tmpl.nodes_;
    return stack.back().cond_node->branches.back().children;
  };

  auto append_text = [&](const std::string& line) {
    auto& children = current_children();
    if (!children.empty() && children.back()->is_text()) {
      children.back()->text += line;
    } else {
      auto node = std::make_shared<Node>();
      node->text = line;
      children.push_back(std::move(node));
    }
    collect_substitution_keys(line, tmpl.substitution_keys_);
  };

  size_t start = 0;
  int line_no = 0;
  while (start <= source.size()) {
    ++line_no;
    size_t end = source.find('\n', start);
    const bool last = end == std::string::npos;
    std::string line =
        source.substr(start, last ? std::string::npos : end - start + 1);
    start = last ? source.size() + 1 : end + 1;
    if (line.empty() && last) break;

    auto directive = directive_of(line);
    if (!directive) {
      append_text(line);
      continue;
    }
    const std::string& body = *directive;
    if (starts_with(body, "if ")) {
      auto expr = parse_expr(body.substr(3));
      if (!expr.is_ok()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": " + expr.status().message());
      }
      auto node = std::make_shared<Node>();
      node->branches.push_back({std::move(expr).take(), {}});
      node->branches.back().condition->collect_keys(tmpl.condition_keys_);
      current_children().push_back(node);
      stack.push_back({node});
    } else if (starts_with(body, "elif ")) {
      if (stack.empty()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": elif without if");
      }
      auto expr = parse_expr(body.substr(5));
      if (!expr.is_ok()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": " + expr.status().message());
      }
      auto& node = stack.back().cond_node;
      if (!node->branches.back().condition) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": elif after else");
      }
      node->branches.push_back({std::move(expr).take(), {}});
      node->branches.back().condition->collect_keys(tmpl.condition_keys_);
    } else if (body == "else") {
      if (stack.empty()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": else without if");
      }
      auto& node = stack.back().cond_node;
      if (!node->branches.back().condition) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": duplicate else");
      }
      node->branches.push_back({nullptr, {}});
    } else if (body == "end") {
      if (stack.empty()) {
        return Status::invalid_argument("line " + std::to_string(line_no) +
                                        ": end without if");
      }
      stack.pop_back();
    } else {
      return Status::invalid_argument("line " + std::to_string(line_no) +
                                      ": unknown directive '" + body + "'");
    }
  }
  if (!stack.empty()) {
    return Status::invalid_argument("unterminated //% if");
  }
  return tmpl;
}

namespace {

Status render_nodes(const std::vector<std::shared_ptr<Template::Node>>& nodes,
                    const OptionSet& options,
                    const std::map<std::string, std::string>& extras,
                    std::string& out);

}  // namespace

Result<std::string> Template::render(
    const OptionSet& options,
    const std::map<std::string, std::string>& extras) const {
  std::string out;
  auto status = render_nodes(nodes_, options, extras, out);
  if (!status.is_ok()) return status;
  return out;
}

namespace {

Status render_nodes(const std::vector<std::shared_ptr<Template::Node>>& nodes,
                    const OptionSet& options,
                    const std::map<std::string, std::string>& extras,
                    std::string& out) {
  for (const auto& node : nodes) {
    if (node->is_text()) {
      auto status = substitute(node->text, options, extras, out);
      if (!status.is_ok()) return status;
      continue;
    }
    for (const auto& branch : node->branches) {
      if (branch.condition == nullptr || branch.condition->evaluate(options)) {
        auto status = render_nodes(branch.children, options, extras, out);
        if (!status.is_ok()) return status;
        break;
      }
    }
  }
  return Status::ok();
}

}  // namespace

}  // namespace cops::gdp
