// Sandboxed filesystem view for COPS-FTP.
//
// All FTP paths (absolute or relative to the session's working directory)
// resolve inside a chroot-style root; traversal above the root is refused.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace cops::ftp {

struct DirEntry {
  std::string name;
  bool is_directory = false;
  uint64_t size = 0;
  int64_t mtime_seconds = 0;
};

class FsView {
 public:
  explicit FsView(std::string root) : root_(std::move(root)) {}

  // Resolves `ftp_path` (absolute "/a/b" or relative "a/b") against `cwd`
  // into a normalized virtual path ("/a/b"); empty string on traversal.
  [[nodiscard]] static std::string resolve(const std::string& cwd,
                                           const std::string& ftp_path);

  // Virtual path → real path under the root.
  [[nodiscard]] std::string real_path(const std::string& virtual_path) const;

  [[nodiscard]] bool exists(const std::string& virtual_path) const;
  [[nodiscard]] bool is_directory(const std::string& virtual_path) const;
  [[nodiscard]] Result<uint64_t> file_size(const std::string& virtual_path) const;
  [[nodiscard]] Result<std::vector<DirEntry>> list(
      const std::string& virtual_path) const;
  Status make_directory(const std::string& virtual_path);
  Status rename(const std::string& from_virtual, const std::string& to_virtual);
  Status remove_directory(const std::string& virtual_path);
  Status remove_file(const std::string& virtual_path);
  Status write_file(const std::string& virtual_path,
                    const std::string& contents);

  [[nodiscard]] const std::string& root() const { return root_; }

  // Formats a directory entry as one "LIST" output line (ls -l style).
  [[nodiscard]] static std::string format_list_line(const DirEntry& entry);

 private:
  std::string root_;
};

}  // namespace cops::ftp
