// Per-connection FTP session state and data-connection mechanics.
//
// COPS-FTP runs with the paper's Table 1 settings: synchronous completion
// events and dynamic event-thread allocation.  Data transfers therefore
// perform *blocking* socket I/O on the Event Processor worker that handles
// the command — the processor pool grows under load (ProcessorController) —
// while the control connections stay event-driven on the dispatcher.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "ftp/command.hpp"

namespace cops::ftp {

// RAII blocking data-connection socket.
class DataConnection {
 public:
  DataConnection() = default;
  explicit DataConnection(int fd) : fd_(fd) {}
  ~DataConnection() { close(); }
  DataConnection(DataConnection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  DataConnection& operator=(DataConnection&& other) noexcept;
  DataConnection(const DataConnection&) = delete;
  DataConnection& operator=(const DataConnection&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  Status send_all(const std::string& data);
  // Reads to EOF, up to `max_bytes`.
  Result<std::string> read_all(size_t max_bytes = 64 * 1024 * 1024);
  void close();

 private:
  int fd_ = -1;
};

class FtpSession {
 public:
  ~FtpSession() { close_pasv(); }

  // ---- login state -------------------------------------------------------
  std::string username;
  bool authenticated = false;
  std::string cwd = "/";
  char transfer_type = 'I';
  // Pending RNFR source path (consumed by RNTO).
  std::string rename_from;

  // buffer_mgmt=pooled: the Decode hook parses into this recycled command
  // (verb/arg keep their capacity) and Handle receives a pointer to it.
  // Safe because the pipeline token invariant allows at most one command in
  // flight per connection.
  FtpCommand scratch_command;

  // ---- data connection setup ----------------------------------------------
  // Passive mode: binds an ephemeral listener; the reply advertises its port.
  Result<uint16_t> enter_passive(const std::string& host);
  void close_pasv();
  [[nodiscard]] bool passive_armed() const { return pasv_fd_ >= 0; }

  // Active mode: remember the PORT target.
  void set_port_target(std::string host, uint16_t port);
  [[nodiscard]] bool port_armed() const { return port_target_set_; }

  // Establishes the data connection per the armed mode (blocking, with
  // timeout).  Consumes the armed state.
  Result<DataConnection> open_data_connection(int timeout_ms = 3000);

 private:
  int pasv_fd_ = -1;
  std::string port_host_;
  uint16_t port_port_ = 0;
  bool port_target_set_ = false;
};

}  // namespace cops::ftp
