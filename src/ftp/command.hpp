// FTP command parsing (the COPS-FTP Decode step output).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace cops::ftp {

struct FtpCommand {
  std::string verb;  // upper-cased, e.g. "RETR"
  std::string arg;   // raw argument (may be empty)
};

// Parses one "VERB [arg]\r\n" line (without the terminator).
[[nodiscard]] std::optional<FtpCommand> parse_command(std::string_view line);

// Allocation-free variant: parses into `out`, reusing its string capacity
// (buffer_mgmt=pooled decode path).  Returns false on a syntax error, in
// which case `out` is unspecified.
bool parse_command_into(std::string_view line, FtpCommand& out);

// Parses the PORT h1,h2,h3,h4,p1,p2 argument; returns {host, port}.
[[nodiscard]] std::optional<std::pair<std::string, uint16_t>> parse_port_arg(
    std::string_view arg);

// Formats a PASV 227 reply body "(h1,h2,h3,h4,p1,p2)".
[[nodiscard]] std::string format_pasv(const std::string& host, uint16_t port);

}  // namespace cops::ftp
