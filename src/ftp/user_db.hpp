// User database for COPS-FTP logins.
//
// Stands in for the LDAP-backed user store of the Apache FTPServer code the
// paper's COPS-FTP reused (Table 3 "Reused code" covered "a database for
// LDAP access and user activity monitoring").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace cops::ftp {

struct UserRecord {
  std::string password;
  bool write_allowed = false;
};

class UserDb {
 public:
  // Adds or replaces a user.
  void add_user(const std::string& name, const std::string& password,
                bool write_allowed = false);
  void allow_anonymous(bool allowed) { anonymous_ = allowed; }

  [[nodiscard]] bool known_user(const std::string& name) const;
  // Checks credentials; anonymous (any password) if enabled.
  [[nodiscard]] bool authenticate(const std::string& name,
                                  const std::string& password) const;
  [[nodiscard]] bool can_write(const std::string& name) const;

  // Activity monitoring (the reused substrate's feature).
  void record_login(const std::string& name);
  [[nodiscard]] uint64_t login_count(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, UserRecord> users_;
  std::map<std::string, uint64_t> logins_;
  bool anonymous_ = false;
};

}  // namespace cops::ftp
