#include "ftp/command.hpp"

#include "common/string_util.hpp"

namespace cops::ftp {

bool parse_command_into(std::string_view line, FtpCommand& out) {
  line = cops::trim(line);
  if (line.empty() || line.size() > 512) return false;
  const size_t space = line.find(' ');
  // assign() + in-place upper-casing: verb/arg keep their capacity across
  // commands, so a recycled FtpCommand decodes without allocating.
  if (space == std::string_view::npos) {
    out.verb.assign(line);
    out.arg.clear();
  } else {
    out.verb.assign(line.substr(0, space));
    const std::string_view arg = cops::trim(line.substr(space + 1));
    out.arg.assign(arg);
  }
  for (char& c : out.verb) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  if (out.verb.empty() || out.verb.size() > 4) return false;
  for (char c : out.verb) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

std::optional<FtpCommand> parse_command(std::string_view line) {
  FtpCommand cmd;
  if (!parse_command_into(line, cmd)) return std::nullopt;
  return cmd;
}

std::optional<std::pair<std::string, uint16_t>> parse_port_arg(
    std::string_view arg) {
  const auto parts = cops::split_trimmed(arg, ',');
  if (parts.size() != 6) return std::nullopt;
  long nums[6];
  for (size_t i = 0; i < 6; ++i) {
    nums[i] = cops::parse_non_negative(parts[i]);
    if (nums[i] < 0 || nums[i] > 255) return std::nullopt;
  }
  const std::string host = parts[0] + "." + parts[1] + "." + parts[2] + "." +
                           parts[3];
  const auto port = static_cast<uint16_t>(nums[4] * 256 + nums[5]);
  if (port == 0) return std::nullopt;
  return std::make_pair(host, port);
}

std::string format_pasv(const std::string& host, uint16_t port) {
  std::string dotted = cops::replace_all(host, ".", ",");
  return "(" + dotted + "," + std::to_string(port / 256) + "," +
         std::to_string(port % 256) + ")";
}

}  // namespace cops::ftp
