// FTP reply codes (RFC 959) used by COPS-FTP.
#pragma once

#include <string>

namespace cops::ftp {

// A single-line FTP reply: "<code> <text>\r\n".
struct Reply {
  int code = 200;
  std::string text;

  [[nodiscard]] std::string serialize() const {
    return std::to_string(code) + " " + text + "\r\n";
  }
};

inline Reply reply(int code, std::string text) {
  return {code, std::move(text)};
}

// Common replies.
inline Reply service_ready() { return {220, "COPS-FTP Service ready"}; }
inline Reply goodbye() { return {221, "Goodbye"}; }
inline Reply ok() { return {200, "Command okay"}; }
inline Reply syst() { return {215, "UNIX Type: L8"}; }
inline Reply need_password() { return {331, "User name okay, need password"}; }
inline Reply logged_in() { return {230, "User logged in, proceed"}; }
inline Reply not_logged_in() { return {530, "Not logged in"}; }
inline Reply login_failed() { return {530, "Login incorrect"}; }
inline Reply file_unavailable(const std::string& what) {
  return {550, what + ": No such file or directory"};
}
inline Reply action_ok(std::string text) { return {250, std::move(text)}; }
inline Reply opening_data(std::string what) {
  return {150, "Opening BINARY mode data connection for " + std::move(what)};
}
inline Reply transfer_complete() { return {226, "Transfer complete"}; }
inline Reply cant_open_data() { return {425, "Can't open data connection"}; }
inline Reply transfer_aborted() { return {426, "Connection closed; transfer aborted"}; }
inline Reply syntax_error() { return {500, "Syntax error, command unrecognized"}; }
inline Reply bad_arguments() { return {501, "Syntax error in parameters"}; }
inline Reply not_implemented() { return {502, "Command not implemented"}; }

}  // namespace cops::ftp
