#include "ftp/user_db.hpp"

namespace cops::ftp {

void UserDb::add_user(const std::string& name, const std::string& password,
                      bool write_allowed) {
  std::lock_guard lock(mutex_);
  users_[name] = {password, write_allowed};
}

bool UserDb::known_user(const std::string& name) const {
  std::lock_guard lock(mutex_);
  if (anonymous_ && name == "anonymous") return true;
  return users_.count(name) != 0;
}

bool UserDb::authenticate(const std::string& name,
                          const std::string& password) const {
  std::lock_guard lock(mutex_);
  if (anonymous_ && name == "anonymous") return true;
  auto it = users_.find(name);
  return it != users_.end() && it->second.password == password;
}

bool UserDb::can_write(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = users_.find(name);
  return it != users_.end() && it->second.write_allowed;
}

void UserDb::record_login(const std::string& name) {
  std::lock_guard lock(mutex_);
  logins_[name] += 1;
}

uint64_t UserDb::login_count(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = logins_.find(name);
  return it == logins_.end() ? 0 : it->second;
}

}  // namespace cops::ftp
