#include "ftp/session.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace cops::ftp {

DataConnection& DataConnection::operator=(DataConnection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status DataConnection::send_all(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return Status::from_errno("data send");
    sent += static_cast<size_t>(n);
  }
  return Status::ok();
}

Result<std::string> DataConnection::read_all(size_t max_bytes) {
  std::string out;
  char buf[16 * 1024];
  while (out.size() < max_bytes) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return out;  // orderly EOF ends the upload
    if (n < 0) return Status::from_errno("data recv");
    out.append(buf, static_cast<size_t>(n));
  }
  return Status::resource_exhausted("upload exceeds limit");
}

void DataConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<uint16_t> FtpSession::enter_passive(const std::string& host) {
  close_pasv();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::from_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::invalid_argument("bad PASV host " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 1) < 0) {
    ::close(fd);
    return Status::from_errno("pasv bind/listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  pasv_fd_ = fd;
  port_target_set_ = false;
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

void FtpSession::close_pasv() {
  if (pasv_fd_ >= 0) {
    ::close(pasv_fd_);
    pasv_fd_ = -1;
  }
}

void FtpSession::set_port_target(std::string host, uint16_t port) {
  close_pasv();
  port_host_ = std::move(host);
  port_port_ = port;
  port_target_set_ = true;
}

Result<DataConnection> FtpSession::open_data_connection(int timeout_ms) {
  if (pasv_fd_ >= 0) {
    pollfd pfd{pasv_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) {
      close_pasv();
      return Status::unavailable("no data connection within timeout");
    }
    const int client = ::accept(pasv_fd_, nullptr, nullptr);
    close_pasv();
    if (client < 0) return Status::from_errno("pasv accept");
    return DataConnection(client);
  }
  if (port_target_set_) {
    port_target_set_ = false;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Status::from_errno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_port_);
    if (inet_pton(AF_INET, port_host_.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::invalid_argument("bad PORT host");
    }
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      return Status::from_errno("active connect");
    }
    return DataConnection(fd);
  }
  return Status::invalid_argument("use PASV or PORT first");
}

}  // namespace cops::ftp
