// COPS-FTP — the paper's event-driven FTP server (Section V.A), built from
// the N-Server hooks.
//
// Paper's option settings (Table 1, COPS-FTP column): one dispatcher,
// separate processor pool, encode/decode on, *synchronous* completion
// events, *dynamic* event-thread allocation, no cache, shutdown-long-idle
// on.  The synchronous + dynamic pairing is deliberate: data transfers
// block a worker, and the ProcessorController grows the pool while
// transfers are in flight.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "ftp/command.hpp"
#include "ftp/fs_view.hpp"
#include "ftp/replies.hpp"
#include "ftp/session.hpp"
#include "ftp/user_db.hpp"
#include "nserver/server.hpp"

namespace cops::ftp {

struct FtpServerConfig {
  std::string root = ".";       // served directory tree
  std::string pasv_host = "127.0.0.1";
  bool allow_anonymous = true;
  size_t max_upload_bytes = 64 * 1024 * 1024;
  int data_timeout_ms = 3000;
};

class FtpAppHooks : public nserver::AppHooks {
 public:
  FtpAppHooks(FtpServerConfig config, std::shared_ptr<UserDb> users)
      : config_(std::move(config)),
        users_(std::move(users)),
        fs_(config_.root) {
    if (config_.allow_anonymous) users_->allow_anonymous(true);
  }

  void on_connect(nserver::RequestContext& ctx) override;
  nserver::DecodeResult decode(nserver::RequestContext& ctx,
                               ByteBuffer& in) override;
  void handle(nserver::RequestContext& ctx, std::any request) override;
  std::string encode(nserver::RequestContext& ctx,
                     std::any response) override;

  [[nodiscard]] uint64_t commands_handled() const { return commands_.load(); }
  [[nodiscard]] uint64_t transfers_completed() const {
    return transfers_.load();
  }
  [[nodiscard]] FsView& fs() { return fs_; }
  [[nodiscard]] UserDb& users() { return *users_; }

 private:
  FtpSession& session_of(nserver::RequestContext& ctx);

  // Command groups (each replies via ctx).
  void handle_login(nserver::RequestContext& ctx, FtpSession& session,
                    const FtpCommand& cmd);
  void handle_navigation(nserver::RequestContext& ctx, FtpSession& session,
                         const FtpCommand& cmd);
  void handle_transfer_setup(nserver::RequestContext& ctx,
                             FtpSession& session, const FtpCommand& cmd);
  void handle_retr(nserver::RequestContext& ctx, FtpSession& session,
                   const std::string& arg);
  void handle_stor(nserver::RequestContext& ctx, FtpSession& session,
                   const std::string& arg);
  void handle_list(nserver::RequestContext& ctx, FtpSession& session,
                   const std::string& arg, bool names_only);
  void handle_mutation(nserver::RequestContext& ctx, FtpSession& session,
                       const FtpCommand& cmd);

  FtpServerConfig config_;
  std::shared_ptr<UserDb> users_;
  FsView fs_;
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> transfers_{0};
};

// Bundles ServerOptions + FTP hooks into a runnable FTP server.
class CopsFtpServer {
 public:
  CopsFtpServer(nserver::ServerOptions options, FtpServerConfig config,
                std::shared_ptr<UserDb> users = nullptr);

  Status start() { return server_.start(); }
  void stop() { server_.stop(); }

  [[nodiscard]] uint16_t port() const { return server_.port(); }
  // Admin/metrics endpoint port (O11+); 0 unless stats_export is enabled.
  [[nodiscard]] uint16_t admin_port() const { return server_.admin_port(); }
  [[nodiscard]] nserver::Server& server() { return server_; }
  [[nodiscard]] FtpAppHooks& hooks() { return *hooks_; }

  // The paper's COPS-FTP option settings (Table 1, third column).
  static nserver::ServerOptions default_options();

 private:
  std::shared_ptr<FtpAppHooks> hooks_;
  nserver::Server server_;
};

}  // namespace cops::ftp
