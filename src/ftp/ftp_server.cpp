#include "ftp/ftp_server.hpp"

#include <utility>

#include "common/string_util.hpp"

namespace cops::ftp {

void FtpAppHooks::on_connect(nserver::RequestContext& ctx) {
  ctx.send(service_ready().serialize());
}

nserver::DecodeResult FtpAppHooks::decode(nserver::RequestContext& ctx,
                                          ByteBuffer& in) {
  const size_t eol = in.find("\r\n");
  size_t line_len = eol;
  size_t term_len = 2;
  if (eol == std::string_view::npos) {
    // Be lenient with bare-LF clients.
    const size_t lf = in.find("\n");
    if (lf == std::string_view::npos) {
      return in.readable() > 1024 ? nserver::DecodeResult::error()
                                  : nserver::DecodeResult::need_more();
    }
    line_len = lf;
    term_len = 1;
  }
  const std::string_view line = in.view().substr(0, line_len);
  if (ctx.buffer_mgmt() == nserver::BufferMgmt::kPooled) {
    // Parse straight from the buffer into the session's recycled command
    // (verb/arg capacities survive across commands — no allocations in
    // steady state), then consume and pass Handle a pointer.
    FtpCommand& cmd = session_of(ctx).scratch_command;
    if (!parse_command_into(line, cmd)) {
      // Unrecognized syntax is an FTP-level error (500), not a connection
      // error: keep the session alive.
      cmd.verb.clear();
      cmd.arg.assign(line);
    }
    in.consume(line_len + term_len);
    return nserver::DecodeResult::request_ready(std::any(&cmd));
  }
  const std::string line_copy(line);
  in.consume(line_len + term_len);
  auto command = parse_command(line_copy);
  if (!command) {
    return nserver::DecodeResult::request_ready(FtpCommand{"", line_copy});
  }
  return nserver::DecodeResult::request_ready(std::move(*command));
}

std::string FtpAppHooks::encode(nserver::RequestContext& /*ctx*/,
                                std::any response) {
  return std::any_cast<Reply>(std::move(response)).serialize();
}

FtpSession& FtpAppHooks::session_of(nserver::RequestContext& ctx) {
  auto& state = ctx.app_state();
  if (!state) state = std::make_shared<FtpSession>();
  return *std::static_pointer_cast<FtpSession>(state);
}

void FtpAppHooks::handle(nserver::RequestContext& ctx, std::any request) {
  commands_.fetch_add(1, std::memory_order_relaxed);
  // Pooled decode passes a pointer to the session's scratch command;
  // per_request passes the FtpCommand by value.
  FtpCommand moved;
  const FtpCommand* cmdp;
  if (auto* pp = std::any_cast<FtpCommand*>(&request)) {
    cmdp = *pp;
  } else {
    moved = std::any_cast<FtpCommand>(std::move(request));
    cmdp = &moved;
  }
  const FtpCommand& cmd = *cmdp;
  auto& session = session_of(ctx);

  if (cmd.verb.empty()) {
    ctx.reply(syntax_error());
    return;
  }
  // ---- commands allowed before login --------------------------------------
  if (cmd.verb == "USER" || cmd.verb == "PASS") {
    handle_login(ctx, session, cmd);
    return;
  }
  if (cmd.verb == "QUIT") {
    ctx.close_after_reply();
    ctx.reply(goodbye());
    return;
  }
  if (cmd.verb == "SYST") {
    ctx.reply(syst());
    return;
  }
  if (cmd.verb == "NOOP") {
    ctx.reply(ok());
    return;
  }
  if (cmd.verb == "FEAT") {
    ctx.reply(reply(211, "End"));
    return;
  }
  if (!session.authenticated) {
    ctx.reply(not_logged_in());
    return;
  }
  // ---- authenticated commands ----------------------------------------------
  if (cmd.verb == "TYPE") {
    if (cmd.arg == "I" || cmd.arg == "A" || cmd.arg == "L 8") {
      session.transfer_type = cmd.arg.empty() ? 'I' : cmd.arg[0];
      ctx.reply(ok());
    } else {
      ctx.reply(bad_arguments());
    }
    return;
  }
  if (cmd.verb == "PWD" || cmd.verb == "CWD" || cmd.verb == "CDUP") {
    handle_navigation(ctx, session, cmd);
    return;
  }
  if (cmd.verb == "PASV" || cmd.verb == "PORT") {
    handle_transfer_setup(ctx, session, cmd);
    return;
  }
  if (cmd.verb == "RETR") {
    handle_retr(ctx, session, cmd.arg);
    return;
  }
  if (cmd.verb == "STOR") {
    handle_stor(ctx, session, cmd.arg);
    return;
  }
  if (cmd.verb == "LIST" || cmd.verb == "NLST") {
    handle_list(ctx, session, cmd.arg, cmd.verb == "NLST");
    return;
  }
  if (cmd.verb == "SIZE") {
    const auto path = FsView::resolve(session.cwd, cmd.arg);
    auto size = path.empty() ? Result<uint64_t>(Status::not_found(cmd.arg))
                             : fs_.file_size(path);
    if (size.is_ok()) {
      ctx.reply(reply(213, std::to_string(size.value())));
    } else {
      ctx.reply(file_unavailable(cmd.arg));
    }
    return;
  }
  if (cmd.verb == "DELE" || cmd.verb == "MKD" || cmd.verb == "RMD") {
    handle_mutation(ctx, session, cmd);
    return;
  }
  if (cmd.verb == "RNFR") {
    if (!users_->can_write(session.username)) {
      ctx.reply(reply(550, "Permission denied"));
      return;
    }
    const auto path = FsView::resolve(session.cwd, cmd.arg);
    if (path.empty() || !fs_.exists(path)) {
      ctx.reply(file_unavailable(cmd.arg));
      return;
    }
    session.rename_from = path;
    ctx.reply(reply(350, "Ready for RNTO"));
    return;
  }
  if (cmd.verb == "RNTO") {
    if (session.rename_from.empty()) {
      ctx.reply(reply(503, "RNFR first"));
      return;
    }
    const auto target = FsView::resolve(session.cwd, cmd.arg);
    const std::string source = std::exchange(session.rename_from, {});
    if (target.empty() || target == "/") {
      ctx.reply(bad_arguments());
      return;
    }
    auto status = fs_.rename(source, target);
    ctx.reply(status.is_ok() ? action_ok("Rename successful")
                             : reply(553, "Rename failed"));
    return;
  }
  ctx.reply(not_implemented());
}

void FtpAppHooks::handle_login(nserver::RequestContext& ctx,
                               FtpSession& session, const FtpCommand& cmd) {
  if (cmd.verb == "USER") {
    if (cmd.arg.empty()) {
      ctx.reply(bad_arguments());
      return;
    }
    session.username = cmd.arg;
    session.authenticated = false;
    ctx.reply(need_password());
    return;
  }
  // PASS
  if (session.username.empty()) {
    ctx.reply(reply(503, "Login with USER first"));
    return;
  }
  if (users_->authenticate(session.username, cmd.arg)) {
    session.authenticated = true;
    users_->record_login(session.username);
    ctx.reply(logged_in());
  } else {
    session.authenticated = false;
    ctx.reply(login_failed());
  }
}

void FtpAppHooks::handle_navigation(nserver::RequestContext& ctx,
                                    FtpSession& session,
                                    const FtpCommand& cmd) {
  if (cmd.verb == "PWD") {
    ctx.reply(reply(257, "\"" + session.cwd + "\" is the current directory"));
    return;
  }
  const std::string target = cmd.verb == "CDUP" ? ".." : cmd.arg;
  const auto resolved = FsView::resolve(session.cwd, target);
  if (resolved.empty() || !fs_.is_directory(resolved)) {
    ctx.reply(file_unavailable(target));
    return;
  }
  session.cwd = resolved;
  ctx.reply(action_ok("Directory changed to " + resolved));
}

void FtpAppHooks::handle_transfer_setup(nserver::RequestContext& ctx,
                                        FtpSession& session,
                                        const FtpCommand& cmd) {
  if (cmd.verb == "PASV") {
    auto port = session.enter_passive(config_.pasv_host);
    if (!port.is_ok()) {
      ctx.reply(cant_open_data());
      return;
    }
    ctx.reply(reply(227, "Entering Passive Mode " +
                             format_pasv(config_.pasv_host, port.value())));
    return;
  }
  // PORT
  auto target = parse_port_arg(cmd.arg);
  if (!target) {
    ctx.reply(bad_arguments());
    return;
  }
  session.set_port_target(target->first, target->second);
  ctx.reply(ok());
}

void FtpAppHooks::handle_retr(nserver::RequestContext& ctx,
                              FtpSession& session, const std::string& arg) {
  const auto path = FsView::resolve(session.cwd, arg);
  if (path.empty() || !fs_.exists(path) || fs_.is_directory(path)) {
    ctx.reply(file_unavailable(arg));
    return;
  }
  // fetch_file goes through the framework: with COPS-FTP's synchronous
  // completion mode this blocks the worker; with asynchronous mode the
  // continuation resumes as a Completion event.
  ctx.send(opening_data(arg).serialize());
  ctx.fetch_file(
      fs_.real_path(path),
      [this, &session](nserver::RequestContext& ctx,
                       Result<nserver::FileDataPtr> file) {
        if (!file.is_ok()) {
          ctx.reply(transfer_aborted());
          return;
        }
        auto data_conn = session.open_data_connection(config_.data_timeout_ms);
        if (!data_conn.is_ok()) {
          ctx.reply(cant_open_data());
          return;
        }
        auto status = data_conn.value().send_all(file.value()->bytes);
        data_conn.value().close();
        if (!status.is_ok()) {
          ctx.reply(transfer_aborted());
          return;
        }
        transfers_.fetch_add(1, std::memory_order_relaxed);
        ctx.reply(transfer_complete());
      });
}

void FtpAppHooks::handle_stor(nserver::RequestContext& ctx,
                              FtpSession& session, const std::string& arg) {
  if (!users_->can_write(session.username)) {
    ctx.reply(reply(550, "Permission denied"));
    return;
  }
  const auto path = FsView::resolve(session.cwd, arg);
  if (path.empty() || path == "/") {
    ctx.reply(bad_arguments());
    return;
  }
  ctx.send(opening_data(arg).serialize());
  auto data_conn = session.open_data_connection(config_.data_timeout_ms);
  if (!data_conn.is_ok()) {
    ctx.reply(cant_open_data());
    return;
  }
  auto contents = data_conn.value().read_all(config_.max_upload_bytes);
  data_conn.value().close();
  if (!contents.is_ok()) {
    ctx.reply(transfer_aborted());
    return;
  }
  auto status = fs_.write_file(path, contents.value());
  if (!status.is_ok()) {
    ctx.reply(reply(550, "Store failed"));
    return;
  }
  transfers_.fetch_add(1, std::memory_order_relaxed);
  ctx.reply(transfer_complete());
}

void FtpAppHooks::handle_list(nserver::RequestContext& ctx,
                              FtpSession& session, const std::string& arg,
                              bool names_only) {
  const auto path = FsView::resolve(session.cwd, arg.empty() ? "." : arg);
  auto entries = path.empty()
                     ? Result<std::vector<DirEntry>>(Status::not_found(arg))
                     : fs_.list(path);
  if (!entries.is_ok()) {
    ctx.reply(file_unavailable(arg));
    return;
  }
  std::string listing;
  for (const auto& entry : entries.value()) {
    listing += names_only ? entry.name + "\r\n"
                          : FsView::format_list_line(entry);
  }
  ctx.send(opening_data("file list").serialize());
  auto data_conn = session.open_data_connection(config_.data_timeout_ms);
  if (!data_conn.is_ok()) {
    ctx.reply(cant_open_data());
    return;
  }
  auto status = data_conn.value().send_all(listing);
  data_conn.value().close();
  ctx.reply(status.is_ok() ? transfer_complete() : transfer_aborted());
}

void FtpAppHooks::handle_mutation(nserver::RequestContext& ctx,
                                  FtpSession& session, const FtpCommand& cmd) {
  if (!users_->can_write(session.username)) {
    ctx.reply(reply(550, "Permission denied"));
    return;
  }
  const auto path = FsView::resolve(session.cwd, cmd.arg);
  if (path.empty() || path == "/") {
    ctx.reply(bad_arguments());
    return;
  }
  Status status = Status::ok();
  if (cmd.verb == "DELE") {
    status = fs_.remove_file(path);
    if (status.is_ok()) ctx.reply(action_ok("File deleted"));
  } else if (cmd.verb == "MKD") {
    status = fs_.make_directory(path);
    if (status.is_ok()) {
      ctx.reply(reply(257, "\"" + path + "\" directory created"));
    }
  } else {  // RMD
    status = fs_.remove_directory(path);
    if (status.is_ok()) ctx.reply(action_ok("Directory removed"));
  }
  if (!status.is_ok()) ctx.reply(file_unavailable(cmd.arg));
}

nserver::ServerOptions CopsFtpServer::default_options() {
  nserver::ServerOptions options;
  options.dispatcher_threads = 1;                                   // O1
  options.separate_processor_pool = true;                           // O2
  options.encode_decode = true;                                     // O3
  options.completion = nserver::CompletionMode::kSynchronous;       // O4
  options.thread_allocation = nserver::ThreadAllocation::kDynamic;  // O5
  options.min_processor_threads = 2;
  options.max_processor_threads = 16;
  options.cache_policy = nserver::CachePolicyKind::kNone;           // O6
  options.shutdown_long_idle = true;                                // O7
  options.idle_timeout = std::chrono::seconds(300);
  options.event_scheduling = false;                                 // O8
  options.overload_control = false;                                 // O9
  options.mode = nserver::ServerMode::kProduction;                  // O10
  options.profiling = false;                                        // O11
  options.logging = false;                                          // O12
  // Control-channel replies are short strings; FTP data transfers run on a
  // separate blocking connection, so the copy path costs nothing here.
  options.send_path = nserver::SendPath::kCopy;
  // Command lines are tiny and sessions long-lived; the per-request shape
  // keeps COPS-FTP as the generated per_request exemplar (contrast with
  // COPS-HTTP's pooled setting).
  options.buffer_mgmt = nserver::BufferMgmt::kPerRequest;
  return options;
}

CopsFtpServer::CopsFtpServer(nserver::ServerOptions options,
                             FtpServerConfig config,
                             std::shared_ptr<UserDb> users)
    : hooks_(std::make_shared<FtpAppHooks>(
          std::move(config),
          users ? std::move(users) : std::make_shared<UserDb>())),
      server_(std::move(options), hooks_) {}

}  // namespace cops::ftp
