#include "ftp/fs_view.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "common/string_util.hpp"

namespace cops::ftp {
namespace fs = std::filesystem;

std::string FsView::resolve(const std::string& cwd,
                            const std::string& ftp_path) {
  std::string combined;
  if (!ftp_path.empty() && ftp_path.front() == '/') {
    combined = ftp_path;
  } else {
    combined = cwd;
    if (combined.empty() || combined.back() != '/') combined += '/';
    combined += ftp_path;
  }
  std::vector<std::string> segments;
  for (const auto& seg : cops::split(combined, '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (segments.empty()) return {};  // escape attempt
      segments.pop_back();
      continue;
    }
    if (seg.find('\0') != std::string::npos) return {};
    segments.push_back(seg);
  }
  std::string out = "/";
  for (size_t i = 0; i < segments.size(); ++i) {
    out += segments[i];
    if (i + 1 < segments.size()) out += '/';
  }
  return out;
}

std::string FsView::real_path(const std::string& virtual_path) const {
  return root_ + virtual_path;
}

bool FsView::exists(const std::string& virtual_path) const {
  std::error_code ec;
  return fs::exists(real_path(virtual_path), ec);
}

bool FsView::is_directory(const std::string& virtual_path) const {
  std::error_code ec;
  return fs::is_directory(real_path(virtual_path), ec);
}

Result<uint64_t> FsView::file_size(const std::string& virtual_path) const {
  std::error_code ec;
  const auto size = fs::file_size(real_path(virtual_path), ec);
  if (ec) return Status::not_found(virtual_path);
  return static_cast<uint64_t>(size);
}

Result<std::vector<DirEntry>> FsView::list(
    const std::string& virtual_path) const {
  std::error_code ec;
  std::vector<DirEntry> entries;
  for (auto it = fs::directory_iterator(real_path(virtual_path), ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    DirEntry entry;
    entry.name = it->path().filename().string();
    entry.is_directory = it->is_directory(ec);
    if (!entry.is_directory) {
      std::error_code size_ec;
      entry.size = static_cast<uint64_t>(it->file_size(size_ec));
    }
    struct stat st{};
    if (::stat(it->path().c_str(), &st) == 0) {
      entry.mtime_seconds = static_cast<int64_t>(st.st_mtime);
    }
    entries.push_back(std::move(entry));
  }
  if (ec) return Status::not_found(virtual_path);
  return entries;
}

Status FsView::rename(const std::string& from_virtual,
                      const std::string& to_virtual) {
  std::error_code ec;
  if (!fs::exists(real_path(from_virtual), ec)) {
    return Status::not_found(from_virtual);
  }
  fs::rename(real_path(from_virtual), real_path(to_virtual), ec);
  if (ec) return Status::io_error("rename failed: " + ec.message());
  return Status::ok();
}

Status FsView::make_directory(const std::string& virtual_path) {
  std::error_code ec;
  if (!fs::create_directory(real_path(virtual_path), ec) || ec) {
    return Status::io_error("mkdir failed: " + virtual_path);
  }
  return Status::ok();
}

Status FsView::remove_directory(const std::string& virtual_path) {
  const auto real = real_path(virtual_path);
  std::error_code ec;
  if (!fs::is_directory(real, ec)) return Status::not_found(virtual_path);
  if (!fs::remove(real, ec) || ec) {
    return Status::io_error("rmdir failed: " + virtual_path);
  }
  return Status::ok();
}

Status FsView::remove_file(const std::string& virtual_path) {
  const auto real = real_path(virtual_path);
  std::error_code ec;
  if (!fs::is_regular_file(real, ec)) return Status::not_found(virtual_path);
  if (!fs::remove(real, ec) || ec) {
    return Status::io_error("delete failed: " + virtual_path);
  }
  return Status::ok();
}

Status FsView::write_file(const std::string& virtual_path,
                          const std::string& contents) {
  std::ofstream out(real_path(virtual_path), std::ios::binary);
  if (!out) return Status::io_error("cannot create " + virtual_path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  return out.good() ? Status::ok()
                    : Status::io_error("short write " + virtual_path);
}

std::string FsView::format_list_line(const DirEntry& entry) {
  char date[32] = "Jan  1 00:00";
  const time_t t = static_cast<time_t>(entry.mtime_seconds);
  tm local{};
  if (localtime_r(&t, &local) != nullptr) {
    std::strftime(date, sizeof(date), "%b %e %H:%M", &local);
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%s 1 ftp ftp %10llu %s %s\r\n",
                entry.is_directory ? "drwxr-xr-x" : "-rw-r--r--",
                static_cast<unsigned long long>(entry.size), date,
                entry.name.c_str());
  return line;
}

}  // namespace cops::ftp
