// Open-loop HTTP load generator: Poisson arrivals at a configured offered
// rate, independent of how fast the server answers.
//
// The closed-loop generator (http_client.hpp) models the paper's client
// population: each virtual client waits for its reply before issuing the
// next request, so a slow server automatically throttles its own load.
// That feedback hides queueing delay — the classic *coordinated omission*
// trap.  Scale-out experiments (latency vs. offered load across shard
// counts) need the opposite: arrivals keep coming at the offered rate no
// matter how far behind the server falls, and each request's latency is
// measured from its *scheduled* arrival time, so time spent waiting for a
// free slot or a late timer counts against the server, not the generator.
//
// Mechanics: one epoll loop on the calling thread.  Inter-arrival gaps are
// exponentially distributed (a Poisson process at `offered_rps`); each
// arrival opens a fresh connection, sends one GET with Connection: close,
// and records latency when the full response (per Content-Length) has been
// read.  When `max_in_flight` requests are already outstanding, further
// arrivals queue with their scheduled timestamp intact — their eventual
// latency still starts from the schedule, never from dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "net/inet_address.hpp"

namespace cops::loadgen {

struct OpenLoopConfig {
  net::InetAddress server;
  // Offered load: mean arrival rate of the Poisson process, requests/sec.
  double offered_rps = 100.0;
  // Arrival window.  Requests in flight when it closes are still drained
  // (up to drain_grace) and counted.
  Duration duration = std::chrono::seconds(2);
  Duration drain_grace = std::chrono::seconds(3);

  // Request path for the i-th arrival; "/" when unset.
  std::function<std::string(uint64_t arrival_index, std::mt19937& rng)>
      path_for;

  // A request older than this (from its scheduled arrival) is abandoned and
  // counted as an error — the open-loop analogue of a client giving up.
  Duration request_timeout = std::chrono::seconds(5);
  // Concurrent sockets cap; arrivals beyond it queue (schedule preserved).
  size_t max_in_flight = 512;
  unsigned seed = 7;
};

struct OpenLoopStats {
  uint64_t arrivals = 0;    // scheduled arrivals fired
  uint64_t completed = 0;   // full responses received
  uint64_t errors = 0;      // connect/read failures + abandoned timeouts
  uint64_t total_bytes = 0;
  // Scheduled arrival → last response byte, microseconds.  Includes any
  // time the request spent queued behind max_in_flight (that is the point).
  Histogram latency;
  // The same samples raw (one per completed request), for exact percentiles
  // — the histogram's log2 buckets are too coarse for p99 comparisons.
  std::vector<int64_t> latencies_us;
  double offered_rps = 0.0;
  double elapsed_seconds = 0.0;

  [[nodiscard]] double achieved_rps() const {
    return elapsed_seconds > 0
               ? static_cast<double>(completed) / elapsed_seconds
               : 0.0;
  }
};

// Runs the arrival process on the calling thread; returns when the window
// has closed and in-flight requests have drained (or drain_grace passed).
OpenLoopStats run_open_loop(const OpenLoopConfig& config);

}  // namespace cops::loadgen
