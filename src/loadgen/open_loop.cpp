#include "loadgen/open_loop.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/string_util.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::loadgen {
namespace {

// Headers + Content-Length body reader (one response, Connection: close).
class OneShotReader {
 public:
  // +1 full response consumed, 0 need more, -1 malformed.
  int feed(const uint8_t* data, size_t len, size_t& response_bytes) {
    buffer_.append(data, len);
    if (total_needed_ == 0) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end == std::string_view::npos) {
        return buffer_.readable() > 64 * 1024 ? -1 : 0;
      }
      const auto headers = buffer_.view().substr(0, header_end);
      size_t body_len = 0;
      size_t pos = 0;
      while (pos < headers.size()) {
        size_t eol = headers.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = headers.size();
        const auto line = headers.substr(pos, eol - pos);
        const size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            cops::iequals(cops::trim(line.substr(0, colon)),
                          "content-length")) {
          const long n =
              cops::parse_non_negative(cops::trim(line.substr(colon + 1)));
          if (n < 0) return -1;
          body_len = static_cast<size_t>(n);
        }
        pos = eol + 2;
      }
      total_needed_ = header_end + 4 + body_len;
    }
    if (buffer_.readable() >= total_needed_) {
      response_bytes = total_needed_;
      return 1;
    }
    return 0;
  }

 private:
  ByteBuffer buffer_;
  size_t total_needed_ = 0;
};

class OpenLoopEngine;

// One arrival: fresh connection, one GET, full response, close.
class Request : public net::EventHandler {
 public:
  Request(OpenLoopEngine& engine, uint64_t index, TimePoint scheduled)
      : engine_(engine), index_(index), scheduled_(scheduled) {}

  // Connects and registers with the reactor; on failure the request is
  // already finished (counted as an error) when this returns false.
  bool begin();
  void handle_event(int fd, uint32_t readiness) override;
  void abandon();  // timeout sweep / end-of-run teardown

  [[nodiscard]] TimePoint scheduled() const { return scheduled_; }

 private:
  enum class State { kConnecting, kSending, kReceiving };

  void finish(bool ok, size_t bytes);

  OpenLoopEngine& engine_;
  uint64_t index_;
  TimePoint scheduled_;
  State state_ = State::kConnecting;
  net::TcpSocket socket_;
  OneShotReader reader_;
  std::string outbound_;
  size_t outbound_sent_ = 0;
};

class OpenLoopEngine {
 public:
  explicit OpenLoopEngine(const OpenLoopConfig& config)
      : config_(config), rng_(config.seed), interarrival_(sane_rate()) {
    stats_.offered_rps = config.offered_rps;
  }

  OpenLoopStats run() {
    start_ = now();
    deadline_ = start_ + config_.duration;
    next_arrival_ = start_;
    fire_due_arrivals();
    arm_sweep();
    const TimePoint hard_stop = deadline_ + config_.drain_grace;
    while (now() < hard_stop) {
      if (arrivals_exhausted_ && active_.empty() && pending_.empty()) break;
      const auto remaining = hard_stop - now();
      const int cap = static_cast<int>(
          std::min<int64_t>(20, std::max<int64_t>(1, to_millis(remaining))));
      reactor_.run_once(cap);
      graveyard_.clear();
    }
    // Whatever is still outstanding was offered load the server never
    // answered in time — errors, not omissions.
    while (!active_.empty()) active_.begin()->first->abandon();
    graveyard_.clear();
    stats_.errors += pending_.size();
    pending_.clear();
    stats_.elapsed_seconds = to_seconds(now() - start_);
    return std::move(stats_);
  }

  const OpenLoopConfig& config() const { return config_; }
  net::Reactor& reactor() { return reactor_; }
  OpenLoopStats& stats() { return stats_; }

  std::string path_for(uint64_t index) {
    if (config_.path_for) return config_.path_for(index, rng_);
    return "/";
  }

  // A request resolved (either way); recycle its slot into the backlog.
  void complete(Request* request) {
    auto it = active_.find(request);
    if (it != active_.end()) {
      graveyard_.push_back(std::move(it->second));
      active_.erase(it);
    }
    drain_pending();
  }

 private:
  struct PendingArrival {
    uint64_t index;
    TimePoint scheduled;
  };

  // Guard against degenerate rates: the exponential distribution needs a
  // strictly positive lambda (events per microsecond here).
  double sane_rate() const {
    return std::max(config_.offered_rps, 0.001) / 1e6;
  }

  // Fires every arrival whose scheduled time has passed — a catch-up loop,
  // so a stalled reactor still offers the full configured load (late, but
  // measured from schedule).  Then arms the timer for the next one.
  void fire_due_arrivals() {
    const TimePoint at = now();
    while (next_arrival_ <= at && next_arrival_ < deadline_) {
      const TimePoint scheduled = next_arrival_;
      const uint64_t index = stats_.arrivals++;
      advance_arrival_clock();
      launch(index, scheduled);
    }
    if (next_arrival_ >= deadline_) {
      arrivals_exhausted_ = true;
      return;
    }
    reactor_.run_after(next_arrival_ - now(), [this] { fire_due_arrivals(); });
  }

  void advance_arrival_clock() {
    const double gap_us = interarrival_(rng_);
    next_arrival_ += std::chrono::microseconds(
        std::max<int64_t>(1, static_cast<int64_t>(gap_us)));
  }

  void launch(uint64_t index, TimePoint scheduled) {
    if (active_.size() >= config_.max_in_flight) {
      pending_.push_back({index, scheduled});
      return;
    }
    auto request = std::make_unique<Request>(*this, index, scheduled);
    Request* raw = request.get();
    active_.emplace(raw, std::move(request));
    // begin() finishes (→ complete) on immediate failure; the map entry is
    // already in place so the bookkeeping is uniform.
    raw->begin();
  }

  void drain_pending() {
    while (!pending_.empty() && active_.size() < config_.max_in_flight) {
      PendingArrival next = pending_.front();
      pending_.pop_front();
      launch(next.index, next.scheduled);
    }
  }

  // Periodic sweep: abandon anything older than request_timeout, whether
  // in flight or still queued for a socket.
  void arm_sweep() {
    reactor_.run_after(std::chrono::milliseconds(100), [this] {
      const TimePoint cutoff = now() - config_.request_timeout;
      std::vector<Request*> stale;
      for (const auto& [request, owned] : active_) {
        if (request->scheduled() < cutoff) stale.push_back(request);
      }
      for (Request* request : stale) request->abandon();
      while (!pending_.empty() && pending_.front().scheduled < cutoff) {
        pending_.pop_front();
        ++stats_.errors;
      }
      if (!arrivals_exhausted_ || !active_.empty() || !pending_.empty()) {
        arm_sweep();
      }
    });
  }

  OpenLoopConfig config_;
  net::Reactor reactor_;
  std::mt19937 rng_;
  std::exponential_distribution<double> interarrival_;  // per microsecond
  OpenLoopStats stats_;

  TimePoint start_{};
  TimePoint deadline_{};
  TimePoint next_arrival_{};
  bool arrivals_exhausted_ = false;

  std::unordered_map<Request*, std::unique_ptr<Request>> active_;
  std::deque<PendingArrival> pending_;
  // complete() runs inside handle_event; destruction is deferred until the
  // reactor pass returns.
  std::vector<std::unique_ptr<Request>> graveyard_;
};

bool Request::begin() {
  auto sock = net::TcpSocket::connect(engine_.config().server);
  if (!sock.is_ok()) {
    finish(false, 0);
    return false;
  }
  socket_ = std::move(sock).take();
  state_ = State::kConnecting;
  auto status = engine_.reactor().register_handler(socket_.fd(), this,
                                                   net::kWritable);
  if (!status.is_ok()) {
    finish(false, 0);
    return false;
  }
  return true;
}

void Request::handle_event(int /*fd*/, uint32_t readiness) {
  if ((readiness & net::kErrored) != 0 && state_ != State::kConnecting) {
    finish(false, 0);
    return;
  }
  switch (state_) {
    case State::kConnecting: {
      auto status = socket_.finish_connect();
      if (!status.is_ok()) {
        finish(false, 0);
        return;
      }
      socket_.set_nodelay(true);
      outbound_ = "GET " + engine_.path_for(index_) +
                  " HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
      outbound_sent_ = 0;
      state_ = State::kSending;
      handle_event(socket_.fd(), net::kWritable);
      return;
    }
    case State::kSending: {
      if ((readiness & net::kWritable) == 0) return;
      auto n =
          socket_.write(std::string_view(outbound_).substr(outbound_sent_));
      if (!n.is_ok()) {
        if (n.status().code() == StatusCode::kWouldBlock) return;
        finish(false, 0);
        return;
      }
      outbound_sent_ += n.value();
      if (outbound_sent_ >= outbound_.size()) {
        state_ = State::kReceiving;
        engine_.reactor().update_interest(socket_.fd(), net::kReadable);
      }
      return;
    }
    case State::kReceiving: {
      if ((readiness & net::kReadable) == 0) return;
      ByteBuffer chunk;
      auto n = socket_.read(chunk);
      if (!n.is_ok()) {
        if (n.status().code() == StatusCode::kWouldBlock) return;
        finish(false, 0);
        return;
      }
      if (n.value() == 0) {
        finish(false, 0);  // EOF before the full response
        return;
      }
      size_t response_bytes = 0;
      const int rc =
          reader_.feed(chunk.read_ptr(), chunk.readable(), response_bytes);
      if (rc < 0) {
        finish(false, 0);
      } else if (rc > 0) {
        finish(true, response_bytes);
      }
      return;
    }
  }
}

void Request::abandon() { finish(false, 0); }

void Request::finish(bool ok, size_t bytes) {
  if (socket_.valid()) {
    engine_.reactor().deregister(socket_.fd());
    socket_.close();
  }
  auto& stats = engine_.stats();
  if (ok) {
    stats.completed += 1;
    stats.total_bytes += bytes;
    const int64_t us = to_micros(now() - scheduled_);
    stats.latency.record(us);
    stats.latencies_us.push_back(us);
  } else {
    stats.errors += 1;
  }
  engine_.complete(this);  // destroys *this (deferred to end of pass)
}

}  // namespace

OpenLoopStats run_open_loop(const OpenLoopConfig& config) {
  OpenLoopEngine engine(config);
  return engine.run();
}

}  // namespace cops::loadgen
