#include "loadgen/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>

#include "common/jain.hpp"
#include "common/string_util.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::loadgen {

double ClientStats::jain_fairness() const {
  return cops::jain_fairness(responses_per_client);
}

namespace {

// Minimal incremental HTTP response reader: headers + Content-Length body.
class ResponseReader {
 public:
  void reset() {
    buffer_.clear();
    total_needed_ = 0;
  }

  // Returns +1 when a full response has been consumed, 0 when more bytes
  // are needed, -1 on a malformed response.
  int feed(const uint8_t* data, size_t len, size_t& response_bytes) {
    buffer_.append(data, len);
    if (total_needed_ == 0) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end == std::string_view::npos) {
        return buffer_.readable() > 64 * 1024 ? -1 : 0;
      }
      const auto headers = buffer_.view().substr(0, header_end);
      size_t body_len = 0;
      // Scan for Content-Length (case-insensitive).
      size_t pos = 0;
      while (pos < headers.size()) {
        size_t eol = headers.find("\r\n", pos);
        if (eol == std::string_view::npos) eol = headers.size();
        const auto line = headers.substr(pos, eol - pos);
        const size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            cops::iequals(cops::trim(line.substr(0, colon)),
                          "content-length")) {
          const long n = cops::parse_non_negative(
              cops::trim(line.substr(colon + 1)));
          if (n < 0) return -1;
          body_len = static_cast<size_t>(n);
        }
        pos = eol + 2;
      }
      total_needed_ = header_end + 4 + body_len;
    }
    if (buffer_.readable() >= total_needed_) {
      response_bytes = total_needed_;
      buffer_.consume(total_needed_);
      const bool leftover = buffer_.readable() > 0;
      total_needed_ = 0;
      // Leftover bytes would be a pipelined response we never asked for.
      return leftover ? -1 : 1;
    }
    return 0;
  }

 private:
  ByteBuffer buffer_;
  size_t total_needed_ = 0;
};

class Engine;

// One simulated Web client: connect → 5 requests with think pauses → close
// → repeat.
class VirtualClient : public net::EventHandler {
 public:
  VirtualClient(Engine& engine, size_t index)
      : engine_(engine), index_(index) {}

  void begin();
  void handle_event(int fd, uint32_t readiness) override;
  void shutdown();

  [[nodiscard]] uint64_t responses() const { return responses_; }

 private:
  enum class State { kIdle, kConnecting, kSending, kReceiving, kThinking };

  void start_connect(bool fresh_attempt);
  void on_connected();
  void send_request();
  void on_response_complete(size_t bytes);
  void fail_connection(bool was_connecting);
  void teardown_socket();
  void schedule(Duration delay, std::function<void()> fn);
  void cancel_timer();

  Engine& engine_;
  size_t index_;
  State state_ = State::kIdle;
  net::TcpSocket socket_;
  ResponseReader reader_;
  std::string outbound_;
  size_t outbound_sent_ = 0;
  int requests_on_connection_ = 0;
  Duration backoff_{};
  TimePoint connect_attempt_start_{};
  TimePoint request_start_{};
  bool first_request_on_connection_ = false;
  uint64_t responses_ = 0;
  net::TimerQueue::TimerId timer_ = 0;
  bool timer_armed_ = false;
};

class Engine {
 public:
  explicit Engine(const ClientConfig& config)
      : config_(config), rng_(config.seed) {
    clients_.reserve(config.num_clients);
    for (size_t i = 0; i < config.num_clients; ++i) {
      clients_.push_back(std::make_unique<VirtualClient>(*this, i));
    }
    stats_.responses_per_client.assign(config.num_clients, 0);
  }

  ClientStats run() {
    const auto start = now();
    for (auto& client : clients_) client->begin();
    const auto deadline = start + config_.duration;
    while (now() < deadline) {
      const auto remaining = deadline - now();
      const int cap = static_cast<int>(
          std::min<int64_t>(20, std::max<int64_t>(1, to_millis(remaining))));
      reactor_.run_once(cap);
    }
    for (auto& client : clients_) client->shutdown();
    stats_.elapsed_seconds = to_seconds(now() - start);
    for (size_t i = 0; i < clients_.size(); ++i) {
      stats_.responses_per_client[i] = clients_[i]->responses();
    }
    return std::move(stats_);
  }

  const ClientConfig& config() const { return config_; }
  net::Reactor& reactor() { return reactor_; }
  std::mt19937& rng() { return rng_; }
  ClientStats& stats() { return stats_; }

  std::string next_path(size_t client_index) {
    if (config_.path_for) return config_.path_for(client_index, rng_);
    return "/";
  }
  Duration jitter(Duration max) {
    std::uniform_int_distribution<int64_t> dist(0, to_micros(max));
    return std::chrono::microseconds(dist(rng_));
  }

 private:
  ClientConfig config_;
  net::Reactor reactor_;
  std::mt19937 rng_;
  ClientStats stats_;
  std::vector<std::unique_ptr<VirtualClient>> clients_;
};

void VirtualClient::schedule(Duration delay, std::function<void()> fn) {
  cancel_timer();
  timer_ = engine_.reactor().run_after(delay, [this, fn = std::move(fn)] {
    timer_armed_ = false;
    fn();
  });
  timer_armed_ = true;
}

void VirtualClient::cancel_timer() {
  if (timer_armed_) {
    engine_.reactor().cancel_timer(timer_);
    timer_armed_ = false;
  }
}

void VirtualClient::begin() {
  backoff_ = engine_.config().backoff_initial;
  // Stagger client start-up so all N clients do not SYN simultaneously.
  Duration spread = engine_.config().start_spread;
  if (spread <= Duration::zero()) {
    spread = engine_.config().think_time + std::chrono::milliseconds(1);
  }
  schedule(engine_.jitter(spread),
           [this] { start_connect(/*fresh_attempt=*/true); });
}

void VirtualClient::start_connect(bool fresh_attempt) {
  if (fresh_attempt) connect_attempt_start_ = now();
  auto sock = net::TcpSocket::connect(engine_.config().server);
  if (!sock.is_ok()) {
    fail_connection(/*was_connecting=*/true);
    return;
  }
  socket_ = std::move(sock).take();
  state_ = State::kConnecting;
  auto status = engine_.reactor().register_handler(socket_.fd(), this,
                                                   net::kWritable);
  if (!status.is_ok()) {
    fail_connection(true);
    return;
  }
  // Connect timeout — models the SYN retransmission clock.
  schedule(engine_.config().connect_timeout, [this] {
    if (state_ == State::kConnecting) fail_connection(true);
  });
}

void VirtualClient::on_connected() {
  cancel_timer();
  backoff_ = engine_.config().backoff_initial;
  requests_on_connection_ = 0;
  first_request_on_connection_ = true;
  socket_.set_nodelay(true);
  send_request();
}

void VirtualClient::send_request() {
  const std::string path = engine_.next_path(index_);
  outbound_ = "GET " + path +
              " HTTP/1.1\r\nHost: loadgen\r\nConnection: keep-alive\r\n\r\n";
  outbound_sent_ = 0;
  reader_.reset();
  request_start_ = now();
  state_ = State::kSending;
  engine_.reactor().update_interest(socket_.fd(), net::kWritable);
  // Try an immediate write; short requests normally fit in one syscall.
  handle_event(socket_.fd(), net::kWritable);
}

void VirtualClient::handle_event(int /*fd*/, uint32_t readiness) {
  if ((readiness & net::kErrored) != 0 && state_ != State::kConnecting) {
    fail_connection(false);
    return;
  }
  switch (state_) {
    case State::kConnecting: {
      auto status = socket_.finish_connect();
      if (!status.is_ok()) {
        fail_connection(true);
        return;
      }
      on_connected();
      return;
    }
    case State::kSending: {
      if ((readiness & net::kWritable) == 0) return;
      auto n = socket_.write(std::string_view(outbound_).substr(outbound_sent_));
      if (!n.is_ok()) {
        if (n.status().code() == StatusCode::kWouldBlock) return;
        fail_connection(false);
        return;
      }
      outbound_sent_ += n.value();
      if (outbound_sent_ >= outbound_.size()) {
        state_ = State::kReceiving;
        engine_.reactor().update_interest(socket_.fd(), net::kReadable);
      }
      return;
    }
    case State::kReceiving: {
      if ((readiness & net::kReadable) == 0) return;
      ByteBuffer chunk;
      auto n = socket_.read(chunk);
      if (!n.is_ok()) {
        if (n.status().code() == StatusCode::kWouldBlock) return;
        fail_connection(false);
        return;
      }
      size_t response_bytes = 0;
      const int rc =
          reader_.feed(chunk.read_ptr(), chunk.readable(), response_bytes);
      if (rc < 0) {
        fail_connection(false);
      } else if (rc > 0) {
        on_response_complete(response_bytes);
      }
      return;
    }
    case State::kIdle:
    case State::kThinking:
      return;
  }
}

void VirtualClient::on_response_complete(size_t bytes) {
  const auto at = now();
  ++responses_;
  auto& stats = engine_.stats();
  stats.total_responses += 1;
  stats.total_bytes += bytes;
  const int64_t response_us = to_micros(at - request_start_);
  stats.response_time.record(response_us);
  // Combined time folds in the connection-establishment wait for the first
  // request of each connection (paper, Fig. 6 discussion).
  const int64_t combined_us =
      first_request_on_connection_ ? to_micros(at - connect_attempt_start_)
                                   : response_us;
  stats.combined_time.record(combined_us);
  first_request_on_connection_ = false;

  ++requests_on_connection_;
  state_ = State::kThinking;
  const bool connection_done =
      requests_on_connection_ >= engine_.config().requests_per_connection;
  if (connection_done) teardown_socket();
  // Think time after every page (the paper's simulated wide-area delay).
  schedule(engine_.config().think_time, [this, connection_done] {
    if (connection_done) {
      start_connect(/*fresh_attempt=*/true);
    } else {
      state_ = State::kSending;  // restored by send_request
      send_request();
    }
  });
}

void VirtualClient::fail_connection(bool was_connecting) {
  auto& stats = engine_.stats();
  if (was_connecting) {
    stats.connect_failures += 1;
  } else {
    stats.connection_resets += 1;
  }
  teardown_socket();
  state_ = State::kIdle;
  // Exponential backoff before the retry (TCP SYN retransmission model);
  // a retry does NOT reset connect_attempt_start_, so combined time sees
  // the full wait.
  const Duration wait = backoff_;
  backoff_ = std::min(backoff_ * 2, engine_.config().backoff_max);
  schedule(wait, [this, was_connecting] {
    start_connect(/*fresh_attempt=*/!was_connecting);
  });
}

void VirtualClient::teardown_socket() {
  if (socket_.valid()) {
    engine_.reactor().deregister(socket_.fd());
    socket_.close();
  }
}

void VirtualClient::shutdown() {
  cancel_timer();
  teardown_socket();
  state_ = State::kIdle;
}

}  // namespace

ClientStats run_clients(const ClientConfig& config) {
  Engine engine(config);
  auto stats = engine.run();
  if (config.admin_scrape_port != 0) {
    stats.admin_stats_text = scrape_admin(config.admin_scrape_port);
  }
  return stats;
}

std::string scrape_admin(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<size_t>(n);
  }
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string::npos) return {};
  if (data.compare(0, 12, "HTTP/1.1 200") != 0) return {};
  return data.substr(header_end + 4);
}

}  // namespace cops::loadgen
