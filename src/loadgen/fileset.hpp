// SpecWeb99-style file set and access distribution.
//
// The paper's workload follows the SpecWeb99 benchmark: "A file set of size
// 204.8 MB is created using the SpecWeb99 suite, with an average file size
// of 16 KB."  SpecWeb99 organizes files into directories of 36 files across
// four size classes:
//   class 0:  0.1–0.9 KB  (9 files, ~35 % of accesses)
//   class 1:    1–9 KB    (9 files, ~50 % of accesses)
//   class 2:  10–90 KB    (9 files, ~14 % of accesses)
//   class 3: 100–900 KB   (9 files,  ~1 % of accesses)
// Directory popularity is Zipf; within a class, file popularity is Zipf as
// well (an approximation of SpecWeb99's table-driven distribution).
// Each directory holds ~5 MB, so the paper's 204.8 MB ≈ 41 directories; the
// default here is scaled down (DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "common/status.hpp"
#include "common/zipf.hpp"

namespace cops::loadgen {

struct FilesetConfig {
  std::string root;        // directory to create files under
  size_t directories = 8;  // ~5 MB each
  double dir_zipf_skew = 1.0;
  double file_zipf_skew = 1.0;
  unsigned seed = 42;      // content fill seed
};

inline constexpr int kClassesPerDir = 4;
inline constexpr int kFilesPerClass = 9;
// Access probability of each size class (SpecWeb99).
inline constexpr double kClassWeights[kClassesPerDir] = {0.35, 0.50, 0.14,
                                                         0.01};

// Size in bytes of file `index` (0..8) in `size_class` (0..3).
[[nodiscard]] constexpr size_t file_size_bytes(int size_class, int index) {
  size_t base = 100;  // class 0: 100..900 bytes
  for (int c = 0; c < size_class; ++c) base *= 10;
  return base * static_cast<size_t>(index + 1);
}

// URL path (relative, leading '/') of a file.
[[nodiscard]] std::string file_url(size_t dir, int size_class, int index);

// Total bytes of one directory / of the whole set.
[[nodiscard]] size_t directory_bytes();
[[nodiscard]] size_t fileset_bytes(const FilesetConfig& config);

// Creates the files on disk (idempotent: existing files of the right size
// are kept).
Status generate_fileset(const FilesetConfig& config);

// Samples request paths with the SpecWeb99 distribution.
class WorkloadSampler {
 public:
  explicit WorkloadSampler(const FilesetConfig& config);

  // Thread-compatible: callers supply their own RNG.
  [[nodiscard]] std::string sample(std::mt19937& rng) const;

  // Deterministic variant used by tests: u* in [0,1).
  [[nodiscard]] std::string sample(double u_dir, double u_class,
                                   double u_file) const;

 private:
  size_t directories_;
  ZipfDistribution dir_zipf_;
  ZipfDistribution file_zipf_;
};

}  // namespace cops::loadgen
