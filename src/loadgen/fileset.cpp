#include "loadgen/fileset.hpp"

#include <filesystem>
#include <fstream>

namespace cops::loadgen {

std::string file_url(size_t dir, int size_class, int index) {
  return "/dir" + std::to_string(dir) + "/class" + std::to_string(size_class) +
         "_" + std::to_string(index) + ".html";
}

size_t directory_bytes() {
  size_t total = 0;
  for (int c = 0; c < kClassesPerDir; ++c) {
    for (int f = 0; f < kFilesPerClass; ++f) {
      total += file_size_bytes(c, f);
    }
  }
  return total;
}

size_t fileset_bytes(const FilesetConfig& config) {
  return directory_bytes() * config.directories;
}

Status generate_fileset(const FilesetConfig& config) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config.root, ec);
  if (ec) return Status::io_error("mkdir " + config.root + ": " + ec.message());

  std::mt19937 rng(config.seed);
  std::uniform_int_distribution<int> letter('a', 'z');
  for (size_t d = 0; d < config.directories; ++d) {
    const fs::path dir = fs::path(config.root) / ("dir" + std::to_string(d));
    fs::create_directories(dir, ec);
    if (ec) return Status::io_error("mkdir: " + ec.message());
    for (int c = 0; c < kClassesPerDir; ++c) {
      for (int f = 0; f < kFilesPerClass; ++f) {
        const size_t size = file_size_bytes(c, f);
        const fs::path file =
            dir / ("class" + std::to_string(c) + "_" + std::to_string(f) +
                   ".html");
        if (fs::exists(file, ec) && fs::file_size(file, ec) == size) continue;
        std::ofstream out(file, std::ios::binary);
        if (!out) return Status::io_error("cannot create " + file.string());
        std::string chunk(4096, 'x');
        size_t remaining = size;
        while (remaining > 0) {
          for (auto& ch : chunk) ch = static_cast<char>(letter(rng));
          const size_t n = remaining < chunk.size() ? remaining : chunk.size();
          out.write(chunk.data(), static_cast<std::streamsize>(n));
          remaining -= n;
        }
      }
    }
  }
  return Status::ok();
}

WorkloadSampler::WorkloadSampler(const FilesetConfig& config)
    : directories_(config.directories),
      dir_zipf_(config.directories, config.dir_zipf_skew),
      file_zipf_(kFilesPerClass, config.file_zipf_skew) {}

std::string WorkloadSampler::sample(std::mt19937& rng) const {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  return sample(uniform(rng), uniform(rng), uniform(rng));
}

std::string WorkloadSampler::sample(double u_dir, double u_class,
                                    double u_file) const {
  const size_t dir = dir_zipf_.sample(u_dir);
  int size_class = 0;
  double acc = 0.0;
  for (int c = 0; c < kClassesPerDir; ++c) {
    acc += kClassWeights[c];
    if (u_class < acc) {
      size_class = c;
      break;
    }
    size_class = c;
  }
  const int file = static_cast<int>(file_zipf_.sample(u_file));
  return file_url(dir, size_class, file);
}

}  // namespace cops::loadgen
