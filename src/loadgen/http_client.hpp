// Concurrent HTTP workload generator.
//
// Reproduces the paper's client behaviour (Section V.B): each simulated Web
// client repeatedly (1) establishes a connection, (2) issues 5 HTTP requests
// on it (HTTP/1.1 persistent connections), pausing a think time after each
// page "to simulate the wide-area transfer delay", then (3) terminates the
// connection and starts over.
//
// The paper drove up to 1024 clients from 16 workstations; here all clients
// are simulated by one epoll loop (a single thread multiplexing non-blocking
// sockets), which keeps the generator itself off the server's CPU profile.
//
// Failed connects retry with exponential backoff — this models TCP SYN
// retransmission, the mechanism behind Apache's fairness collapse in Fig. 4
// (Solaris caps the retransmit timeout at 1 minute; backoff_max scales that
// down along with everything else).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "net/inet_address.hpp"

namespace cops::loadgen {

struct ClientConfig {
  net::InetAddress server;
  size_t num_clients = 1;
  int requests_per_connection = 5;
  Duration think_time = std::chrono::milliseconds(5);
  Duration duration = std::chrono::seconds(2);

  // Request path for client `client_index`'s next request.
  std::function<std::string(size_t client_index, std::mt19937& rng)> path_for;

  Duration connect_timeout = std::chrono::milliseconds(500);
  Duration backoff_initial = std::chrono::milliseconds(50);
  Duration backoff_max = std::chrono::seconds(6);

  // Window over which the clients' initial connects are spread (zero =
  // a think-time-sized jitter).  Models gradual arrival instead of an
  // all-at-once SYN burst; the overload experiment (Fig. 6) relies on it.
  Duration start_spread = Duration::zero();

  unsigned seed = 7;

  // When non-zero, scrape the server's O11+ admin endpoint
  // (http://127.0.0.1:<port>/stats) once after the run and store the
  // Prometheus text in ClientStats::admin_stats_text — lets the generator's
  // observed counts be cross-checked against the server's own counters.
  uint16_t admin_scrape_port = 0;
};

struct ClientStats {
  std::vector<uint64_t> responses_per_client;
  Histogram response_time;  // request sent → response fully received
  Histogram combined_time;  // + connection-establishment wait (Fig. 6)
  uint64_t total_responses = 0;
  uint64_t total_bytes = 0;
  uint64_t connect_failures = 0;  // timeouts / refusals (before a retry)
  uint64_t connection_resets = 0;
  double elapsed_seconds = 0.0;
  std::string admin_stats_text;  // /stats body when admin_scrape_port is set

  [[nodiscard]] double throughput_rps() const {
    return elapsed_seconds > 0
               ? static_cast<double>(total_responses) / elapsed_seconds
               : 0.0;
  }
  [[nodiscard]] double jain_fairness() const;
};

// Runs the workload on the calling thread until `duration` elapses.
ClientStats run_clients(const ClientConfig& config);

// Blocking GET against an O11+ admin endpoint on 127.0.0.1; returns the
// response body (Prometheus text for /stats), or "" on any failure.
std::string scrape_admin(uint16_t port, const std::string& path = "/stats");

}  // namespace cops::loadgen
