// EventHandler — the Reactor pattern participant that encapsulates
// application-specific logic for one kind of I/O event (Schmidt, 1995).
// Concrete handlers in this repository: AcceptorEventHandler,
// ConnectorEventHandler, and the per-connection Communicator handler.
#pragma once

#include <cstdint>

namespace cops::net {

class EventHandler {
 public:
  virtual ~EventHandler() = default;

  // Called by the Event Dispatcher with the readiness mask (kReadable /
  // kWritable / kErrored) for the descriptor the handler registered.
  virtual void handle_event(int fd, uint32_t readiness) = 0;
};

}  // namespace cops::net
