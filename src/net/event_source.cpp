#include "net/event_source.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdint>

namespace cops::net {

namespace {

// UBSan's vptr check probes whether the vtable memory is readable by writing
// it down a throwaway pipe; with the descriptor table fully exhausted (the
// EMFILE accept storm exercised by fd_lifecycle_test) that pipe cannot be
// created and a perfectly valid vptr is reported as invalid, aborting the
// run.  The dispatch call is the first virtual call made while the process
// is at zero free descriptors, so it alone carries the exemption.
__attribute__((no_sanitize("vptr"))) void dispatch_unchecked(
    EventHandler* handler, int fd, uint32_t events) {
  handler->handle_event(fd, events);
}

}  // namespace

// ---- SocketEventSource ----------------------------------------------------

Status SocketEventSource::register_handler(int fd, EventHandler* handler,
                                           uint32_t interest) {
  auto status = poller_.add(fd, interest);
  if (!status.is_ok()) return status;
  handlers_[fd] = {handler, next_generation_++};
  return Status::ok();
}

Status SocketEventSource::update_interest(int fd, uint32_t interest) {
  return poller_.modify(fd, interest);
}

Status SocketEventSource::deregister(int fd) {
  handlers_.erase(fd);
  return poller_.remove(fd);
}

Status SocketEventSource::poll(std::vector<ReadyCallback>& out,
                               int timeout_ms) {
  scratch_.clear();
  auto n = poller_.wait(scratch_, timeout_ms);
  if (!n.is_ok()) return n.status();
  for (const auto& ready : scratch_) {
    auto it = handlers_.find(ready.fd);
    if (it == handlers_.end()) continue;  // deregistered concurrently
    const int fd = ready.fd;
    const uint64_t generation = it->second.generation;
    const uint32_t events = ready.events;
    // Re-validate at dispatch time: an earlier callback in this batch may
    // have deregistered the fd (or a recycled fd re-registered with a new
    // generation).
    out.push_back([this, fd, generation, events] {
      auto live = handlers_.find(fd);
      if (live == handlers_.end() || live->second.generation != generation) {
        return;
      }
      dispatch_unchecked(live->second.handler, fd, events);
    });
  }
  return Status::ok();
}

// ---- TimerEventSource -----------------------------------------------------

int TimerEventSource::preferred_timeout_ms(int proposed) const {
  return timers_.next_timeout_ms(inner().preferred_timeout_ms(proposed));
}

Status TimerEventSource::poll(std::vector<ReadyCallback>& out,
                              int timeout_ms) {
  auto status = inner().poll(out, timeout_ms);
  if (!status.is_ok()) return status;
  // Expired timers become ready events after the poll returns.
  timers_.run_due();
  return Status::ok();
}

// ---- UserEventSource ------------------------------------------------------

UserEventSource::UserEventSource(std::unique_ptr<EventSource> inner,
                                 SocketEventSource& base)
    : EventSourceDecorator(std::move(inner)),
      wakeup_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)),
      base_poller_(&base.poller()) {
  // Register the wakeup fd with a null handler: readiness only interrupts
  // the poll; the queued callbacks are drained in poll() below.
  base.poller().add(wakeup_fd_.get(), kReadable);
}

void UserEventSource::post(std::function<void()> fn) {
  queue_.push(std::move(fn));
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_.get(), &one, sizeof(one));
  // The eventfd is a real descriptor, so under simulation the write above
  // wakes nothing — tell the simulator directly which poller has work.
  if (auto* sim = sim_backend(); sim != nullptr) [[unlikely]] {
    sim->sim_notify(base_poller_);
  }
}

int UserEventSource::preferred_timeout_ms(int proposed) const {
  if (queue_.size() > 0) return 0;
  return inner().preferred_timeout_ms(proposed);
}

void UserEventSource::drain_wakeup() {
  uint64_t counter = 0;
  while (::read(wakeup_fd_.get(), &counter, sizeof(counter)) > 0) {
  }
}

Status UserEventSource::poll(std::vector<ReadyCallback>& out, int timeout_ms) {
  auto status = inner().poll(out, timeout_ms);
  if (!status.is_ok()) return status;
  drain_wakeup();
  while (auto fn = queue_.try_pop()) {
    out.push_back(std::move(*fn));
  }
  return Status::ok();
}

}  // namespace cops::net
