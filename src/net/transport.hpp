// Transport seam — the syscall boundary between the networking substrate
// and the kernel.
//
// Production traffic goes straight to the real syscalls: the only cost of
// the seam is a constant fd-range compare (is_sim_fd) on values already in
// registers — no virtual dispatch on the real-socket path.  When a
// SimBackend is installed (src/simnet), listeners and accepted sockets get
// descriptors from a reserved high range and every operation on them is
// routed to the simulator, which emulates the kernel ABI (byte counts +
// errno).  Because the emulation happens *below* TcpSocket/Poller, the
// exact EINTR/EAGAIN/partial-I/O handling code that runs in production is
// what runs under simulation — the point of the whole exercise.
#pragma once

#include <sys/types.h>
#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "net/inet_address.hpp"

namespace cops::net {

// Interest/readiness flags (mirrored onto EPOLLIN/EPOLLOUT internally).
inline constexpr uint32_t kReadable = 0x1;
inline constexpr uint32_t kWritable = 0x2;
inline constexpr uint32_t kErrored = 0x4;

struct ReadyFd {
  int fd = -1;
  uint32_t events = 0;
};

// Simulated descriptors live at the top of the fd space, far above any
// value the kernel will hand out under normal rlimits.
inline constexpr int kSimFdBase = 1 << 28;
[[nodiscard]] constexpr bool is_sim_fd(int fd) { return fd >= kSimFdBase; }

// Kernel-ABI-shaped result: `n` is the syscall return value, `err` the
// errno to expose when n < 0.
struct SysResult {
  ssize_t n = 0;
  int err = 0;
};

// The simulator's side of the seam.  One implementation: simnet::SimEngine.
class SimBackend {
 public:
  virtual ~SimBackend() = default;

  // ---- socket ops on sim fds (kernel ABI semantics) ---------------------
  virtual SysResult sim_read(int fd, void* buf, size_t len) = 0;
  virtual SysResult sim_write(int fd, const void* buf, size_t len) = 0;
  // Scatter-gather write.  The default decomposes to sim_write on the first
  // non-empty iovec — a legal (partial) writev result; SimEngine overrides
  // with a gather that can short-write across segment boundaries.
  virtual SysResult sim_writev(int fd, const struct iovec* iov, int iovcnt);
  // sendfile(out_fd=sim, in_fd=real file): the default and the SimEngine
  // override both pread the real file and push the bytes through the
  // sim_write fault machinery, so partial sendfiles and EAGAIN bursts hit
  // the exact resumption code that runs in production.
  virtual SysResult sim_sendfile(int out_fd, int in_fd, uint64_t offset,
                                 size_t count);
  // n >= 0 is the accepted (sim) fd.
  virtual SysResult sim_accept(int listen_fd) = 0;
  virtual void sim_shutdown_write(int fd) = 0;
  virtual void sim_close(int fd) = 0;
  virtual Result<InetAddress> sim_local_address(int fd) = 0;
  virtual Result<InetAddress> sim_peer_address(int fd) = 0;

  // ---- endpoint creation ------------------------------------------------
  // Binds a simulated listener; port 0 gets a deterministic engine port.
  // `reuseport` mirrors SO_REUSEPORT: several listeners may share one port
  // (all must set the flag) and the simulator spreads incoming connections
  // across them deterministically.
  virtual Result<int> sim_listen(const InetAddress& addr, int backlog,
                                 bool reuseport) = 0;
  // Outbound connections from within the simulated process.
  virtual Result<int> sim_connect(const InetAddress& peer) = 0;

  // ---- poller ops (keyed by the Poller instance) ------------------------
  virtual Status sim_poll_add(const void* poller, int fd,
                              uint32_t interest) = 0;
  virtual Status sim_poll_modify(const void* poller, int fd,
                                 uint32_t interest) = 0;
  virtual Status sim_poll_remove(const void* poller, int fd) = 0;
  // Replaces epoll_wait wholesale while a backend is installed: computes
  // readiness of registered sim fds, runs scripted client actions, and
  // advances the virtual clock instead of sleeping.
  virtual size_t sim_poll_wait(const void* poller, std::vector<ReadyFd>& out,
                               int timeout_ms) = 0;
  // Cross-thread wakeup for `poller` (the sim-time analogue of the reactor's
  // eventfd write).  A real eventfd write is invisible to the simulator, so
  // without this hook a callback posted to another reactor would sit unserved
  // while the virtual clock raced to the run deadline.  The simulator grants
  // the notified poller at the *current* virtual instant — a cross-reactor
  // hand-off costs zero virtual time.  Default no-op: a poller that never
  // receives posts needs nothing.
  virtual void sim_notify(const void* /*poller*/) {}
};

namespace detail {
extern std::atomic<SimBackend*> g_sim_backend;
}

// nullptr in production.  Relaxed: install/uninstall happen on quiesced
// test boundaries, never concurrently with traffic.
[[nodiscard]] inline SimBackend* sim_backend() {
  return detail::g_sim_backend.load(std::memory_order_relaxed);
}
void install_sim_backend(SimBackend* backend);
void uninstall_sim_backend();

}  // namespace cops::net
