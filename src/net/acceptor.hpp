// Acceptor — the passive half of the Acceptor-Connector pattern (Schmidt,
// 1997): decouples connection establishment from the service performed on
// the established connection.  The N-Server registers an Acceptor with the
// Reactor; every accepted socket is handed to a user-supplied factory.
//
// suspend()/resume() are the lever the overload controller (option O9)
// pulls: suspending deregisters the listening socket from the Reactor so
// new connection requests queue in the kernel (and are eventually dropped),
// exactly as the paper's second overload-control mechanism postpones
// connection acceptance.
#pragma once

#include <functional>

#include "net/event_handler.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::net {

class Acceptor : public EventHandler {
 public:
  using AcceptCallback = std::function<void(TcpSocket)>;

  Acceptor(Reactor& reactor, AcceptCallback on_accept)
      : reactor_(reactor), on_accept_(std::move(on_accept)) {}
  ~Acceptor() override;

  // Binds and registers with the reactor.  Must run on the reactor thread
  // (or before the loop starts).  `reuseport` opens the listener with
  // SO_REUSEPORT so one Acceptor per shard can share the port.
  Status open(const InetAddress& addr, int backlog = 512,
              bool reuseport = false);

  // The bound address (resolves port 0).
  [[nodiscard]] Result<InetAddress> local_address() const {
    return listener_.local_address();
  }

  // Overload control: stop/restart accepting new connections.
  Status suspend();
  Status resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

  void close();

  [[nodiscard]] uint64_t accepted_count() const { return accepted_; }
  // Descriptor-exhaustion recovery (EMFILE/ENFILE on accept): how many
  // exhaustion events were handled, and how many pending connections were
  // accepted-then-closed through the reserve descriptor to clear them.
  [[nodiscard]] uint64_t overflow_events() const { return overflow_events_; }
  [[nodiscard]] uint64_t shed_count() const { return shed_; }
  // Backoff before accepting again after fd exhaustion (test knob).
  void set_exhaustion_backoff_ms(int ms) { resume_delay_ms_ = ms; }

  void handle_event(int fd, uint32_t readiness) override;

 private:
  // EMFILE recovery: without intervention a level-triggered listener stays
  // readable forever once accept fails with EMFILE — the reactor spins at
  // 100% CPU and the pending connection never clears.  The reserve-descriptor
  // trick sheds it (close reserve, accept, close client, reopen reserve) and
  // a suspend + timer-resume backstop bounds wakeups until fds free up.
  void handle_fd_exhaustion();

  Reactor& reactor_;
  AcceptCallback on_accept_;
  TcpListener listener_;
  // Two reserve descriptors: one to accept-then-close the pending client,
  // and enough headroom that recovery-path code needing a pipe (two fds —
  // log reopen, sanitizer memory probes) still functions at exhaustion.
  Fd reserve_[2];
  bool registered_ = false;
  bool suspended_ = false;
  bool resume_timer_armed_ = false;
  TimerQueue::TimerId resume_timer_{};
  int resume_delay_ms_ = 100;
  uint64_t accepted_ = 0;
  uint64_t overflow_events_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace cops::net
