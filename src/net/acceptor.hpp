// Acceptor — the passive half of the Acceptor-Connector pattern (Schmidt,
// 1997): decouples connection establishment from the service performed on
// the established connection.  The N-Server registers an Acceptor with the
// Reactor; every accepted socket is handed to a user-supplied factory.
//
// suspend()/resume() are the lever the overload controller (option O9)
// pulls: suspending deregisters the listening socket from the Reactor so
// new connection requests queue in the kernel (and are eventually dropped),
// exactly as the paper's second overload-control mechanism postpones
// connection acceptance.
#pragma once

#include <functional>

#include "net/event_handler.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::net {

class Acceptor : public EventHandler {
 public:
  using AcceptCallback = std::function<void(TcpSocket)>;

  Acceptor(Reactor& reactor, AcceptCallback on_accept)
      : reactor_(reactor), on_accept_(std::move(on_accept)) {}
  ~Acceptor() override;

  // Binds and registers with the reactor.  Must run on the reactor thread
  // (or before the loop starts).  `reuseport` opens the listener with
  // SO_REUSEPORT so one Acceptor per shard can share the port.
  Status open(const InetAddress& addr, int backlog = 512,
              bool reuseport = false);

  // The bound address (resolves port 0).
  [[nodiscard]] Result<InetAddress> local_address() const {
    return listener_.local_address();
  }

  // Overload control: stop/restart accepting new connections.
  Status suspend();
  Status resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

  void close();

  [[nodiscard]] uint64_t accepted_count() const { return accepted_; }

  void handle_event(int fd, uint32_t readiness) override;

 private:
  Reactor& reactor_;
  AcceptCallback on_accept_;
  TcpListener listener_;
  bool registered_ = false;
  bool suspended_ = false;
  uint64_t accepted_ = 0;
};

}  // namespace cops::net
