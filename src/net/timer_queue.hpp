// Min-heap timer queue used by the Timer event source (idle-connection
// reaping, client think time, retry backoff...).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"

namespace cops::net {

class TimerQueue {
 public:
  using TimerId = uint64_t;

  // Schedules `fn` at `deadline`; returns an id usable with cancel().
  TimerId schedule_at(TimePoint deadline, std::function<void()> fn);
  TimerId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  // Cancels a pending timer (no-op if already fired).  Lazy: the heap entry
  // is tombstoned and skipped when popped — but the heap is compacted once
  // tombstones outnumber live timers, so heavy schedule/cancel churn (every
  // request under O7 re-arms an idle timer) cannot grow the heap unboundedly.
  void cancel(TimerId id);

  // Milliseconds until the next timer, clamped to `cap_ms`; returns cap_ms
  // when no timers are pending (-1 cap means "block forever").  Tombstoned
  // entries at the top are dropped first, so a cancelled timer's deadline
  // never causes a spurious early wakeup.
  [[nodiscard]] int next_timeout_ms(int cap_ms) const;

  // Runs all timers whose deadline has passed; returns how many fired.
  size_t run_due(TimePoint at);
  size_t run_due() { return run_due(now()); }

  [[nodiscard]] size_t pending() const { return callbacks_.size(); }
  // Heap entries including tombstones (bounded at < 2x pending()).
  [[nodiscard]] size_t heap_size() const { return heap_.size(); }

 private:
  struct Entry {
    TimePoint deadline;
    TimerId id;
    bool operator>(const Entry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  // Pops cancelled entries off the heap top.
  void prune_top() const;
  // Drops every tombstone and re-heapifies (O(live) when compaction is due).
  void compact();

  // Every live callback has exactly one heap entry, so
  // heap_.size() - callbacks_.size() is the exact tombstone count.
  // Mutable: pruning from the (logically const) timeout query keeps the
  // top live without changing observable state.
  mutable std::vector<Entry> heap_;
  std::unordered_map<TimerId, std::function<void()>> callbacks_;
  TimerId next_id_ = 1;
};

}  // namespace cops::net
