// Min-heap timer queue used by the Timer event source (idle-connection
// reaping, client think time, retry backoff...).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"

namespace cops::net {

class TimerQueue {
 public:
  using TimerId = uint64_t;

  // Schedules `fn` at `deadline`; returns an id usable with cancel().
  TimerId schedule_at(TimePoint deadline, std::function<void()> fn);
  TimerId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  // Cancels a pending timer (no-op if already fired).  Lazy: the heap entry
  // is tombstoned and skipped when popped.
  void cancel(TimerId id);

  // Milliseconds until the next timer, clamped to `cap_ms`; returns cap_ms
  // when no timers are pending (-1 cap means "block forever").
  [[nodiscard]] int next_timeout_ms(int cap_ms) const;

  // Runs all timers whose deadline has passed; returns how many fired.
  size_t run_due(TimePoint at);
  size_t run_due() { return run_due(now()); }

  [[nodiscard]] size_t pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    TimePoint deadline;
    TimerId id;
    bool operator>(const Entry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<TimerId, std::function<void()>> callbacks_;
  TimerId next_id_ = 1;
};

}  // namespace cops::net
