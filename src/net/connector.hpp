// Connector — the active half of the Acceptor-Connector pattern.
// Initiates a non-blocking connect and invokes the completion callback on
// the reactor thread once the connection is established (or fails).
// Used by the FTP server for active-mode (PORT) data connections and by
// tests.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "net/event_handler.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::net {

class Connector {
 public:
  using ConnectCallback = std::function<void(Result<TcpSocket>)>;

  explicit Connector(Reactor& reactor) : reactor_(reactor) {}
  ~Connector();

  // Starts a non-blocking connect to `peer`; `on_done` runs on the reactor
  // thread with the connected socket or an error status.  Must be called
  // from the reactor thread.
  Status connect(const InetAddress& peer, ConnectCallback on_done);
  // Same, with a per-attempt deadline: if the connect has not completed
  // within `timeout` the attempt is abandoned (socket closed) and `on_done`
  // gets kUnavailable.  A SYN blackhole otherwise hangs a non-blocking
  // connect for the kernel's full ~2 minute retransmit cycle.
  Status connect(const InetAddress& peer, Duration timeout,
                 ConnectCallback on_done);

  [[nodiscard]] size_t pending() const { return pending_.size(); }

 private:
  // One in-flight connect; owns its socket until completion.
  struct Pending : EventHandler {
    Pending(Connector& owner, TcpSocket sock, ConnectCallback cb)
        : owner(owner), socket(std::move(sock)), callback(std::move(cb)) {}
    void handle_event(int fd, uint32_t readiness) override;

    Connector& owner;
    TcpSocket socket;
    ConnectCallback callback;
    TimerQueue::TimerId timer_id = 0;
    bool has_timer = false;
  };

  Result<int> start(const InetAddress& peer, ConnectCallback on_done);
  void finish(int fd);
  void timed_out(int fd);

  Reactor& reactor_;
  std::unordered_map<int, std::unique_ptr<Pending>> pending_;
};

}  // namespace cops::net
