// IPv4 socket address wrapper.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace cops::net {

class InetAddress {
 public:
  InetAddress() { addr_ = {}; }
  // host may be a dotted quad or "localhost"; no DNS resolution beyond that
  // (the experiments all run on loopback).
  static Result<InetAddress> parse(const std::string& host, uint16_t port);
  static InetAddress loopback(uint16_t port);
  static InetAddress any(uint16_t port);
  explicit InetAddress(const sockaddr_in& addr) : addr_(addr) {}

  [[nodiscard]] const sockaddr_in& raw() const { return addr_; }
  [[nodiscard]] sockaddr_in& raw() { return addr_; }
  [[nodiscard]] uint16_t port() const;
  [[nodiscard]] std::string host() const;
  [[nodiscard]] std::string to_string() const;

 private:
  sockaddr_in addr_{};
};

}  // namespace cops::net
