// OS event-demultiplexing facade underneath the Reactor (the paper's Java
// implementation sits on java.nio Selector; on Linux that is epoll — or,
// with `io_backend = io_uring`, a completion ring driven by UringPoller).
//
// The backend is chosen at construction and hidden behind one interface;
// the simulation seam sits *above* the backend split, so sim fds behave
// identically whichever backend is selected.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"  // interest flags, ReadyFd, the simulation seam

namespace cops::net {

class UringPoller;

// Which kernel mechanism drives a Poller.  kUring silently degrades to
// kEpoll when the io_uring probe fails (compiled out, old kernel, seccomp).
enum class PollBackend { kEpoll, kUring };

class Poller {
 public:
  Poller() : Poller(PollBackend::kEpoll) {}
  explicit Poller(PollBackend backend);
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  Status add(int fd, uint32_t interest);
  Status modify(int fd, uint32_t interest);
  Status remove(int fd);

  // Waits up to timeout_ms (-1 = forever); appends ready fds to `out` and
  // returns the number of ready descriptors.
  Result<size_t> wait(std::vector<ReadyFd>& out, int timeout_ms);

  [[nodiscard]] bool valid() const {
    return epoll_fd_.valid() || uring_ != nullptr;
  }
  // The backend actually in effect (kEpoll after a failed uring probe).
  [[nodiscard]] PollBackend backend() const {
    return uring_ != nullptr ? PollBackend::kUring : PollBackend::kEpoll;
  }

 private:
  Fd epoll_fd_;
  std::unique_ptr<UringPoller> uring_;
};

}  // namespace cops::net
