// Thin epoll wrapper — the OS event-demultiplexing mechanism underneath the
// Reactor (the paper's Java implementation sits on java.nio Selector; on
// Linux that is epoll).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"  // interest flags, ReadyFd, the simulation seam

namespace cops::net {

class Poller {
 public:
  Poller();
  ~Poller() = default;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  Status add(int fd, uint32_t interest);
  Status modify(int fd, uint32_t interest);
  Status remove(int fd);

  // Waits up to timeout_ms (-1 = forever); appends ready fds to `out` and
  // returns the number of ready descriptors.
  Result<size_t> wait(std::vector<ReadyFd>& out, int timeout_ms);

  [[nodiscard]] bool valid() const { return epoll_fd_.valid(); }

 private:
  Fd epoll_fd_;
};

}  // namespace cops::net
