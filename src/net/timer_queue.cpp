#include "net/timer_queue.hpp"

#include <algorithm>

namespace cops::net {
namespace {

// Min-heap on (deadline, id) via the standard heap algorithms.
struct Later {
  bool operator()(const auto& a, const auto& b) const { return a > b; }
};

constexpr size_t kMinHeapSizeForCompaction = 16;

}  // namespace

TimerQueue::TimerId TimerQueue::schedule_at(TimePoint deadline,
                                            std::function<void()> fn) {
  const TimerId id = next_id_++;
  heap_.push_back({deadline, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void TimerQueue::cancel(TimerId id) {
  if (callbacks_.erase(id) == 0) return;
  if (heap_.size() >= kMinHeapSizeForCompaction &&
      heap_.size() - callbacks_.size() > callbacks_.size()) {
    compact();
  }
}

void TimerQueue::compact() {
  std::erase_if(heap_, [this](const Entry& entry) {
    return callbacks_.find(entry.id) == callbacks_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void TimerQueue::prune_top() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.front().id) == callbacks_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

int TimerQueue::next_timeout_ms(int cap_ms) const {
  prune_top();
  if (heap_.empty()) return cap_ms;
  const auto delta = heap_.front().deadline - now();
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delta).count();
  if (ms < 0) ms = 0;
  ++ms;  // round up so a wakeup does not land just before the deadline
  if (cap_ms >= 0 && ms > cap_ms) return cap_ms;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

size_t TimerQueue::run_due(TimePoint at) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.front().deadline <= at) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

}  // namespace cops::net
