#include "net/timer_queue.hpp"

#include <algorithm>

namespace cops::net {

TimerQueue::TimerId TimerQueue::schedule_at(TimePoint deadline,
                                            std::function<void()> fn) {
  const TimerId id = next_id_++;
  heap_.push({deadline, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void TimerQueue::cancel(TimerId id) { callbacks_.erase(id); }

int TimerQueue::next_timeout_ms(int cap_ms) const {
  if (callbacks_.empty()) return cap_ms;
  // The heap top may be a tombstone of a cancelled timer; that only causes
  // an early wakeup, which is harmless.
  const auto delta = heap_.top().deadline - now();
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(delta).count();
  if (ms < 0) ms = 0;
  ++ms;  // round up so a wakeup does not land just before the deadline
  if (cap_ms >= 0 && ms > cap_ms) return cap_ms;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

size_t TimerQueue::run_due(TimePoint at) {
  size_t fired = 0;
  while (!heap_.empty() && heap_.top().deadline <= at) {
    const Entry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

}  // namespace cops::net
