#include "net/uring.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include <sys/socket.h>
#include <unistd.h>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"

#if COPS_URING_ENABLED
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace cops::net {

namespace {
std::atomic<bool> g_force_unavailable{false};
std::atomic<int> g_ops_enabled{0};
}  // namespace

void test_force_uring_unavailable(bool forced) {
  g_force_unavailable.store(forced, std::memory_order_relaxed);
}

void enable_uring_ops() {
  g_ops_enabled.fetch_add(1, std::memory_order_relaxed);
}

void disable_uring_ops() {
  g_ops_enabled.fetch_sub(1, std::memory_order_relaxed);
}

bool uring_ops_enabled() {
  return g_ops_enabled.load(std::memory_order_relaxed) > 0;
}

#if !COPS_URING_ENABLED

// ---- compiled-out stubs ---------------------------------------------------
// Every entry point degrades to "not available"; the socket shims and the
// Poller fall back to the plain syscalls / epoll.

bool uring_compiled() { return false; }
bool uring_available() { return false; }

ssize_t uring_recv(int fd, void* buf, size_t len) {
  return ::read(fd, buf, len);
}
ssize_t uring_send(int fd, const void* buf, size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}
ssize_t uring_sendmsg(int fd, const struct iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}
bool uring_pop_staged_accept(int, SysResult&) { return false; }

struct UringPoller::Impl {};

UringPoller::UringPoller() = default;
UringPoller::~UringPoller() = default;
std::unique_ptr<UringPoller> UringPoller::create() { return nullptr; }
Status UringPoller::add(int, uint32_t) {
  return Status::io_error("io_uring backend compiled out");
}
Status UringPoller::modify(int, uint32_t) {
  return Status::io_error("io_uring backend compiled out");
}
Status UringPoller::remove(int) {
  return Status::io_error("io_uring backend compiled out");
}
Result<size_t> UringPoller::wait(std::vector<ReadyFd>&, int) {
  return Status::io_error("io_uring backend compiled out");
}
size_t UringPoller::accept_streams() const { return 0; }
uint64_t UringPoller::cqes_reaped() const { return 0; }

#else  // COPS_URING_ENABLED

namespace {

// ---- raw syscalls ---------------------------------------------------------

int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

long sys_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                     unsigned flags, const void* arg, size_t argsz) {
  return ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                   arg, argsz);
}

int sys_uring_register(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// GCC/Clang builtins rather than std::atomic_ref: atomic_ref over the
// kernel-shared ring words would require const-casting the mapped memory.
inline uint32_t acquire_load(const uint32_t* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
inline void release_store(uint32_t* p, uint32_t v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

// poll(2) event bits (identical values to their EPOLL* counterparts); local
// constants keep this file independent of _GNU_SOURCE poll.h details.
constexpr uint32_t kPollIn = 0x001;
constexpr uint32_t kPollOut = 0x004;
constexpr uint32_t kPollErr = 0x008;
constexpr uint32_t kPollHup = 0x010;
constexpr uint32_t kPollRdHup = 0x2000;

uint32_t to_poll_mask(uint32_t interest) {
  uint32_t mask = 0;
  if ((interest & kReadable) != 0) mask |= kPollIn;
  if ((interest & kWritable) != 0) mask |= kPollOut;
  return mask;
}

uint32_t from_poll_mask(uint32_t mask) {
  uint32_t out = 0;
  if ((mask & (kPollIn | kPollRdHup)) != 0) out |= kReadable;
  if ((mask & kPollOut) != 0) out |= kWritable;
  if ((mask & (kPollErr | kPollHup)) != 0) out |= kErrored;
  return out;
}

}  // namespace

bool uring_compiled() { return true; }

bool uring_available() {
  if (g_force_unavailable.load(std::memory_order_relaxed)) return false;
  static const bool probed = [] {
    io_uring_params p{};
    const int fd = sys_uring_setup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    // EXT_ARG gives io_uring_enter a timeout argument — without it the
    // reactor could not bound its poll sleep.  Kernels 5.11+.
    return (p.features & IORING_FEAT_EXT_ARG) != 0;
  }();
  return probed;
}

// ---- UringRing ------------------------------------------------------------

UringRing::~UringRing() {
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
}

Status UringRing::init(unsigned entries) {
  io_uring_params p{};
  ring_fd_ = sys_uring_setup(entries, &p);
  if (ring_fd_ < 0) return Status::from_errno("io_uring_setup");
  sq_entries_ = p.sq_entries;

  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) {
    sq_ring_bytes_ = cq_ring_bytes_;
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return Status::from_errno("mmap(sq_ring)");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      return Status::from_errno("mmap(cq_ring)");
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return Status::from_errno("mmap(sqes)");
  }

  auto* sq = static_cast<uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.head);
  sq_tail_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.tail);
  sq_mask_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<uint32_t*>(sq + p.sq_off.array);
  auto* cq = static_cast<uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<uint32_t*>(cq + p.cq_off.head);
  cq_tail_ = reinterpret_cast<uint32_t*>(cq + p.cq_off.tail);
  cq_mask_ = reinterpret_cast<uint32_t*>(cq + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  return Status::ok();
}

io_uring_sqe* UringRing::get_sqe() {
  const uint32_t head = acquire_load(sq_head_);
  const uint32_t tail = *sq_tail_;  // sole producer: plain read
  if (tail - head >= sq_entries_) return nullptr;
  const uint32_t idx = tail & *sq_mask_;
  io_uring_sqe* sqe = &sqes_[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_array_[idx] = idx;
  release_store(sq_tail_, tail + 1);
  ++to_submit_;
  return sqe;
}

int UringRing::submit() { return submit_and_wait(0, 0); }

int UringRing::submit_and_wait(unsigned wait_nr, int timeout_ms) {
  unsigned flags = 0;
  io_uring_getevents_arg arg{};
  __kernel_timespec ts{};
  const void* argp = nullptr;
  size_t argsz = 0;
  if (wait_nr > 0) {
    flags |= IORING_ENTER_GETEVENTS;
    if (timeout_ms >= 0) {
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
      arg.ts = reinterpret_cast<uint64_t>(&ts);
      flags |= IORING_ENTER_EXT_ARG;
      argp = &arg;
      argsz = sizeof(arg);
    }
  } else if (to_submit_ == 0) {
    return 0;  // nothing to do
  }
  const long ret =
      sys_uring_enter(ring_fd_, to_submit_, wait_nr, flags, argp, argsz);
  if (ret < 0) {
    // If SQEs were consumed before the wait failed, the kernel returns the
    // consumed count instead of an error — so an error here means nothing
    // was submitted.  Timeouts and signals are "0 events", not failures.
    if (errno == EINTR || errno == ETIME) return 0;
    return -errno;
  }
  const auto consumed = static_cast<unsigned>(ret);
  to_submit_ -= (consumed > to_submit_) ? to_submit_ : consumed;
  return static_cast<int>(ret);
}

bool UringRing::pop_cqe(io_uring_cqe& out) {
  const uint32_t head = *cq_head_;  // sole consumer: plain read
  if (head == acquire_load(cq_tail_)) return false;
  out = cqes_[head & *cq_mask_];
  release_store(cq_head_, head + 1);
  return true;
}

Status UringRing::register_buffers(const struct iovec* iov, unsigned count) {
  if (sys_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, iov, count) < 0) {
    return Status::from_errno("io_uring_register(BUFFERS)");
  }
  return Status::ok();
}

void UringRing::unregister_buffers() {
  sys_uring_register(ring_fd_, IORING_UNREGISTER_BUFFERS, nullptr, 0);
}

// ---- UringPoller ----------------------------------------------------------

// user_data layout: tag(8) | generation(24) | fd(32).  Generations stamp
// every armed operation; a CQE whose generation no longer matches the fd's
// registration (cancelled, re-armed, or the fd number was recycled) is
// dropped instead of being misattributed.
namespace {
constexpr uint64_t kTagPoll = 1;
constexpr uint64_t kTagAccept = 2;
constexpr uint64_t kTagIgnore = 3;

uint64_t make_ud(uint64_t tag, uint32_t gen, int fd) {
  return (tag << 56) | (static_cast<uint64_t>(gen & 0xFFFFFF) << 32) |
         static_cast<uint32_t>(fd);
}
uint64_t ud_tag(uint64_t ud) { return ud >> 56; }
uint32_t ud_gen(uint64_t ud) { return static_cast<uint32_t>(ud >> 32) & 0xFFFFFF; }
int ud_fd(uint64_t ud) { return static_cast<int>(ud & 0xFFFFFFFF); }
}  // namespace

struct UringPoller::Impl {
  struct FdState {
    uint32_t desired = 0;  // interest the owner asked for
    uint32_t armed = 0;    // interest currently armed in the kernel
    uint32_t gen = 0;      // stamps in-flight user_data
    bool is_accept = false;
    bool dirty = false;
    std::deque<SysResult> staged;  // multishot-accept results
  };
  struct Cancel {
    uint64_t ud = 0;
    bool accept = false;
  };

  UringRing ring;
  std::unordered_map<int, FdState> fds;
  std::vector<int> dirty;
  std::vector<Cancel> cancels;
  size_t accept_streams = 0;
  uint64_t cqes_reaped = 0;

  ~Impl();
  void mark_dirty(int fd, FdState& st) {
    if (!st.dirty) {
      st.dirty = true;
      dirty.push_back(fd);
    }
  }
  Status flush();
  Status push_sqe(uint8_t opcode, int fd, uint64_t addr, uint32_t len,
                  uint32_t op_flags, uint16_t ioprio, uint64_t user_data);
  void reap(std::vector<ReadyFd>& out);
  void merge_ready(std::vector<ReadyFd>& out, int fd, uint32_t events);
};

namespace {
// Listener fds with an active multishot-accept stream, so sys_accept can
// drain staged results.  The map is tiny (one entry per listener); lookups
// happen once per Acceptor drain round.
std::mutex g_accept_mu;
std::unordered_map<int, UringPoller::Impl*> g_accept_map;
}  // namespace

bool uring_pop_staged_accept(int listen_fd, SysResult& r) {
  std::lock_guard<std::mutex> lock(g_accept_mu);
  auto it = g_accept_map.find(listen_fd);
  if (it == g_accept_map.end()) return false;
  auto fit = it->second->fds.find(listen_fd);
  if (fit == it->second->fds.end() || fit->second.staged.empty()) {
    // Stream armed but nothing staged: fall through to accept4 — that keeps
    // the EMFILE reserve-descriptor retry working, and costs epoll-parity
    // (one trailing EAGAIN accept per drain round).
    return false;
  }
  r = fit->second.staged.front();
  fit->second.staged.pop_front();
  return true;
}

UringPoller::Impl::~Impl() {
  std::lock_guard<std::mutex> lock(g_accept_mu);
  for (auto& [fd, st] : fds) {
    for (const auto& staged : st.staged) {
      if (staged.n >= 0) ::close(static_cast<int>(staged.n));
    }
    if (st.is_accept) g_accept_map.erase(fd);
  }
}

UringPoller::UringPoller() = default;
UringPoller::~UringPoller() = default;

std::unique_ptr<UringPoller> UringPoller::create() {
  if (!uring_available()) return nullptr;
  auto poller = std::unique_ptr<UringPoller>(new UringPoller());
  poller->impl_ = std::make_unique<Impl>();
  // 256 SQEs: one oneshot re-arm per ready fd per tick, submitted in one
  // batch; flush() drains to the kernel mid-tick if a burst overflows.
  if (!poller->impl_->ring.init(256).is_ok()) return nullptr;
  return poller;
}

Status UringPoller::Impl::push_sqe(uint8_t opcode, int fd, uint64_t addr,
                                   uint32_t len, uint32_t op_flags,
                                   uint16_t ioprio, uint64_t user_data) {
  io_uring_sqe* sqe = ring.get_sqe();
  while (sqe == nullptr) {
    const int rc = ring.submit();
    if (rc < 0) return Status::io_error("io_uring_enter(submit)");
    sqe = ring.get_sqe();
  }
  sqe->opcode = opcode;
  sqe->fd = fd;
  sqe->addr = addr;
  sqe->len = len;
  sqe->poll32_events = op_flags;  // union shared with accept/cancel flags
  sqe->ioprio = ioprio;
  sqe->user_data = user_data;
  return Status::ok();
}

Status UringPoller::Impl::flush() {
  for (const auto& c : cancels) {
    const uint8_t op = c.accept ? static_cast<uint8_t>(IORING_OP_ASYNC_CANCEL)
                                : static_cast<uint8_t>(IORING_OP_POLL_REMOVE);
    auto status = push_sqe(op, -1, c.ud, 0, 0, 0, make_ud(kTagIgnore, 0, 0));
    if (!status.is_ok()) return status;
  }
  cancels.clear();
  for (size_t i = 0; i < dirty.size(); ++i) {  // flush may re-dirty
    const int fd = dirty[i];
    auto it = fds.find(fd);
    if (it == fds.end()) continue;
    FdState& st = it->second;
    st.dirty = false;
    if (st.armed == st.desired) continue;
    Status status;
    if (st.armed != 0) {
      // Oneshot interest changed while armed: remove, then re-arm below.
      status = push_sqe(IORING_OP_POLL_REMOVE, -1,
                        make_ud(kTagPoll, st.gen, fd), 0, 0, 0,
                        make_ud(kTagIgnore, 0, 0));
      if (!status.is_ok()) return status;
      st.armed = 0;
      ++st.gen;
    }
    if (st.desired == 0) continue;
    if (st.is_accept) {
      status = push_sqe(IORING_OP_ACCEPT, fd, 0, 0,
                        SOCK_NONBLOCK | SOCK_CLOEXEC, IORING_ACCEPT_MULTISHOT,
                        make_ud(kTagAccept, st.gen, fd));
    } else {
      status = push_sqe(IORING_OP_POLL_ADD, fd, 0, 0,
                        to_poll_mask(st.desired), 0,
                        make_ud(kTagPoll, st.gen, fd));
    }
    if (!status.is_ok()) return status;
    st.armed = st.desired;
  }
  dirty.clear();
  return Status::ok();
}

void UringPoller::Impl::merge_ready(std::vector<ReadyFd>& out, int fd,
                                    uint32_t events) {
  for (auto& ready : out) {
    if (ready.fd == fd) {
      ready.events |= events;
      return;
    }
  }
  out.push_back({fd, events});
}

void UringPoller::Impl::reap(std::vector<ReadyFd>& out) {
  io_uring_cqe cqe{};
  while (ring.pop_cqe(cqe)) {
    ++cqes_reaped;
    const uint64_t ud = cqe.user_data;
    if (ud_tag(ud) == kTagIgnore) continue;
    const int fd = ud_fd(ud);
    auto it = fds.find(fd);
    if (it == fds.end() || it->second.gen != ud_gen(ud)) {
      // Stale completion (deregistered, re-armed, or recycled fd).  A stale
      // accepted descriptor must still be closed, never leaked.
      if (ud_tag(ud) == kTagAccept && cqe.res >= 0) ::close(cqe.res);
      continue;
    }
    FdState& st = it->second;
    if (ud_tag(ud) == kTagAccept) {
      if (cqe.res >= 0) {
        st.staged.push_back({cqe.res, 0});
        merge_ready(out, fd, kReadable);
      } else if (cqe.res != -ECANCELED) {
        // Kernel-side accept failure (EMFILE and friends): stage it so the
        // Acceptor's error path — including the reserve-fd recovery — sees
        // the same errno a direct accept4 would have produced.
        st.staged.push_back({-1, -cqe.res});
        merge_ready(out, fd, kReadable);
      }
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        // Stream ended (error or cancellation): re-arm on the next tick.
        st.armed = 0;
        ++st.gen;
        mark_dirty(fd, st);
      }
      continue;
    }
    // Oneshot poll: every completion disarms.
    st.armed = 0;
    ++st.gen;
    if (cqe.res < 0) {
      if (cqe.res != -ECANCELED) {
        // The fd went bad underneath the registration (closed without
        // deregister).  Park it — epoll drops closed fds silently too, and
        // re-arming would spin on the same error.
        st.desired = 0;
      }
      continue;
    }
    mark_dirty(fd, st);  // level-triggered equivalence: re-arm next tick
    const uint32_t events = from_poll_mask(static_cast<uint32_t>(cqe.res));
    if (events != 0) merge_ready(out, fd, events);
  }
}

Status UringPoller::add(int fd, uint32_t interest) {
  auto [it, inserted] = impl_->fds.try_emplace(fd);
  if (!inserted) {
    return Status::invalid_argument("uring add: fd already registered");
  }
  Impl::FdState& st = it->second;
  st.desired = interest;
  // Listeners get a multishot accept stream instead of poll readiness.
  int acceptconn = 0;
  socklen_t len = sizeof(acceptconn);
  if ((interest & kReadable) != 0 &&
      ::getsockopt(fd, SOL_SOCKET, SO_ACCEPTCONN, &acceptconn, &len) == 0 &&
      acceptconn != 0) {
    st.is_accept = true;
    ++impl_->accept_streams;
    std::lock_guard<std::mutex> lock(g_accept_mu);
    g_accept_map[fd] = impl_.get();
  }
  impl_->mark_dirty(fd, st);
  return Status::ok();
}

Status UringPoller::modify(int fd, uint32_t interest) {
  auto it = impl_->fds.find(fd);
  if (it == impl_->fds.end()) {
    return Status::invalid_argument("uring modify: fd not registered");
  }
  it->second.desired = interest;
  if (it->second.armed != interest) impl_->mark_dirty(fd, it->second);
  return Status::ok();
}

Status UringPoller::remove(int fd) {
  auto it = impl_->fds.find(fd);
  if (it == impl_->fds.end()) {
    return Status::invalid_argument("uring remove: fd not registered");
  }
  Impl::FdState& st = it->second;
  if (st.armed != 0) {
    impl_->cancels.push_back(Impl::Cancel{
        make_ud(st.is_accept ? kTagAccept : kTagPoll, st.gen, fd),
        st.is_accept});
  }
  for (const auto& staged : st.staged) {
    if (staged.n >= 0) ::close(static_cast<int>(staged.n));
  }
  if (st.is_accept) {
    --impl_->accept_streams;
    std::lock_guard<std::mutex> lock(g_accept_mu);
    g_accept_map.erase(fd);
  }
  impl_->fds.erase(it);
  return Status::ok();
}

Result<size_t> UringPoller::wait(std::vector<ReadyFd>& out, int timeout_ms) {
  auto status = impl_->flush();
  if (!status.is_ok()) return status;
  const size_t before = out.size();
  // Completions may already be queued from a previous tick's submissions:
  // reap first and return immediately (after pushing any pending SQEs to
  // the kernel) rather than sleeping on a non-empty queue.
  impl_->reap(out);
  if (out.size() != before) {
    const int rc = impl_->ring.submit();
    if (rc < 0) return Status::io_error("io_uring_enter(submit)");
    return out.size() - before;
  }
  const int rc = impl_->ring.submit_and_wait(1, timeout_ms);
  if (rc < 0) return Status::io_error("io_uring_enter(wait)");
  impl_->reap(out);
  return out.size() - before;
}

size_t UringPoller::accept_streams() const { return impl_->accept_streams; }
uint64_t UringPoller::cqes_reaped() const { return impl_->cqes_reaped; }

// ---- sync-over-ring socket ops -------------------------------------------

namespace {

// One tiny ring per thread: with the separate-processor-pool option the
// reads and writes run on Event Processor threads, not the reactor thread,
// so the ring must travel with the caller.  Lazily initialised; a thread
// that cannot get a ring (seccomp, rlimits) falls back to plain syscalls.
struct OpRingTls {
  UringRing ring;
  bool tried = false;
  bool usable = false;

  UringRing* get() {
    if (!tried) {
      tried = true;
      usable = uring_available() && ring.init(8).is_ok();
    }
    return usable ? &ring : nullptr;
  }
};
thread_local OpRingTls t_op_ring;

// Submits the queued SQE and blocks until its completion.  The ops carry
// MSG_DONTWAIT, so "blocks" is one bounded enter: the kernel executes the
// op inline and posts EAGAIN instead of sleeping — identical errno contract
// to the plain syscall.
ssize_t sync_op_result(UringRing& ring) {
  for (;;) {
    const int rc = ring.submit_and_wait(1, -1);
    if (rc < 0) {
      errno = -rc;
      return -1;
    }
    io_uring_cqe cqe{};
    if (ring.pop_cqe(cqe)) {
      if (cqe.res < 0) {
        errno = -cqe.res;
        return -1;
      }
      return cqe.res;
    }
    // Interrupted before the completion arrived: wait again.
  }
}

}  // namespace

ssize_t uring_recv(int fd, void* buf, size_t len) {
  UringRing* ring = t_op_ring.get();
  io_uring_sqe* sqe = ring != nullptr ? ring->get_sqe() : nullptr;
  if (sqe == nullptr) return ::read(fd, buf, len);
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->msg_flags = MSG_DONTWAIT;
  sqe->user_data = make_ud(kTagIgnore, 0, fd);
  return sync_op_result(*ring);
}

ssize_t uring_send(int fd, const void* buf, size_t len) {
  UringRing* ring = t_op_ring.get();
  io_uring_sqe* sqe = ring != nullptr ? ring->get_sqe() : nullptr;
  if (sqe == nullptr) return ::send(fd, buf, len, MSG_NOSIGNAL);
  sqe->opcode = IORING_OP_SEND;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(buf);
  sqe->len = static_cast<uint32_t>(len);
  sqe->msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
  sqe->user_data = make_ud(kTagIgnore, 0, fd);
  return sync_op_result(*ring);
}

ssize_t uring_sendmsg(int fd, const struct iovec* iov, int iovcnt) {
  UringRing* ring = t_op_ring.get();
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  io_uring_sqe* sqe = ring != nullptr ? ring->get_sqe() : nullptr;
  if (sqe == nullptr) return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<uint64_t>(&msg);
  sqe->len = 1;
  sqe->msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
  sqe->user_data = make_ud(kTagIgnore, 0, fd);
  return sync_op_result(*ring);
}

#endif  // COPS_URING_ENABLED

// ---- RegisteredBufferPool -------------------------------------------------

RegisteredBufferPool::RegisteredBufferPool(BufferPool& source, size_t count)
    : source_(source), slab_bytes_(source.block_bytes()) {
  slabs_.reserve(count);
  free_.reserve(count);
  handed_out_once_.assign(count, 0);
  for (size_t i = 0; i < count; ++i) {
    auto slab = source_.acquire();
    slab.resize(slab_bytes_);
    slabs_.push_back(std::move(slab));
    free_.push_back(static_cast<int>(i));
  }
}

RegisteredBufferPool::~RegisteredBufferPool() {
  for (auto& slab : slabs_) source_.release(std::move(slab));
}

#if COPS_URING_ENABLED
Status RegisteredBufferPool::register_with(UringRing& ring) {
  std::vector<struct iovec> iovs(slabs_.size());
  for (size_t i = 0; i < slabs_.size(); ++i) {
    iovs[i].iov_base = slabs_[i].data();
    iovs[i].iov_len = slab_bytes_;
  }
  return ring.register_buffers(iovs.data(),
                               static_cast<unsigned>(iovs.size()));
}
#endif

int RegisteredBufferPool::acquire() {
  if (free_.empty()) return -1;
  const int slot = free_.back();
  free_.pop_back();
  if (handed_out_once_[static_cast<size_t>(slot)] != 0) {
    ++reuses_;
  } else {
    handed_out_once_[static_cast<size_t>(slot)] = 1;
  }
  return slot;
}

void RegisteredBufferPool::release(int slot) { free_.push_back(slot); }

uint8_t* RegisteredBufferPool::data(int slot) {
  return slabs_[static_cast<size_t>(slot)].data();
}

}  // namespace cops::net
