#include "net/poller.hpp"

#include <sys/epoll.h>

#include <array>
#include <cerrno>

#include "common/logging.hpp"
#include "net/uring.hpp"

namespace cops::net {
namespace {

uint32_t to_epoll(uint32_t interest) {
  uint32_t ev = 0;
  if ((interest & kReadable) != 0) ev |= EPOLLIN;
  if ((interest & kWritable) != 0) ev |= EPOLLOUT;
  return ev;
}

uint32_t from_epoll(uint32_t ev) {
  uint32_t out = 0;
  if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) out |= kReadable;
  if ((ev & EPOLLOUT) != 0) out |= kWritable;
  if ((ev & (EPOLLERR | EPOLLHUP)) != 0) out |= kErrored;
  return out;
}

}  // namespace

Poller::Poller(PollBackend backend) {
  if (backend == PollBackend::kUring) {
    uring_ = UringPoller::create();
    if (uring_ != nullptr) return;
    COPS_WARN("io_uring backend unavailable; falling back to epoll");
  }
  // EPOLL_CLOEXEC: the demultiplexer must not leak into forked helpers.
  epoll_fd_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
}

Poller::~Poller() = default;

Status Poller::add(int fd, uint32_t interest) {
  if (is_sim_fd(fd)) [[unlikely]] {
    return sim_backend()->sim_poll_add(this, fd, interest);
  }
  if (uring_ != nullptr) return uring_->add(fd, interest);
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::from_errno("epoll_ctl(ADD)");
  }
  return Status::ok();
}

Status Poller::modify(int fd, uint32_t interest) {
  if (is_sim_fd(fd)) [[unlikely]] {
    return sim_backend()->sim_poll_modify(this, fd, interest);
  }
  if (uring_ != nullptr) return uring_->modify(fd, interest);
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::from_errno("epoll_ctl(MOD)");
  }
  return Status::ok();
}

Status Poller::remove(int fd) {
  if (is_sim_fd(fd)) [[unlikely]] {
    return sim_backend()->sim_poll_remove(this, fd);
  }
  if (uring_ != nullptr) return uring_->remove(fd);
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Status::from_errno("epoll_ctl(DEL)");
  }
  return Status::ok();
}

Result<size_t> Poller::wait(std::vector<ReadyFd>& out, int timeout_ms) {
  // While a simulation backend is installed the wait is answered entirely
  // from the simulator: virtual time advances instead of sleeping, and the
  // few real fds in the set (the reactor's wakeup eventfd) are covered by
  // the UserEventSource's queue-length timeout logic.  This check precedes
  // the backend split so every chaos plan applies identically to both.
  if (auto* sim = sim_backend(); sim != nullptr) [[unlikely]] {
    return sim->sim_poll_wait(this, out, timeout_ms);
  }
  if (uring_ != nullptr) return uring_->wait(out, timeout_ms);
  std::array<epoll_event, 256> events;  // NOLINT
  const int n =
      ::epoll_wait(epoll_fd_.get(), events.data(),
                   static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return size_t{0};
    return Status::from_errno("epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    out.push_back({events[static_cast<size_t>(i)].data.fd,
                   from_epoll(events[static_cast<size_t>(i)].events)});
  }
  return static_cast<size_t>(n);
}

}  // namespace cops::net
