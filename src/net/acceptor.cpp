#include "net/acceptor.hpp"

#include "common/logging.hpp"

namespace cops::net {

Acceptor::~Acceptor() { close(); }

Status Acceptor::open(const InetAddress& addr, int backlog, bool reuseport) {
  auto listener = TcpListener::listen(addr, backlog, reuseport);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).take();
  auto status =
      reactor_.register_handler(listener_.fd(), this, kReadable);
  if (!status.is_ok()) return status;
  registered_ = true;
  return Status::ok();
}

Status Acceptor::suspend() {
  if (!registered_ || suspended_) return Status::ok();
  auto status = reactor_.deregister(listener_.fd());
  if (!status.is_ok()) return status;
  suspended_ = true;
  return Status::ok();
}

Status Acceptor::resume() {
  if (!registered_ || !suspended_) return Status::ok();
  auto status = reactor_.register_handler(listener_.fd(), this, kReadable);
  if (!status.is_ok()) return status;
  suspended_ = false;
  return Status::ok();
}

void Acceptor::close() {
  if (registered_ && !suspended_) {
    reactor_.deregister(listener_.fd());
  }
  registered_ = false;
  listener_.close();
}

void Acceptor::handle_event(int /*fd*/, uint32_t /*readiness*/) {
  // Accept everything available; the listener is edge-insensitive (level-
  // triggered epoll) but draining here saves wakeups.
  while (true) {
    auto sock = listener_.accept();
    if (!sock.is_ok()) {
      if (sock.status().code() != StatusCode::kWouldBlock) {
        COPS_WARN("accept failed: " << sock.status().to_string());
      }
      return;
    }
    ++accepted_;
    on_accept_(std::move(sock).take());
  }
}

}  // namespace cops::net
