#include "net/acceptor.hpp"

#include <fcntl.h>

#include <chrono>

#include "common/logging.hpp"

namespace cops::net {

Acceptor::~Acceptor() { close(); }

Status Acceptor::open(const InetAddress& addr, int backlog, bool reuseport) {
  auto listener = TcpListener::listen(addr, backlog, reuseport);
  if (!listener.is_ok()) return listener.status();
  listener_ = std::move(listener).take();
  // Descriptors held in reserve for EMFILE recovery (see
  // handle_fd_exhaustion).
  for (auto& r : reserve_) r = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  auto status =
      reactor_.register_handler(listener_.fd(), this, kReadable);
  if (!status.is_ok()) return status;
  registered_ = true;
  return Status::ok();
}

Status Acceptor::suspend() {
  if (!registered_ || suspended_) return Status::ok();
  auto status = reactor_.deregister(listener_.fd());
  if (!status.is_ok()) return status;
  suspended_ = true;
  return Status::ok();
}

Status Acceptor::resume() {
  if (!registered_ || !suspended_) return Status::ok();
  auto status = reactor_.register_handler(listener_.fd(), this, kReadable);
  if (!status.is_ok()) return status;
  suspended_ = false;
  return Status::ok();
}

void Acceptor::close() {
  if (resume_timer_armed_) {
    reactor_.cancel_timer(resume_timer_);
    resume_timer_armed_ = false;
  }
  if (registered_ && !suspended_) {
    reactor_.deregister(listener_.fd());
  }
  registered_ = false;
  listener_.close();
  for (auto& r : reserve_) r.reset();
}

void Acceptor::handle_event(int /*fd*/, uint32_t /*readiness*/) {
  // Accept everything available; the listener is edge-insensitive (level-
  // triggered epoll) but draining here saves wakeups.
  while (true) {
    auto sock = listener_.accept();
    if (!sock.is_ok()) {
      const auto code = sock.status().code();
      if (code == StatusCode::kWouldBlock) return;
      if (code == StatusCode::kResourceExhausted) {
        handle_fd_exhaustion();
        return;
      }
      COPS_WARN("accept failed: " << sock.status().to_string());
      return;
    }
    ++accepted_;
    on_accept_(std::move(sock).take());
  }
}

void Acceptor::handle_fd_exhaustion() {
  ++overflow_events_;
  const bool had_reserve = reserve_[0].valid();
  if (had_reserve) {
    // Shed the pending connection: free the reserve slots, accept into one,
    // and close immediately.  The client gets a prompt close instead of
    // hanging in the listen queue until timeout.
    for (auto& r : reserve_) r.reset();
    auto shed = listener_.accept();
    if (shed.is_ok()) {
      ++shed_;
      std::move(shed).take().close();
    }
  }
  // Backstop: deregister the listener for a beat.  Without this the level-
  // triggered readable state spins the reactor at 100% CPU for as long as
  // the process stays out of descriptors.  This control-plane work runs
  // while the reserve slot is still free: anything here may need a
  // descriptor (log reopen, sanitizer memory probes), and at true zero-fd
  // those fail in ways that are much harder to debug than a missed shed.
  if (!suspended_ && registered_) {
    if (suspend().is_ok()) {
      resume_timer_ = reactor_.run_after(
          std::chrono::milliseconds(resume_delay_ms_), [this] {
            resume_timer_armed_ = false;
            resume();
          });
      resume_timer_armed_ = true;
    }
  }
  if (had_reserve) {
    for (auto& r : reserve_) r = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  }
}

}  // namespace cops::net
