#include "net/connector.hpp"

namespace cops::net {

Connector::~Connector() {
  for (auto& [fd, pending] : pending_) {
    reactor_.deregister(fd);
    if (pending->has_timer) reactor_.cancel_timer(pending->timer_id);
  }
}

Status Connector::connect(const InetAddress& peer, ConnectCallback on_done) {
  return start(peer, std::move(on_done)).status();
}

Status Connector::connect(const InetAddress& peer, Duration timeout,
                          ConnectCallback on_done) {
  auto fd = start(peer, std::move(on_done));
  if (!fd.is_ok()) return fd.status();
  if (timeout <= Duration::zero()) return Status::ok();
  auto& pending = pending_.at(fd.value());
  pending->timer_id =
      reactor_.run_after(timeout, [this, fd = fd.value()] { timed_out(fd); });
  pending->has_timer = true;
  return Status::ok();
}

Result<int> Connector::start(const InetAddress& peer, ConnectCallback on_done) {
  auto sock = TcpSocket::connect(peer);
  if (!sock.is_ok()) return sock.status();
  auto pending = std::make_unique<Pending>(*this, std::move(sock).take(),
                                           std::move(on_done));
  const int fd = pending->socket.fd();
  // Writability signals connect completion (success or failure).
  auto status = reactor_.register_handler(fd, pending.get(), kWritable);
  if (!status.is_ok()) return status;
  pending_.emplace(fd, std::move(pending));
  return fd;
}

void Connector::Pending::handle_event(int fd, uint32_t /*readiness*/) {
  owner.finish(fd);
}

void Connector::finish(int fd) {
  auto it = pending_.find(fd);
  if (it == pending_.end()) return;
  auto pending = std::move(it->second);
  pending_.erase(it);
  reactor_.deregister(fd);
  if (pending->has_timer) reactor_.cancel_timer(pending->timer_id);
  auto status = pending->socket.finish_connect();
  if (status.is_ok()) {
    pending->callback(std::move(pending->socket));
  } else {
    pending->callback(status);
  }
}

void Connector::timed_out(int fd) {
  auto it = pending_.find(fd);
  if (it == pending_.end()) return;  // completed just before the deadline
  auto pending = std::move(it->second);
  pending_.erase(it);
  reactor_.deregister(fd);
  pending->has_timer = false;  // the firing timer consumed itself
  pending->callback(Status::unavailable("connect timeout"));
}

}  // namespace cops::net
