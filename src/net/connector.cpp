#include "net/connector.hpp"

namespace cops::net {

Connector::~Connector() {
  for (auto& [fd, pending] : pending_) {
    reactor_.deregister(fd);
  }
}

Status Connector::connect(const InetAddress& peer, ConnectCallback on_done) {
  auto sock = TcpSocket::connect(peer);
  if (!sock.is_ok()) return sock.status();
  auto pending = std::make_unique<Pending>(*this, std::move(sock).take(),
                                           std::move(on_done));
  const int fd = pending->socket.fd();
  // Writability signals connect completion (success or failure).
  auto status = reactor_.register_handler(fd, pending.get(), kWritable);
  if (!status.is_ok()) return status;
  pending_.emplace(fd, std::move(pending));
  return Status::ok();
}

void Connector::Pending::handle_event(int fd, uint32_t /*readiness*/) {
  owner.finish(fd);
}

void Connector::finish(int fd) {
  auto it = pending_.find(fd);
  if (it == pending_.end()) return;
  auto pending = std::move(it->second);
  pending_.erase(it);
  reactor_.deregister(fd);
  auto status = pending->socket.finish_connect();
  if (status.is_ok()) {
    pending->callback(std::move(pending->socket));
  } else {
    pending->callback(status);
  }
}

}  // namespace cops::net
