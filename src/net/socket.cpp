#include "net/socket.hpp"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace cops::net {

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::from_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::from_errno("fcntl(F_SETFL)");
  }
  return Status::ok();
}

Result<TcpSocket> TcpSocket::connect(const InetAddress& peer) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return Status::from_errno("socket");
  const auto& raw = peer.raw();
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&raw),
                           sizeof(raw));
  if (rc == 0) return TcpSocket(std::move(fd));
  if (errno == EINPROGRESS) {
    TcpSocket sock(std::move(fd));
    // Caller must wait for writability; signal with kWouldBlock... but we
    // still need to hand the socket back.  Convention: return the socket;
    // callers treat a valid socket whose connect may be pending uniformly
    // and call finish_connect() on writability.
    return sock;
  }
  return Status::from_errno("connect");
}

Status TcpSocket::finish_connect() const {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Status::from_errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return Status::from_errno("connect");
  }
  return Status::ok();
}

Result<size_t> TcpSocket::read(ByteBuffer& buf, size_t max_bytes) {
  uint8_t* dst = buf.prepare(max_bytes);
  const ssize_t n = ::read(fd_.get(), dst, max_bytes);
  if (n > 0) {
    buf.commit(static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }
  buf.commit(0);
  if (n == 0) return Status::closed();
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == ECONNRESET) return Status::closed();
  return Status::from_errno("read");
}

Result<size_t> TcpSocket::write(ByteBuffer& buf) {
  size_t total = 0;
  while (buf.readable() > 0) {
    const ssize_t n =
        ::send(fd_.get(), buf.read_ptr(), buf.readable(), MSG_NOSIGNAL);
    if (n > 0) {
      buf.consume(static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (total > 0) return total;
      return Status::would_block();
    }
    if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
    return Status::from_errno("send");
  }
  return total;
}

Result<size_t> TcpSocket::write(std::string_view data) {
  const ssize_t n = ::send(fd_.get(), data.data(), data.size(), MSG_NOSIGNAL);
  if (n >= 0) return static_cast<size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
  return Status::from_errno("send");
}

Status TcpSocket::set_nodelay(bool on) {
  const int flag = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) <
      0) {
    return Status::from_errno("setsockopt(TCP_NODELAY)");
  }
  return Status::ok();
}

void TcpSocket::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

Result<InetAddress> TcpSocket::local_address() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getsockname");
  }
  return InetAddress(addr);
}

Result<InetAddress> TcpSocket::peer_address() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getpeername");
  }
  return InetAddress(addr);
}

Result<TcpListener> TcpListener::listen(const InetAddress& addr, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return Status::from_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const auto& raw = addr.raw();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&raw), sizeof(raw)) <
      0) {
    return Status::from_errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Status::from_errno("listen");
  return TcpListener(std::move(fd));
}

Result<TcpSocket> TcpListener::accept() {
  const int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK);
  if (client >= 0) return TcpSocket(Fd(client));
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == ECONNABORTED || errno == EINTR) return Status::would_block();
  return Status::from_errno("accept");
}

Result<InetAddress> TcpListener::local_address() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getsockname");
  }
  return InetAddress(addr);
}

}  // namespace cops::net
