#include "net/socket.hpp"

#include <csignal>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <mutex>

#include "net/transport.hpp"
#include "net/uring.hpp"

namespace cops::net {
namespace {

// Kernel-ABI shims: identical return-value/errno semantics whether the fd
// is real or simulated, so every retry/short-I/O code path above runs
// unchanged under simulation.  The sim branch is a constant compare on a
// register value — never taken in production, and checked *before* the
// io_uring routing so chaos plans apply identically to both backends.

ssize_t sys_read(int fd, void* buf, size_t len) {
  if (is_sim_fd(fd)) [[unlikely]] {
    const SysResult r = sim_backend()->sim_read(fd, buf, len);
    errno = r.err;
    return r.n;
  }
  if (uring_ops_enabled()) [[unlikely]] {
    return uring_recv(fd, buf, len);
  }
  return ::read(fd, buf, len);
}

ssize_t sys_send(int fd, const void* buf, size_t len) {
  if (is_sim_fd(fd)) [[unlikely]] {
    const SysResult r = sim_backend()->sim_write(fd, buf, len);
    errno = r.err;
    return r.n;
  }
  if (uring_ops_enabled()) [[unlikely]] {
    return uring_send(fd, buf, len);
  }
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

ssize_t sys_writev(int fd, const struct iovec* iov, int iovcnt) {
  if (is_sim_fd(fd)) [[unlikely]] {
    const SysResult r = sim_backend()->sim_writev(fd, iov, iovcnt);
    errno = r.err;
    return r.n;
  }
  if (uring_ops_enabled()) [[unlikely]] {
    return uring_sendmsg(fd, iov, iovcnt);
  }
  // sendmsg rather than writev: scatter-gather with MSG_NOSIGNAL, matching
  // the EPIPE (not SIGPIPE) semantics of the sys_send path.
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

ssize_t sys_sendfile(int out_fd, int in_fd, uint64_t offset, size_t count) {
  if (is_sim_fd(out_fd)) [[unlikely]] {
    const SysResult r = sim_backend()->sim_sendfile(out_fd, in_fd, offset,
                                                    count);
    errno = r.err;
    return r.n;
  }
  // sendfile has no MSG_NOSIGNAL equivalent: a peer reset between the poll
  // and the call would raise SIGPIPE and kill the process.  Ignore it once,
  // process-wide; every other send path already opts out per call.
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { std::signal(SIGPIPE, SIG_IGN); });
  off_t off = static_cast<off_t>(offset);
  return ::sendfile(out_fd, in_fd, &off, count);
}

int sys_accept(int fd) {
  if (is_sim_fd(fd)) [[unlikely]] {
    // A signal interrupting accept is not a failure: retry so the simnet
    // accept_eintr fault resolves within one dispatch instead of bouncing
    // back through the reactor.
    for (;;) {
      const SysResult r = sim_backend()->sim_accept(fd);
      if (r.n < 0 && r.err == EINTR) continue;
      errno = r.err;
      return static_cast<int>(r.n);
    }
  }
  // The io_uring backend accepts kernel-side (multishot IORING_OP_ACCEPT)
  // and stages the results; an empty stage falls through to accept4, which
  // keeps the EMFILE reserve-descriptor recovery path working unchanged.
  if (SysResult staged; uring_pop_staged_accept(fd, staged)) [[unlikely]] {
    errno = staged.err;
    return static_cast<int>(staged.n);
  }
  int client;
  do {
    client = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  } while (client < 0 && errno == EINTR);
  return client;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    if (is_sim_fd(fd_)) [[unlikely]] {
      if (auto* sim = sim_backend()) sim->sim_close(fd_);
    } else {
      ::close(fd_);
    }
    fd_ = -1;
  }
}

Status set_nonblocking(int fd) {
  if (is_sim_fd(fd)) return Status::ok();  // sim fds are always non-blocking
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::from_errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::from_errno("fcntl(F_SETFL)");
  }
  return Status::ok();
}

Result<TcpSocket> TcpSocket::connect(const InetAddress& peer) {
  if (auto* sim = sim_backend()) {
    auto fd = sim->sim_connect(peer);
    if (!fd.is_ok()) return fd.status();
    return TcpSocket(Fd(fd.value()));
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::from_errno("socket");
  const auto& raw = peer.raw();
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&raw),
                           sizeof(raw));
  if (rc == 0) return TcpSocket(std::move(fd));
  // EINTR on a non-blocking connect means the attempt continues
  // asynchronously (POSIX) — same handling as EINPROGRESS, not a failure.
  if (errno == EINPROGRESS || errno == EINTR) {
    TcpSocket sock(std::move(fd));
    // Caller must wait for writability; signal with kWouldBlock... but we
    // still need to hand the socket back.  Convention: return the socket;
    // callers treat a valid socket whose connect may be pending uniformly
    // and call finish_connect() on writability.
    return sock;
  }
  return Status::from_errno("connect");
}

Status TcpSocket::finish_connect() const {
  if (is_sim_fd(fd_.get())) return Status::ok();  // sim connects are instant
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Status::from_errno("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    return Status::from_errno("connect");
  }
  return Status::ok();
}

Result<size_t> TcpSocket::read(ByteBuffer& buf, size_t max_bytes) {
  uint8_t* dst = buf.prepare(max_bytes);
  ssize_t n;
  do {
    n = sys_read(fd_.get(), dst, max_bytes);
    // A signal interrupting the read is not an error and not would-block:
    // retry immediately (there may be bytes waiting behind the EINTR).
  } while (n < 0 && errno == EINTR);
  if (n > 0) {
    buf.commit(static_cast<size_t>(n));
    return static_cast<size_t>(n);
  }
  buf.commit(0);
  if (n == 0) return Status::closed();
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == ECONNRESET) return Status::closed();
  return Status::from_errno("read");
}

Result<size_t> TcpSocket::write(ByteBuffer& buf) {
  size_t total = 0;
  while (buf.readable() > 0) {
    const ssize_t n = sys_send(fd_.get(), buf.read_ptr(), buf.readable());
    if (n > 0) {
      buf.consume(static_cast<size_t>(n));
      total += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;  // interrupted, nothing sent: retry
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (total > 0) return total;
      return Status::would_block();
    }
    if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
    return Status::from_errno("send");
  }
  return total;
}

Result<size_t> TcpSocket::write(std::string_view data) {
  ssize_t n;
  do {
    n = sys_send(fd_.get(), data.data(), data.size());
  } while (n < 0 && errno == EINTR);
  if (n >= 0) return static_cast<size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
  return Status::from_errno("send");
}

Result<size_t> TcpSocket::writev(const struct iovec* iov, int iovcnt) {
  ssize_t n;
  do {
    n = sys_writev(fd_.get(), iov, iovcnt);
  } while (n < 0 && errno == EINTR);
  if (n > 0) return static_cast<size_t>(n);
  if (n == 0) return Status::would_block();  // zero-length gather
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
  return Status::from_errno("sendmsg");
}

Result<size_t> TcpSocket::sendfile_from(int in_fd, uint64_t offset,
                                        size_t count) {
  ssize_t n;
  do {
    n = sys_sendfile(fd_.get(), in_fd, offset, count);
  } while (n < 0 && errno == EINTR);
  if (n > 0) return static_cast<size_t>(n);
  // 0 from sendfile means the file ended short of `count` (truncated since
  // open); would-block keeps the caller's drain loop from spinning, and the
  // queue length check upstream bounds the retry.
  if (n == 0) return Status::io_error("sendfile: unexpected EOF");
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  if (errno == EPIPE || errno == ECONNRESET) return Status::closed();
  return Status::from_errno("sendfile");
}

Status TcpSocket::set_nodelay(bool on) {
  if (is_sim_fd(fd_.get())) return Status::ok();
  const int flag = on ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) <
      0) {
    return Status::from_errno("setsockopt(TCP_NODELAY)");
  }
  return Status::ok();
}

void TcpSocket::shutdown_write() {
  if (is_sim_fd(fd_.get())) {
    if (auto* sim = sim_backend()) sim->sim_shutdown_write(fd_.get());
    return;
  }
  ::shutdown(fd_.get(), SHUT_WR);
}

Result<InetAddress> TcpSocket::local_address() const {
  if (is_sim_fd(fd_.get())) {
    return sim_backend()->sim_local_address(fd_.get());
  }
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getsockname");
  }
  return InetAddress(addr);
}

Result<InetAddress> TcpSocket::peer_address() const {
  if (is_sim_fd(fd_.get())) {
    return sim_backend()->sim_peer_address(fd_.get());
  }
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getpeername");
  }
  return InetAddress(addr);
}

Result<TcpListener> TcpListener::listen(const InetAddress& addr, int backlog,
                                        bool reuseport) {
  if (auto* sim = sim_backend()) {
    auto fd = sim->sim_listen(addr, backlog, reuseport);
    if (!fd.is_ok()) return fd.status();
    return TcpListener(Fd(fd.value()));
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::from_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      return Status::from_errno("setsockopt(SO_REUSEPORT)");
    }
  }
  const auto& raw = addr.raw();
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&raw), sizeof(raw)) <
      0) {
    return Status::from_errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Status::from_errno("listen");
  return TcpListener(std::move(fd));
}

Result<TcpSocket> TcpListener::accept() {
  const int client = sys_accept(fd_.get());
  if (client >= 0) return TcpSocket(Fd(client));
  if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::would_block();
  // EINTR is retried inside sys_accept; ECONNABORTED means the peer gave up
  // while queued — nothing to do, keep draining.
  if (errno == ECONNABORTED) return Status::would_block();
  // Descriptor exhaustion is recoverable (the Acceptor sheds the pending
  // connection via its reserve descriptor); mark it so callers can tell it
  // apart from fatal listener errors.
  if (errno == EMFILE || errno == ENFILE) {
    return Status::resource_exhausted("accept: out of file descriptors");
  }
  return Status::from_errno("accept");
}

Result<InetAddress> TcpListener::local_address() const {
  if (is_sim_fd(fd_.get())) {
    return sim_backend()->sim_local_address(fd_.get());
  }
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::from_errno("getsockname");
  }
  return InetAddress(addr);
}

}  // namespace cops::net
