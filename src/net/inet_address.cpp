#include "net/inet_address.hpp"

#include <arpa/inet.h>

#include <cstring>

namespace cops::net {

Result<InetAddress> InetAddress::parse(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string h = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("bad IPv4 address: " + host);
  }
  return InetAddress(addr);
}

InetAddress InetAddress::loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return InetAddress(addr);
}

InetAddress InetAddress::any(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  return InetAddress(addr);
}

uint16_t InetAddress::port() const { return ntohs(addr_.sin_port); }

std::string InetAddress::host() const {
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &addr_.sin_addr, buf, sizeof(buf));
  return buf;
}

std::string InetAddress::to_string() const {
  return host() + ":" + std::to_string(port());
}

}  // namespace cops::net
