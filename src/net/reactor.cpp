#include "net/reactor.hpp"

#include "common/logging.hpp"

namespace cops::net {

Reactor::Reactor(PollBackend backend) {
  auto base = std::make_unique<SocketEventSource>(backend);
  SocketEventSource& base_ref = *base;
  poll_backend_ = base_ref.poller().backend();
  auto with_timers = std::make_unique<TimerEventSource>(std::move(base));
  timers_ = with_timers.get();
  auto with_user = std::make_unique<UserEventSource>(std::move(with_timers),
                                                     base_ref);
  user_events_ = with_user.get();
  source_ = std::move(with_user);
}

Reactor::~Reactor() {
  stop();
  join();
}

size_t Reactor::run_once(int timeout_ms) {
  ready_.clear();
  const int timeout = source_->preferred_timeout_ms(timeout_ms);
  auto status = source_->poll(ready_, timeout);
  if (!status.is_ok()) {
    COPS_ERROR("reactor poll failed: " << status.to_string());
    return 0;
  }
  for (auto& callback : ready_) {
    callback();
  }
  events_dispatched_.fetch_add(ready_.size(), std::memory_order_relaxed);
  return ready_.size();
}

void Reactor::run() {
  loop_thread_id_.store(std::this_thread::get_id());
  running_.store(true);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    run_once(500);
  }
  running_.store(false);
}

void Reactor::stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Wake the poll if it is blocked.
  user_events_->post([] {});
}

void Reactor::start_thread(const std::string& name) {
  thread_ = std::thread([this] { run(); });
#ifdef __linux__
  pthread_setname_np(thread_.native_handle(),
                     name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

void Reactor::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace cops::net
