// RAII file descriptors and non-blocking TCP sockets.
//
// The N-Server requires non-blocking socket I/O (the paper uses Java NIO);
// here that is epoll + O_NONBLOCK.  All I/O methods translate EAGAIN into
// StatusCode::kWouldBlock so the reactor can re-arm interest.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <utility>

#include "common/byte_buffer.hpp"
#include "common/status.hpp"
#include "net/inet_address.hpp"

namespace cops::net {

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

Status set_nonblocking(int fd);

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(Fd fd) : fd_(std::move(fd)) {}

  // Creates a non-blocking socket and starts a connect; kWouldBlock means
  // in progress (wait for writability, then check finish_connect()).
  static Result<TcpSocket> connect(const InetAddress& peer);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool valid() const { return fd_.valid(); }

  // Checks SO_ERROR after a non-blocking connect completes.
  [[nodiscard]] Status finish_connect() const;

  // Reads available bytes into `buf`; the value is the byte count.
  // kWouldBlock when nothing is available, kClosed on orderly EOF.
  Result<size_t> read(ByteBuffer& buf, size_t max_bytes = 64 * 1024);
  // Writes from `buf`, consuming what was sent; kWouldBlock if the socket
  // buffer is full (0 or more bytes may still have been consumed — the
  // returned count says how many).
  Result<size_t> write(ByteBuffer& buf);
  Result<size_t> write(std::string_view data);
  // Scatter-gather write (one syscall for header + body segments).  Sends
  // what fits and returns the byte count; kWouldBlock when nothing could be
  // sent.  The caller consumes the count from its segment queue.
  Result<size_t> writev(const struct iovec* iov, int iovcnt);
  // Zero-copy file transmit: sendfile(2) from `in_fd` at `offset`.  Same
  // partial-send/kWouldBlock contract as writev.
  Result<size_t> sendfile_from(int in_fd, uint64_t offset, size_t count);

  Status set_nodelay(bool on);
  void shutdown_write();
  void close() { fd_.reset(); }

  [[nodiscard]] Result<InetAddress> local_address() const;
  [[nodiscard]] Result<InetAddress> peer_address() const;

 private:
  Fd fd_;
};

class TcpListener {
 public:
  TcpListener() = default;

  // Binds (with SO_REUSEADDR) and listens.  A small backlog reproduces
  // Apache-style SYN drops under overload (see DESIGN.md, Fig. 4); the
  // default is sized for accept bursts, not for that experiment.  With
  // `reuseport` set, SO_REUSEPORT is applied before bind so several
  // listeners (one per shard) can share the port and let the kernel
  // spread incoming connections across them.
  static Result<TcpListener> listen(const InetAddress& addr, int backlog = 512,
                                    bool reuseport = false);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool valid() const { return fd_.valid(); }

  // Accepts one connection (non-blocking); the socket is already O_NONBLOCK.
  Result<TcpSocket> accept();

  // The actual bound address (resolves port 0 to the kernel-chosen port).
  [[nodiscard]] Result<InetAddress> local_address() const;

  void close() { fd_.reset(); }

 private:
  explicit TcpListener(Fd fd) : fd_(std::move(fd)) {}
  Fd fd_;
};

}  // namespace cops::net
