// Reactor — the Event Dispatcher of the N-Server.
//
// Repeatedly asks the (decorator-composed) Event Source for ready events and
// dispatches them.  When the N-Server option "separate thread pool for event
// handling" (O2) is off, the dispatch happens inline on this thread (classic
// single-threaded Reactor / SPED); when it is on, the Server wires handlers
// that enqueue work into an EventProcessor instead (see src/nserver).
//
// Option O1 ("# of dispatcher threads: 1 or 2N") is realized by running
// several Reactor instances, each with its own Event Source, and sharding
// accepted connections across them (see nserver::Server).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>

#include "net/event_source.hpp"

namespace cops::net {

class Reactor {
 public:
  // `backend` selects the kernel demultiplexer (option S7, io_backend);
  // kUring silently degrades to epoll when the capability probe fails.
  explicit Reactor(PollBackend backend = PollBackend::kEpoll);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // ---- Event Handler registration (reactor thread only) ----------------
  Status register_handler(int fd, EventHandler* handler, uint32_t interest) {
    return source_->register_handler(fd, handler, interest);
  }
  Status update_interest(int fd, uint32_t interest) {
    return source_->update_interest(fd, interest);
  }
  Status deregister(int fd) { return source_->deregister(fd); }

  // ---- timers (reactor thread only) -------------------------------------
  TimerQueue::TimerId run_after(Duration delay, std::function<void()> fn) {
    return timers_->schedule_after(delay, std::move(fn));
  }
  TimerQueue::TimerId run_at(TimePoint deadline, std::function<void()> fn) {
    return timers_->schedule_at(deadline, std::move(fn));
  }
  void cancel_timer(TimerQueue::TimerId id) { timers_->cancel(id); }

  // ---- cross-thread -----------------------------------------------------
  // Queues `fn` to run on the reactor thread (thread-safe).
  void post(std::function<void()> fn) { user_events_->post(std::move(fn)); }

  // Runs the dispatch loop on the calling thread until stop().
  void run();
  // Runs one iteration (poll + dispatch); `timeout_ms` caps the poll wait.
  // Returns the number of events dispatched.
  size_t run_once(int timeout_ms);
  // Thread-safe; wakes the loop and makes run() return.
  void stop();

  // Convenience: run() on a background thread.
  void start_thread(const std::string& name = "reactor");
  void join();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] bool in_reactor_thread() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }
  [[nodiscard]] uint64_t events_dispatched() const {
    return events_dispatched_.load();
  }
  // The backend actually driving the loop (kEpoll after a failed probe).
  [[nodiscard]] PollBackend poll_backend() const { return poll_backend_; }

 private:
  // Decorator chain: UserEventSource( TimerEventSource( SocketEventSource )).
  std::unique_ptr<EventSource> source_;
  TimerEventSource* timers_ = nullptr;     // borrowed from the chain
  UserEventSource* user_events_ = nullptr; // borrowed from the chain

  PollBackend poll_backend_ = PollBackend::kEpoll;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<uint64_t> events_dispatched_{0};
  std::thread thread_;
  std::vector<ReadyCallback> ready_;
};

}  // namespace cops::net
