#include "net/transport.hpp"

namespace cops::net {

namespace detail {
std::atomic<SimBackend*> g_sim_backend{nullptr};
}

void install_sim_backend(SimBackend* backend) {
  detail::g_sim_backend.store(backend, std::memory_order_release);
}

void uninstall_sim_backend() {
  detail::g_sim_backend.store(nullptr, std::memory_order_release);
}

}  // namespace cops::net
