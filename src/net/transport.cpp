#include "net/transport.hpp"

#include <unistd.h>

#include <cerrno>

namespace cops::net {

SysResult SimBackend::sim_writev(int fd, const struct iovec* iov, int iovcnt) {
  for (int i = 0; i < iovcnt; ++i) {
    if (iov[i].iov_len > 0) {
      return sim_write(fd, iov[i].iov_base, iov[i].iov_len);
    }
  }
  return {0, 0};
}

SysResult SimBackend::sim_sendfile(int out_fd, int in_fd, uint64_t offset,
                                   size_t count) {
  char buf[64 * 1024];
  const size_t want = count < sizeof(buf) ? count : sizeof(buf);
  const ssize_t got =
      ::pread(in_fd, buf, want, static_cast<off_t>(offset));
  if (got < 0) return {-1, errno};
  if (got == 0) return {0, 0};
  return sim_write(out_fd, buf, static_cast<size_t>(got));
}

namespace detail {
std::atomic<SimBackend*> g_sim_backend{nullptr};
}

void install_sim_backend(SimBackend* backend) {
  detail::g_sim_backend.store(backend, std::memory_order_release);
}

void uninstall_sim_backend() {
  detail::g_sim_backend.store(nullptr, std::memory_order_release);
}

}  // namespace cops::net
