// io_uring backend — the real kernel Proactor behind `io_backend = io_uring`.
//
// The container ships no liburing, so this is a minimal raw-syscall shim:
// io_uring_setup/enter/register plus the two mmap'd rings, wrapped in
// UringRing.  On top of it sit three independent pieces:
//
//   UringPoller          completion-driven replacement for the epoll Poller.
//                        Socket readiness is emulated with *oneshot*
//                        IORING_OP_POLL_ADD re-armed once per reactor tick —
//                        byte-for-byte level-triggered semantics, which the
//                        epoll-vs-uring differential suite depends on
//                        (Connection reads once per event and relies on
//                        re-delivery).  Listeners get multishot
//                        IORING_OP_ACCEPT instead: accepted descriptors are
//                        staged and drained through sys_accept, which is
//                        drain-to-EAGAIN by construction.
//   sync-over-ring ops   uring_recv/uring_send/uring_sendmsg route the
//                        socket shims through a small thread-local ring
//                        (processor threads do the actual I/O when the
//                        separate-pool option is on).  MSG_DONTWAIT keeps
//                        the kernel-ABI errno contract identical to the
//                        plain syscalls, so every retry path above is
//                        untouched.
//   RegisteredBufferPool BufferPool-backed slabs registered with a ring
//                        (IORING_REGISTER_BUFFERS) for READ_FIXED file
//                        loads; acquire/release recycles slots allocation-
//                        free.
//
// Everything here sits *below* the simulation seam: sim fds never reach a
// ring, so every simnet chaos plan applies identically to both backends.
// When the build disables COPS_WITH_LIBURING (or the runtime probe fails —
// old kernel, seccomp, RLIMIT_MEMLOCK), uring_available() is false and all
// users fall back to epoll.
#pragma once

#include <sys/types.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "net/transport.hpp"

#if defined(COPS_WITH_LIBURING) && defined(__linux__)
#define COPS_URING_ENABLED 1
#else
#define COPS_URING_ENABLED 0
#endif

#if COPS_URING_ENABLED
#include <linux/io_uring.h>
#endif

namespace cops {
class BufferPool;
}

namespace cops::net {

// True when the backend was compiled in (COPS_WITH_LIBURING build option).
[[nodiscard]] bool uring_compiled();

// Runtime capability probe: io_uring_setup succeeds and the features the
// backend needs (EXT_ARG timed waits) are present.  Cached after the first
// call; false on uring-less kernels so callers degrade to epoll (CI-safe).
[[nodiscard]] bool uring_available();

// Test hook: force uring_available() to report false (fallback testing).
void test_force_uring_unavailable(bool forced);

// ---- sync-over-ring socket ops -------------------------------------------
// A process-wide switch flipped by the Server while an io_uring-backed
// instance is running; the socket shims consult it after the sim-fd check.
void enable_uring_ops();
void disable_uring_ops();
[[nodiscard]] bool uring_ops_enabled();

// Syscall-convention results (-1 + errno).  Fall back to the plain syscall
// when the calling thread cannot obtain a ring.
ssize_t uring_recv(int fd, void* buf, size_t len);
ssize_t uring_send(int fd, const void* buf, size_t len);
ssize_t uring_sendmsg(int fd, const struct iovec* iov, int iovcnt);

// Pops one staged multishot-accept result for `listen_fd`.  Returns false
// when the listener has no uring accept stream (caller falls through to
// accept4).  A staged result follows accept4 semantics: r.n >= 0 is a
// connected descriptor (already SOCK_NONBLOCK | SOCK_CLOEXEC), r.n < 0
// exposes r.err (e.g. EMFILE from the kernel-side accept).
bool uring_pop_staged_accept(int listen_fd, SysResult& r);

#if COPS_URING_ENABLED

// Minimal liburing replacement: one io_uring instance (setup + mmap'd SQ/CQ
// rings) with SQE queuing, batched submission and CQE reaping.  Not thread-
// safe; each owner confines a ring to one thread.
class UringRing {
 public:
  UringRing() = default;
  ~UringRing();
  UringRing(const UringRing&) = delete;
  UringRing& operator=(const UringRing&) = delete;

  Status init(unsigned entries);
  [[nodiscard]] bool valid() const { return ring_fd_ >= 0; }
  [[nodiscard]] int ring_fd() const { return ring_fd_; }

  // Next free submission slot, zeroed; nullptr when the SQ is full (submit
  // first, then retry).
  io_uring_sqe* get_sqe();
  // Submits queued SQEs without waiting.  Returns submitted count or -errno.
  int submit();
  // Submits queued SQEs and waits for >= wait_nr completions, up to
  // timeout_ms (-1 = forever, 0 = poll).  EINTR returns 0 — callers
  // re-check their completion queue and retry.
  int submit_and_wait(unsigned wait_nr, int timeout_ms);
  // Pops one completion if available.
  bool pop_cqe(io_uring_cqe& out);

  Status register_buffers(const struct iovec* iov, unsigned count);
  void unregister_buffers();

 private:
  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned to_submit_ = 0;
  // SQ ring mapping.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  // CQ ring mapping (same mapping as SQ with IORING_FEAT_SINGLE_MMAP).
  void* cq_ring_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

#endif  // COPS_URING_ENABLED

// Completion-driven Poller backend.  Mirrors the epoll Poller contract
// exactly (add/modify/remove/wait with kReadable/kWritable/kErrored); the
// Poller facade forwards to it when constructed with PollBackend::kUring.
class UringPoller {
 public:
  // nullptr when the backend is compiled out or the probe fails.
  static std::unique_ptr<UringPoller> create();
  ~UringPoller();
  UringPoller(const UringPoller&) = delete;
  UringPoller& operator=(const UringPoller&) = delete;

  Status add(int fd, uint32_t interest);
  Status modify(int fd, uint32_t interest);
  Status remove(int fd);
  Result<size_t> wait(std::vector<ReadyFd>& out, int timeout_ms);

  // Introspection for tests.
  [[nodiscard]] size_t accept_streams() const;
  [[nodiscard]] uint64_t cqes_reaped() const;

  struct Impl;  // public: shared with the file-scope accept-stage registry

 private:
  UringPoller();
  std::unique_ptr<Impl> impl_;
};

// BufferPool-backed slabs registered with a ring for READ_FIXED.  The slots
// are acquired from the shared BufferPool once, pinned for the lifetime of
// this object, and recycled through a preallocated freelist — acquire and
// release never touch the heap.
class RegisteredBufferPool {
 public:
  // Pulls `count` blocks out of `source` (each BufferPool::block_bytes()
  // long).  Blocks go back to the source pool on destruction.
  RegisteredBufferPool(BufferPool& source, size_t count);
  ~RegisteredBufferPool();
  RegisteredBufferPool(const RegisteredBufferPool&) = delete;
  RegisteredBufferPool& operator=(const RegisteredBufferPool&) = delete;

#if COPS_URING_ENABLED
  // Registers every slab with `ring` (IORING_REGISTER_BUFFERS).  The slot
  // index returned by acquire() doubles as the sqe buf_index.
  Status register_with(UringRing& ring);
#endif

  // Slot index, or -1 when all slabs are in flight.  Allocation-free.
  [[nodiscard]] int acquire();
  void release(int slot);

  [[nodiscard]] uint8_t* data(int slot);
  [[nodiscard]] size_t slab_bytes() const { return slab_bytes_; }
  [[nodiscard]] size_t slots() const { return slabs_.size(); }
  [[nodiscard]] size_t available() const { return free_.size(); }
  // How many acquisitions were served by a recycled slot (every one after
  // the first `slots()` distinct acquisitions).
  [[nodiscard]] uint64_t reuses() const { return reuses_; }

 private:
  BufferPool& source_;
  size_t slab_bytes_ = 0;
  std::vector<std::vector<uint8_t>> slabs_;
  std::vector<int> free_;
  std::vector<char> handed_out_once_;
  uint64_t reuses_ = 0;
};

}  // namespace cops::net
