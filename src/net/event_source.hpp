// Event Sources — the Decorator-composed component the N-Server adds to the
// Reactor (paper, Section IV): "an Event Source component that complies with
// the Decorator pattern ... is responsible for registering and deregistering
// Event Handlers and polling ready events."
//
// The base SocketEventSource demultiplexes socket readiness via epoll.
// Decorators stack additional kinds of events on top:
//   * TimerEventSource    — deadline callbacks (idle reaping, backoff, ...)
//   * UserEventSource     — cross-thread posted callbacks (completion events
//                           from Event Processors re-entering the reactor)
// New event kinds are added by writing another decorator — the extension
// mechanism the paper calls out for unanticipated event sources.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "net/event_handler.hpp"
#include "net/poller.hpp"
#include "net/timer_queue.hpp"

namespace cops::net {

// A unit of work made ready by an event source.
using ReadyCallback = std::function<void()>;

class EventSource {
 public:
  virtual ~EventSource() = default;

  // ---- Event Handler registry (socket events) -------------------------
  virtual Status register_handler(int fd, EventHandler* handler,
                                  uint32_t interest) = 0;
  virtual Status update_interest(int fd, uint32_t interest) = 0;
  virtual Status deregister(int fd) = 0;

  // Upper bound this source wants on the poll sleep, given `proposed` ms.
  [[nodiscard]] virtual int preferred_timeout_ms(int proposed) const = 0;

  // Polls for ready events, appending one callback per ready event to
  // `out`.  `timeout_ms` bounds the wait (decorators pass it inward).
  virtual Status poll(std::vector<ReadyCallback>& out, int timeout_ms) = 0;
};

// Base source: socket readiness via epoll (or the io_uring completion loop
// when constructed with PollBackend::kUring).
class SocketEventSource : public EventSource {
 public:
  explicit SocketEventSource(PollBackend backend = PollBackend::kEpoll)
      : poller_(backend) {}

  Status register_handler(int fd, EventHandler* handler,
                          uint32_t interest) override;
  Status update_interest(int fd, uint32_t interest) override;
  Status deregister(int fd) override;
  [[nodiscard]] int preferred_timeout_ms(int proposed) const override {
    return proposed;
  }
  Status poll(std::vector<ReadyCallback>& out, int timeout_ms) override;

  // Used by UserEventSource to install its wakeup descriptor.
  Poller& poller() { return poller_; }

 private:
  // Registrations are generation-stamped: a ready callback dispatched later
  // in the same batch re-validates its registration, so a handler destroyed
  // (or an fd recycled) by an earlier callback is skipped, not dereferenced.
  struct Registration {
    EventHandler* handler = nullptr;
    uint64_t generation = 0;
  };

  Poller poller_;
  std::unordered_map<int, Registration> handlers_;
  std::vector<ReadyFd> scratch_;
  uint64_t next_generation_ = 1;
};

// Decorator base: forwards everything to the wrapped source.
class EventSourceDecorator : public EventSource {
 public:
  explicit EventSourceDecorator(std::unique_ptr<EventSource> inner)
      : inner_(std::move(inner)) {}

  Status register_handler(int fd, EventHandler* handler,
                          uint32_t interest) override {
    return inner_->register_handler(fd, handler, interest);
  }
  Status update_interest(int fd, uint32_t interest) override {
    return inner_->update_interest(fd, interest);
  }
  Status deregister(int fd) override { return inner_->deregister(fd); }
  [[nodiscard]] int preferred_timeout_ms(int proposed) const override {
    return inner_->preferred_timeout_ms(proposed);
  }
  Status poll(std::vector<ReadyCallback>& out, int timeout_ms) override {
    return inner_->poll(out, timeout_ms);
  }

 protected:
  EventSource& inner() { return *inner_; }
  [[nodiscard]] const EventSource& inner() const { return *inner_; }

 private:
  std::unique_ptr<EventSource> inner_;
};

// Adds deadline timers.  Single-threaded: only the reactor thread may
// schedule/cancel (cross-thread scheduling goes through UserEventSource).
class TimerEventSource : public EventSourceDecorator {
 public:
  using EventSourceDecorator::EventSourceDecorator;

  TimerQueue::TimerId schedule_after(Duration delay, std::function<void()> fn) {
    return timers_.schedule_after(delay, std::move(fn));
  }
  TimerQueue::TimerId schedule_at(TimePoint deadline, std::function<void()> fn) {
    return timers_.schedule_at(deadline, std::move(fn));
  }
  void cancel(TimerQueue::TimerId id) { timers_.cancel(id); }
  [[nodiscard]] size_t pending_timers() const { return timers_.pending(); }

  [[nodiscard]] int preferred_timeout_ms(int proposed) const override;
  Status poll(std::vector<ReadyCallback>& out, int timeout_ms) override;

 private:
  TimerQueue timers_;
};

// Adds a thread-safe queue of posted callbacks, with an eventfd wakeup so a
// post from an Event Processor thread interrupts the blocked poll.
class UserEventSource : public EventSourceDecorator {
 public:
  // `base` must be the underlying SocketEventSource (for wakeup-fd
  // registration); `inner` is the decorated chain to wrap.
  UserEventSource(std::unique_ptr<EventSource> inner, SocketEventSource& base);

  // Thread-safe: queues `fn` for execution on the reactor thread.
  void post(std::function<void()> fn);

  [[nodiscard]] int preferred_timeout_ms(int proposed) const override;
  Status poll(std::vector<ReadyCallback>& out, int timeout_ms) override;

  [[nodiscard]] size_t pending_posts() const { return queue_.size(); }

 private:
  void drain_wakeup();

  MpmcQueue<std::function<void()>> queue_;
  Fd wakeup_fd_;
  // Identity of the reactor's poller, as registered with the transport seam.
  // post() forwards it to SimBackend::sim_notify so a cross-thread post also
  // wakes the reactor under simulation, where the eventfd write is inert.
  Poller* base_poller_;
};

}  // namespace cops::net
