// Token-bucket rate limiter.
//
// Used by the experiment harness to emulate the paper's bottlenecked network
// (the Gigabit switch was effectively capped slightly above 100 Mbit/s), so
// the saturation plateau in Fig. 3 appears on loopback too.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/clock.hpp"

namespace cops {

class RateLimiter {
 public:
  // rate_per_sec: tokens added per second; burst: bucket capacity.
  RateLimiter(double rate_per_sec, double burst);

  // Tries to take `tokens`; returns true on success.
  bool try_acquire(double tokens);
  // Returns the delay until `tokens` would be available (zero if now).
  [[nodiscard]] Duration time_until_available(double tokens) const;
  // Takes `tokens`, allowing the balance to go negative (callers then delay
  // by time_until_available(0) — classic "debt" token bucket, which keeps
  // long-run throughput exact even for oversized requests).
  void acquire_debt(double tokens);

  [[nodiscard]] double rate() const { return rate_; }

 private:
  void refill_locked(TimePoint at) const;

  double rate_;
  double burst_;
  mutable double tokens_;
  mutable TimePoint last_;
  mutable std::mutex mutex_;
};

}  // namespace cops
