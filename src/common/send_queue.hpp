// Segment-based send queue — the Send Reply step's output representation.
//
// The single-string reply path copied every response body twice: once in
// the Encode step (serialize() appends the cached file bytes) and once more
// into the connection's out ByteBuffer.  A SendQueue instead holds a short
// run of *segments* — small owned byte blocks (status line + headers) and
// refcounted slices of shared storage (a cache entry's bytes, pinned by a
// keepalive shared_ptr) — and the Send Reply step drains them with one
// scatter-gather writev() per round.  A segment may also name an open file
// descriptor, which the connection drains with sendfile() (large uncached
// files never transit user space at all).
//
// This header is protocol- and framework-agnostic: the keepalive is a
// type-erased shared_ptr<const void>, so common/ does not depend on the
// nserver cache types that typically own the pinned bytes.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace cops {

struct SendSegment {
  // Exactly one of three shapes:
  //   owned bytes   — `owned` holds them (keepalive empty, file_fd < 0);
  //   shared bytes  — `ext_data`/`len` point into storage pinned by
  //                   `keepalive` for the segment's lifetime;
  //   file slice    — `file_fd` + `file_start`/`len`, drained via
  //                   sendfile(); `keepalive` pins whatever owns the fd.
  std::string owned;
  std::shared_ptr<const void> keepalive;
  const char* ext_data = nullptr;
  size_t offset = 0;  // bytes of this segment already sent
  size_t len = 0;     // total segment length
  int file_fd = -1;
  uint64_t file_start = 0;

  [[nodiscard]] bool is_file() const { return file_fd >= 0; }
  // Remaining in-memory bytes (memory segments only).  Indexing through
  // `owned` by offset — never caching a pointer into it — keeps the segment
  // safely movable despite std::string's SSO.
  [[nodiscard]] const char* data() const {
    return (ext_data != nullptr ? ext_data : owned.data()) + offset;
  }
  [[nodiscard]] size_t remaining() const { return len - offset; }
};

// One encoded reply: the Encode step's product, moved intact into the
// connection's SendQueue.  `copied_bytes` counts bytes that were
// materialised into owned storage on the way here (headers always; bodies
// only on the copy path) — the profiler's bytes-copied-per-reply metric.
struct EncodedReply {
  std::vector<SendSegment> segments;
  size_t copied_bytes = 0;
  // True once add_last_chunk() sealed a chunk-framed body — lets the
  // connection count chunked replies without re-inspecting segments.
  bool chunked_framed = false;

  void add_owned(std::string bytes);
  void add_shared(std::shared_ptr<const void> keepalive, const char* data,
                  size_t len);
  void add_file(std::shared_ptr<const void> keepalive, int fd, uint64_t offset,
                size_t len);

  // --- chunked transfer-coding framing (RFC 7230 §4.1) -------------------
  // Frames `len` body bytes as chunks of at most `chunk_bytes` each
  // (0 = one single chunk): per chunk an owned hex size line, the zero-copy
  // shared/file slice, and an owned CRLF — only the ~10-byte framing is
  // copied, the body still rides refcounted storage or sendfile through the
  // same writev gather loop.  Call add_last_chunk() once after the final
  // slice to emit the "0\r\n\r\n" terminator and seal the reply.
  void add_shared_chunked(std::shared_ptr<const void> keepalive,
                          const char* data, size_t len,
                          size_t chunk_bytes = 0);
  void add_file_chunked(std::shared_ptr<const void> keepalive, int fd,
                        uint64_t offset, size_t len, size_t chunk_bytes = 0);
  void add_last_chunk();

  [[nodiscard]] size_t size() const;
  [[nodiscard]] bool empty() const { return segments.empty(); }

  static EncodedReply from_string(std::string bytes);
};

// Flow-control hysteresis over a SendQueue's depth (or any byte count).
// A relay pumping bytes between two sockets stops reading the producing
// side once the consuming side's queue crosses `high`, and resumes only
// after it drains below `low` — the gap prevents interest-toggle flapping
// at the boundary.  update() returns true when the paused state changed
// (the caller re-arms read interest / counts a backpressure event).
class Watermark {
 public:
  Watermark(size_t low, size_t high) : low_(low), high_(high) {}

  bool update(size_t queued) {
    const bool was_paused = paused_;
    if (paused_) {
      if (queued <= low_) paused_ = false;
    } else if (queued >= high_) {
      paused_ = true;
    }
    return paused_ != was_paused;
  }

  [[nodiscard]] bool paused() const { return paused_; }

 private:
  size_t low_;
  size_t high_;
  bool paused_ = false;
};

class SendQueue {
 public:
  // Empty segments are dropped at the door so empty()/readable() stay the
  // drain conditions.
  void push(SendSegment segment);
  void push(EncodedReply&& reply);
  void push_owned(std::string bytes);

  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] size_t readable() const { return total_; }

  // Gathers the leading run of in-memory segments into `iov` (up to
  // `max_iov` entries); returns the count.  0 means the front segment is a
  // file slice — drain it with the sendfile accessors instead.
  int fill_iovec(struct iovec* iov, int max_iov) const;
  // Consumes `n` bytes across the leading memory segments (a writev result).
  void consume(size_t n);

  [[nodiscard]] bool front_is_file() const {
    return !segments_.empty() && segments_.front().is_file();
  }
  [[nodiscard]] int front_file_fd() const { return segments_.front().file_fd; }
  [[nodiscard]] uint64_t front_file_offset() const {
    const auto& front = segments_.front();
    return front.file_start + front.offset;
  }
  [[nodiscard]] size_t front_file_remaining() const {
    return segments_.front().remaining();
  }
  // Consumes `n` bytes of the front file segment (a sendfile result).
  void consume_file(size_t n);

  void clear();

 private:
  std::deque<SendSegment> segments_;
  size_t total_ = 0;
};

}  // namespace cops
