#include "common/buffer_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace cops {

// ---- SlabPool ---------------------------------------------------------------

SlabPool::SlabPool(size_t block_bytes, size_t blocks_per_chunk)
    : block_bytes_(std::max<size_t>(block_bytes, alignof(std::max_align_t))),
      blocks_per_chunk_(std::max<size_t>(blocks_per_chunk, 1)) {
  // The freelist itself must not allocate on the steady-state push/pop path.
  free_list_.reserve(blocks_per_chunk_ * 4);
}

SlabPool::~SlabPool() {
  for (char* chunk : chunks_) ::operator delete(chunk);
}

void SlabPool::grow_locked() {
  char* chunk = static_cast<char*>(
      ::operator new(block_bytes_ * blocks_per_chunk_));
  chunks_.push_back(chunk);
  heap_bytes_.fetch_add(block_bytes_ * blocks_per_chunk_,
                        std::memory_order_relaxed);
  if (free_list_.capacity() < chunks_.size() * blocks_per_chunk_) {
    free_list_.reserve(chunks_.size() * blocks_per_chunk_ * 2);
  }
  for (size_t i = 0; i < blocks_per_chunk_; ++i) {
    free_list_.push_back(chunk + i * block_bytes_);
  }
}

void* SlabPool::allocate(size_t bytes) {
  if (bytes > block_bytes_) {
    // Oversize: straight heap allocation, never pooled.
    misses_.fetch_add(1, std::memory_order_relaxed);
    heap_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return ::operator new(bytes);
  }
  std::lock_guard lock(mutex_);
  if (free_list_.empty()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    grow_locked();
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void* block = free_list_.back();
  free_list_.pop_back();
  return block;
}

void SlabPool::deallocate(void* ptr, size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes > block_bytes_) {
    ::operator delete(ptr);
    return;
  }
  std::lock_guard lock(mutex_);
  free_list_.push_back(ptr);
}

size_t SlabPool::free_blocks() const {
  std::lock_guard lock(mutex_);
  return free_list_.size();
}

// ---- BufferPool -------------------------------------------------------------

BufferPool::BufferPool(size_t block_bytes, size_t max_free)
    : block_bytes_(std::max<size_t>(block_bytes, 1)), max_free_(max_free) {
  free_list_.reserve(max_free_);
}

std::vector<uint8_t> BufferPool::acquire() {
  {
    std::lock_guard lock(mutex_);
    if (!free_list_.empty()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> storage = std::move(free_list_.back());
      free_list_.pop_back();
      return storage;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  heap_bytes_.fetch_add(block_bytes_, std::memory_order_relaxed);
  std::vector<uint8_t> storage;
  storage.reserve(block_bytes_);
  return storage;
}

void BufferPool::release(std::vector<uint8_t> storage) {
  if (storage.capacity() < block_bytes_) return;  // never handed out by us
  storage.clear();
  std::lock_guard lock(mutex_);
  if (free_list_.size() >= max_free_) return;  // cap the idle footprint
  free_list_.push_back(std::move(storage));
}

size_t BufferPool::free_buffers() const {
  std::lock_guard lock(mutex_);
  return free_list_.size();
}

// ---- Arena ------------------------------------------------------------------

Arena::Arena(size_t chunk_bytes)
    : chunk_bytes_(std::max<size_t>(chunk_bytes, 64)) {}

Arena::~Arena() {
  for (auto& chunk : chunks_) ::operator delete(chunk.data);
}

void* Arena::allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  while (true) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= chunk.size) {
        offset_ = aligned + bytes;
        return chunk.data + aligned;
      }
      // This chunk is full; try the next recycled one.
      ++current_;
      offset_ = 0;
      continue;
    }
    const size_t size = std::max(chunk_bytes_, bytes + align);
    chunks_.push_back({static_cast<char*>(::operator new(size)), size});
    heap_bytes_ += size;
  }
}

void Arena::reset() {
  current_ = 0;
  offset_ = 0;
}

}  // namespace cops
