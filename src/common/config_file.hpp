// key = value configuration parser.
//
// copsgen reads pattern option settings from files in this format (the
// CO₂P₃S GUI's option panel is replaced by a declarative file):
//
//   # COPS-HTTP options
//   dispatcher_threads = 1
//   file_cache = lru
//
// Lines starting with '#' are comments; whitespace around keys/values is
// ignored; later assignments override earlier ones.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace cops {

class ConfigFile {
 public:
  static Result<ConfigFile> parse(std::string_view text);
  static Result<ConfigFile> load(const std::string& path);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const;
  [[nodiscard]] std::optional<long> get_int(const std::string& key) const;
  [[nodiscard]] std::optional<bool> get_bool(const std::string& key) const;

  void set(std::string key, std::string value);
  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace cops
