// Quota-based multi-level priority queue — the event-scheduling structure
// generated when option O8 (event scheduling) is enabled.
//
// Semantics from the paper (Section IV): events of higher priority are
// processed first, but each priority level is given a quota; when a level's
// quota is exhausted, lower-priority events are processed so starvation is
// avoided.  Quotas are replenished once every level has either drained or
// spent its quota (one scheduling round).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace cops {

template <typename T>
class QuotaPriorityQueue {
 public:
  // `quotas[i]` is the number of items level i may dequeue per round;
  // level 0 is the highest priority.  A quota of 0 means "only when all
  // other levels are empty".
  explicit QuotaPriorityQueue(std::vector<size_t> quotas)
      : levels_(quotas.size()), quotas_(std::move(quotas)),
        remaining_(quotas_) {}

  QuotaPriorityQueue(const QuotaPriorityQueue&) = delete;
  QuotaPriorityQueue& operator=(const QuotaPriorityQueue&) = delete;

  [[nodiscard]] size_t num_levels() const { return levels_.size(); }

  // Pushes an item at `priority` (clamped to the last level).
  bool push(T item, size_t priority) {
    {
      std::lock_guard lock(mutex_);
      if (shutdown_) return false;
      if (priority >= levels_.size()) priority = levels_.size() - 1;
      levels_[priority].push_back(std::move(item));
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking pop following the quota discipline; empty optional on shutdown.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return shutdown_ || poppable_locked() > 0; });
    if (size_ == 0) return std::nullopt;
    return pop_locked();
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (poppable_locked() == 0) return std::nullopt;
    return pop_locked();
  }

  // Overload action (adaptive O9, tier 2): levels >= `floor` are paused —
  // pushes are still accepted but pop()/try_pop() will not drain them until
  // the floor is raised again.  floor >= num_levels() (the default) pauses
  // nothing; floor 1 keeps only the highest-priority level running.
  // Shutdown overrides pause so stop() still drains everything.
  void set_paused_floor(size_t floor) {
    {
      std::lock_guard lock(mutex_);
      paused_floor_ = floor;
    }
    // Raising the floor may make parked items poppable again.
    not_empty_.notify_all();
  }

  [[nodiscard]] size_t paused_floor() const {
    std::lock_guard lock(mutex_);
    return paused_floor_;
  }

  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lock(mutex_);
    return size_;
  }
  [[nodiscard]] size_t level_size(size_t level) const {
    std::lock_guard lock(mutex_);
    return level < levels_.size() ? levels_[level].size() : 0;
  }

 private:
  // Levels eligible for dequeue right now: all of them during shutdown
  // (drain), otherwise only those below the paused floor.
  [[nodiscard]] size_t drain_limit_locked() const {
    return shutdown_ ? levels_.size() : std::min(paused_floor_, levels_.size());
  }

  // Items currently allowed to be popped (drives the pop() wait predicate).
  [[nodiscard]] size_t poppable_locked() const {
    const size_t limit = drain_limit_locked();
    size_t n = 0;
    for (size_t i = 0; i < limit; ++i) n += levels_[i].size();
    return n;
  }

  std::optional<T> pop_locked() {
    const size_t limit = drain_limit_locked();
    // Pass 1: highest non-empty level with remaining quota.
    for (size_t i = 0; i < limit; ++i) {
      if (!levels_[i].empty() && remaining_[i] > 0) {
        --remaining_[i];
        return take_from(i);
      }
    }
    // All non-empty levels exhausted their quotas: start a new round.
    remaining_ = quotas_;
    for (size_t i = 0; i < limit; ++i) {
      if (!levels_[i].empty() && remaining_[i] > 0) {
        --remaining_[i];
        return take_from(i);
      }
    }
    // Every non-empty level has quota 0: fall back to strict priority so
    // work still drains.
    for (size_t i = 0; i < limit; ++i) {
      if (!levels_[i].empty()) return take_from(i);
    }
    return std::nullopt;  // everything poppable is paused
  }

  T take_from(size_t level) {
    T item = std::move(levels_[level].front());
    levels_[level].pop_front();
    --size_;
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::vector<std::deque<T>> levels_;
  std::vector<size_t> quotas_;
  std::vector<size_t> remaining_;
  size_t size_ = 0;
  size_t paused_floor_ = static_cast<size_t>(-1);  // nothing paused
  bool shutdown_ = false;
};

}  // namespace cops
