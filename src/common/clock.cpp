#include "common/clock.hpp"

#include <chrono>
#include <ctime>
#include <thread>

namespace cops {

void spend(Duration d) {
  if (d.count() <= 0) return;
  if (simclock::active()) [[unlikely]] {
    simclock::advance_ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
    return;
  }
  std::this_thread::sleep_for(d);
}

int64_t unix_now_seconds() {
  if (simclock::active()) [[unlikely]] {
    // Sun, 06 Nov 1994 08:49:37 GMT — RFC 7231's example IMF-fixdate —
    // plus virtual elapsed time: deterministic, and obviously simulated.
    constexpr int64_t kSimWallEpoch = 784111777;
    return kSimWallEpoch + simclock::now_ns() / 1'000'000'000;
  }
  return static_cast<int64_t>(::time(nullptr));
}

}  // namespace cops

namespace cops::simclock {

std::atomic<bool> g_active{false};
std::atomic<int64_t> g_now_ns{0};

int64_t now_ns() { return g_now_ns.load(std::memory_order_relaxed); }

void install(int64_t start_ns) {
  g_now_ns.store(start_ns, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
}

void uninstall() { g_active.store(false, std::memory_order_release); }

void advance_ns(int64_t delta_ns) {
  g_now_ns.fetch_add(delta_ns, std::memory_order_relaxed);
}

void set_ns(int64_t now_ns) {
  g_now_ns.store(now_ns, std::memory_order_relaxed);
}

}  // namespace cops::simclock
