// Time helpers shared by the reactor, timers, profiler, and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace cops {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

[[nodiscard]] inline TimePoint now() { return SteadyClock::now(); }

[[nodiscard]] inline int64_t to_micros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

[[nodiscard]] inline int64_t to_millis(Duration d) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
}

[[nodiscard]] inline double to_seconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace cops
