// Time helpers shared by the reactor, timers, profiler, and benches.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cops {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

// Simulated-clock seam (src/simnet).  While a simulation is installed,
// cops::now() reads a virtual nanosecond counter that only the simulation
// advances, so timers, idle reaping, and cache revalidation run in virtual
// time with no real sleeps.  The production cost is one relaxed atomic-bool
// load and a never-taken branch per now() call — no virtual dispatch.
namespace simclock {

extern std::atomic<bool> g_active;
extern std::atomic<int64_t> g_now_ns;

[[nodiscard]] inline bool active() {
  return g_active.load(std::memory_order_relaxed);
}
[[nodiscard]] int64_t now_ns();
// Installs the virtual clock at `start_ns`; uninstall() reverts to the
// steady clock.  Test/simulation use only — not thread-safe against
// concurrent install/uninstall (advance while installed is fine).
void install(int64_t start_ns);
void uninstall();
void advance_ns(int64_t delta_ns);
void set_ns(int64_t now_ns);

}  // namespace simclock

// Models `d` of CPU-bound work: under a simulation the virtual clock is
// advanced (the work "costs" virtual time, with no real sleep — so a
// simulated burst builds a measurable virtual queue delay); in production
// the calling thread really sleeps.  Used by the artificial decode/handle
// cost knobs that the overload experiments turn into a bottleneck.
void spend(Duration d);

// Wall-clock counterpart of now(): UNIX seconds for protocol timestamps
// (the HTTP Date header).  While a simulation is installed this derives
// from the virtual clock at a fixed epoch, so replies are bit-identical
// per seed; in production it is ::time(nullptr).
[[nodiscard]] int64_t unix_now_seconds();

[[nodiscard]] inline TimePoint now() {
  if (simclock::active()) [[unlikely]] {
    return TimePoint(std::chrono::duration_cast<Duration>(
        std::chrono::nanoseconds(simclock::g_now_ns.load(
            std::memory_order_relaxed))));
  }
  return SteadyClock::now();
}

[[nodiscard]] inline int64_t to_micros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

[[nodiscard]] inline int64_t to_millis(Duration d) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
}

[[nodiscard]] inline double to_seconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace cops
