#include "common/logging.hpp"

#include <chrono>

namespace cops {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::~Logger() {
  if (out_ != nullptr) std::fclose(out_);
}

void Logger::set_output(const std::string& path) {
  std::lock_guard lock(mutex_);
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  if (!path.empty()) out_ = std::fopen(path.c_str(), "a");
}

void Logger::log(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::lock_guard lock(mutex_);
  FILE* out = out_ != nullptr ? out_ : stderr;
  std::fprintf(out, "[%lld.%06lld] %-5s %s\n",
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000),
               kNames[static_cast<int>(level)], message.c_str());
  std::fflush(out);
}

namespace detail {
void log_line(LogLevel level, const char* file, int line,
              const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::string full = message + " (" + base + ":" + std::to_string(line) + ")";
  Logger::instance().log(level, full);
}
}  // namespace detail

}  // namespace cops
