#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace cops {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfDistribution::sample(double u) const {
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::probability(size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace cops
