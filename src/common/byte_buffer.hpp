// Growable byte buffer with independent read/write cursors.
//
// This is the unit of data exchange between the Read Request / Send Reply
// steps and the application hook methods (Decode / Handle / Encode).  It is
// modelled on Java NIO's ByteBuffer, which the paper's generated servers use,
// but with the usual C++ idiom of a contiguous std::vector backing store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cops {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve) { data_.reserve(reserve); }
  explicit ByteBuffer(std::string_view initial)
      : data_(initial.begin(), initial.end()) {}

  // ---- write side -----------------------------------------------------
  void append(const void* bytes, size_t len);
  void append(std::string_view text) { append(text.data(), text.size()); }
  void append_byte(uint8_t b) { data_.push_back(b); }
  // Reserves `len` writable bytes at the end and returns a pointer to them;
  // the caller must follow with commit(n), n <= len, giving the number of
  // bytes actually written (e.g. by ::read()).
  uint8_t* prepare(size_t len);
  void commit(size_t len);

  // ---- read side ------------------------------------------------------
  [[nodiscard]] size_t readable() const { return data_.size() - read_pos_; }
  [[nodiscard]] const uint8_t* read_ptr() const { return data_.data() + read_pos_; }
  [[nodiscard]] std::string_view view() const {
    return {reinterpret_cast<const char*>(read_ptr()), readable()};
  }
  // Advances the read cursor; compacts the buffer when fully consumed.
  void consume(size_t len);
  // Copies up to `len` readable bytes into `out`, consuming them.
  size_t read(void* out, size_t len);
  // Finds `needle` in the readable region; npos when absent.
  [[nodiscard]] size_t find(std::string_view needle) const;

  [[nodiscard]] bool empty() const { return readable() == 0; }
  [[nodiscard]] size_t capacity() const { return data_.capacity(); }
  void clear();

  // ---- storage recycling (buffer_mgmt=pooled) --------------------------
  // Replaces the backing store with a (typically pre-reserved, pooled)
  // vector; any buffered bytes are discarded.
  void adopt_storage(std::vector<uint8_t>&& storage);
  // Surrenders the backing store (for return to a BufferPool), leaving the
  // buffer empty with no capacity.
  [[nodiscard]] std::vector<uint8_t> release_storage();

  // Extracts everything readable as a string (consuming it).
  std::string take_string();

 private:
  void maybe_compact();

  std::vector<uint8_t> data_;
  size_t read_pos_ = 0;
  size_t prepared_ = 0;  // bytes grown by prepare() awaiting commit()
};

}  // namespace cops
