#include "common/rate_limiter.hpp"

#include <algorithm>

namespace cops {

RateLimiter::RateLimiter(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_(now()) {}

void RateLimiter::refill_locked(TimePoint at) const {
  const double elapsed = to_seconds(at - last_);
  if (elapsed <= 0) return;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ = at;
}

bool RateLimiter::try_acquire(double tokens) {
  std::lock_guard lock(mutex_);
  refill_locked(now());
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

Duration RateLimiter::time_until_available(double tokens) const {
  std::lock_guard lock(mutex_);
  refill_locked(now());
  if (tokens_ >= tokens) return Duration::zero();
  const double deficit = tokens - tokens_;
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(deficit / rate_));
}

void RateLimiter::acquire_debt(double tokens) {
  std::lock_guard lock(mutex_);
  refill_locked(now());
  tokens_ -= tokens;
}

}  // namespace cops
