// Resizable worker thread pool.
//
// Used (a) by the EventProcessor to run event handlers (option O2) and (b) by
// the proactor-emulation file I/O service.  The pool is resizable at runtime
// to support option O5 (dynamic event thread allocation): the
// ProcessorController grows/shrinks the pool based on queue pressure.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace cops {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false after stop().
  bool submit(std::function<void()> task);

  // Grows or shrinks the pool to `target` threads.  Shrinking is
  // cooperative: poison tasks ask idle workers to retire.
  void resize(size_t target);

  // Stops accepting tasks, drains the queue, joins all workers.
  void stop();

  [[nodiscard]] size_t num_threads() const;
  [[nodiscard]] size_t queue_depth() const { return tasks_.size(); }

 private:
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> retired;
  };

  void spawn_locked(size_t count);
  void worker_loop(std::shared_ptr<std::atomic<bool>> retired);
  void reap_retired_locked();

  MpmcQueue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::vector<Worker> workers_;
  bool stopped_ = false;
};

}  // namespace cops
