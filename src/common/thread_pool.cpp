#include "common/thread_pool.hpp"

namespace cops {

ThreadPool::ThreadPool(size_t num_threads) {
  std::lock_guard lock(mutex_);
  spawn_locked(num_threads);
}

ThreadPool::~ThreadPool() { stop(); }

bool ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::resize(size_t target) {
  std::lock_guard lock(mutex_);
  if (stopped_) return;
  reap_retired_locked();
  const size_t current = workers_.size();
  if (target > current) {
    spawn_locked(target - current);
  } else if (target < current) {
    // Mark the surplus workers for retirement and nudge the queue with
    // no-op tasks so sleepers wake and observe their flag.
    size_t to_retire = current - target;
    for (auto it = workers_.rbegin(); it != workers_.rend() && to_retire > 0;
         ++it) {
      if (!it->retired->load()) {
        it->retired->store(true);
        --to_retire;
        tasks_.push([] {});
      }
    }
  }
}

void ThreadPool::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  tasks_.shutdown();
  std::vector<Worker> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
}

size_t ThreadPool::num_threads() const {
  std::lock_guard lock(mutex_);
  size_t alive = 0;
  for (const auto& w : workers_) {
    if (!w.retired->load()) ++alive;
  }
  return alive;
}

void ThreadPool::spawn_locked(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    auto retired = std::make_shared<std::atomic<bool>>(false);
    workers_.push_back(
        {std::thread([this, retired] { worker_loop(retired); }), retired});
  }
}

void ThreadPool::worker_loop(std::shared_ptr<std::atomic<bool>> retired) {
  while (!retired->load()) {
    auto task = tasks_.pop();
    if (!task) return;  // shutdown + drained
    (*task)();
  }
}

void ThreadPool::reap_retired_locked() {
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->retired->load() && it->thread.joinable()) {
      it->thread.detach();  // retired workers exit on their own
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cops
