#include "common/source_stats.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.hpp"

namespace cops {
namespace {

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when the text around a '(' at `pos` looks like a function definition
// header rather than a call/if/for/etc.  `code` is comment-free.
bool looks_like_function_definition(const std::string& code, size_t open_paren) {
  // Extract the identifier before '('.
  size_t end = open_paren;
  while (end > 0 && std::isspace(static_cast<unsigned char>(code[end - 1])) != 0) {
    --end;
  }
  size_t begin = end;
  while (begin > 0 && is_identifier_char(code[begin - 1])) --begin;
  if (begin == end) return false;
  const std::string name = code.substr(begin, end - begin);
  static const char* kKeywords[] = {"if",     "for",    "while", "switch",
                                    "return", "sizeof", "catch", "new",
                                    "delete", "throw",  "alignof"};
  for (const char* kw : kKeywords) {
    if (name == kw) return false;
  }
  // Find the matching ')', then check the next significant token is '{'
  // (possibly after const/noexcept/override/final/-> trailing return).
  int depth = 0;
  size_t i = open_paren;
  for (; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')') {
      --depth;
      if (depth == 0) break;
    }
  }
  if (i >= code.size()) return false;
  ++i;
  // Skip trailing specifiers up to '{', ';', or something else.
  while (i < code.size()) {
    if (std::isspace(static_cast<unsigned char>(code[i])) != 0) {
      ++i;
      continue;
    }
    if (code[i] == '{') return true;
    if (code[i] == ';' || code[i] == ',' || code[i] == ')') return false;
    // Allow words (const, noexcept, override...), ':' (ctor init list starts
    // a definition), and "->" trailing return types.
    if (code[i] == ':') return true;  // constructor initializer list
    if (is_identifier_char(code[i]) || code[i] == '-' || code[i] == '>' ||
        code[i] == '&' || code[i] == '*' || code[i] == '(' || code[i] == '<') {
      ++i;
      continue;
    }
    return false;
  }
  return false;
}

}  // namespace

std::string strip_comments_and_literals(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          out.push_back('\'');
        } else {
          out.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out.push_back('\n');
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out.push_back('\n');  // keep line structure
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char
        } else if (c == '"') {
          state = State::kCode;
          out.push_back('"');
        } else if (c == '\n') {
          state = State::kCode;  // unterminated; recover
          out.push_back('\n');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out.push_back('\'');
        } else if (c == '\n') {
          state = State::kCode;
          out.push_back('\n');
        }
        break;
    }
  }
  return out;
}

SourceStats analyze_source(std::string_view source) {
  const std::string code = strip_comments_and_literals(source);
  SourceStats stats;

  // NCSS: count statement terminators and block-opening constructs, the
  // common definition used by tools such as JavaNCSS (which the paper's
  // Java measurements would have used).
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == ';') ++stats.ncss;
    if (code[i] == '{') ++stats.ncss;
  }
  // Preprocessor directives count as statements too.
  {
    std::istringstream lines{code};
    std::string line;
    while (std::getline(lines, line)) {
      auto t = trim(line);
      if (!t.empty() && t.front() == '#') ++stats.ncss;
    }
  }

  // Classes: class/struct followed by an identifier and eventually '{'
  // (skipping forward declarations which end in ';').
  for (const char* kw : {"class", "struct"}) {
    const size_t kw_len = std::string_view(kw).size();
    size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      const bool standalone =
          (pos == 0 || !is_identifier_char(code[pos - 1])) &&
          (pos + kw_len < code.size() && !is_identifier_char(code[pos + kw_len]));
      if (standalone) {
        // Scan forward to the first '{' or ';'.
        size_t j = pos + kw_len;
        while (j < code.size() && code[j] != '{' && code[j] != ';') ++j;
        if (j < code.size() && code[j] == '{') ++stats.classes;
      }
      pos += kw_len;
    }
  }

  // Methods: identifier '(' ... ')' followed by '{' or ':'.
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '(' && looks_like_function_definition(code, i)) {
      ++stats.methods;
      // Skip past the parameter list to avoid double counting nested parens.
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '(') ++depth;
        if (code[i] == ')') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
    }
  }
  return stats;
}

SourceStats analyze_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_source(buf.str());
}

SourceStats analyze_directory(const std::string& dir) {
  SourceStats total;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(dir, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const auto ext = it->path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc") {
      total += analyze_file(it->path().string());
    }
  }
  return total;
}

SourceStats analyze_files(const std::vector<std::string>& paths) {
  SourceStats total;
  for (const auto& p : paths) total += analyze_file(p);
  return total;
}

}  // namespace cops
