// Fixed-bucket latency histogram (log2 buckets over microseconds).
//
// Used by the load generator and the profiler to report response-time
// distributions (Fig. 6 reports mean response times; percentiles are kept
// for diagnostics).  Thread-safe recording via per-bucket atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cops {

class Histogram {
 public:
  Histogram();
  // Atomics are neither copyable nor movable; snapshot-copy instead.
  Histogram(const Histogram& other) : Histogram() { merge(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      reset();
      merge(other);
    }
    return *this;
  }
  Histogram(Histogram&& other) noexcept : Histogram() { merge(other); }
  Histogram& operator=(Histogram&& other) noexcept {
    if (this != &other) {
      reset();
      merge(other);
    }
    return *this;
  }

  void record(int64_t micros);
  void merge(const Histogram& other);

  [[nodiscard]] uint64_t count() const { return count_.load(); }
  [[nodiscard]] int64_t sum_micros() const { return sum_.load(); }
  // Per-bucket sample count and the bucket's inclusive upper bound — the
  // raw material for Prometheus-style cumulative bucket export.
  [[nodiscard]] uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load();
  }
  [[nodiscard]] static int64_t bucket_upper_micros(int bucket);
  [[nodiscard]] double mean_micros() const;
  // q in [0,1]; returns the upper bound of the bucket containing the
  // q-quantile sample (0 when empty).
  [[nodiscard]] int64_t quantile_micros(double q) const;
  [[nodiscard]] int64_t max_micros() const { return max_.load(); }

  void reset();
  [[nodiscard]] std::string summary() const;

  static constexpr int kNumBuckets = 40;  // covers [1us, ~2^39us ≈ 6 days]

 private:
  static int bucket_for(int64_t micros);
  static int64_t bucket_upper(int bucket);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

}  // namespace cops
