// Small string helpers used by the protocol parsers and the generator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cops {

[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
// Splits on `sep`, trimming each piece and dropping empties.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view s, char sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string s, std::string_view from,
                                      std::string_view to);
// Parses a non-negative integer; returns -1 on malformed input.
[[nodiscard]] long parse_non_negative(std::string_view s);

}  // namespace cops
