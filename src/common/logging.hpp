// Minimal leveled logger (option O12) and the N-Server debug event trace
// (option O10, debug mode).
//
// The paper generates logging and debug-trace code only when the matching
// options are on.  In this library the hot-path call sites are guarded by a
// cheap atomic level check; the generated scaffolds (see src/gdp) set the
// level constant so the compiler removes disabled call sites entirely.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace cops {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  // Redirects output to a file (empty path = stderr).
  void set_output(const std::string& path);

  void log(LogLevel level, const std::string& message);

  ~Logger();

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mutex_;
  FILE* out_ = nullptr;  // nullptr = stderr
};

namespace detail {
void log_line(LogLevel level, const char* file, int line,
              const std::string& message);
}

#define COPS_LOG(level, msg_expr)                                      \
  do {                                                                 \
    if (::cops::Logger::instance().enabled(level)) {                   \
      std::ostringstream cops_log_oss_;                                \
      cops_log_oss_ << msg_expr;                                       \
      ::cops::detail::log_line(level, __FILE__, __LINE__,              \
                               cops_log_oss_.str());                   \
    }                                                                  \
  } while (0)

#define COPS_TRACE(msg) COPS_LOG(::cops::LogLevel::kTrace, msg)
#define COPS_DEBUG(msg) COPS_LOG(::cops::LogLevel::kDebug, msg)
#define COPS_INFO(msg) COPS_LOG(::cops::LogLevel::kInfo, msg)
#define COPS_WARN(msg) COPS_LOG(::cops::LogLevel::kWarn, msg)
#define COPS_ERROR(msg) COPS_LOG(::cops::LogLevel::kError, msg)

}  // namespace cops
