// Slab/pool layer for the allocation-free request path (buffer_mgmt=pooled).
//
// Three recyclers, all thread-safe, all counting how often they could hand
// back recycled memory (hit) versus having to grow from the heap (miss):
//
//   SlabPool    fixed-size blocks carved from large chunks — backs pooled
//               RequestContext allocation via PoolAllocator +
//               std::allocate_shared (object and control block share one
//               slab block, one freelist push/pop per request).
//   BufferPool  recycles std::vector<uint8_t> backing stores for connection
//               read buffers (ByteBuffer::adopt_storage/release_storage),
//               so accepting a connection reuses a previous connection's
//               grown buffer instead of re-growing a fresh one.
//   Arena       bump allocator for small, same-lifetime scratch; reset()
//               recycles every chunk in O(1).
//
// The heap-traffic counters (hits / misses / heap bytes) surface on /stats
// as cops_pool_hits_total, cops_pool_misses_total, cops_alloc_bytes_total.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace cops {

// Fixed-size block allocator.  Requests up to block_bytes() are served from
// a freelist of blocks carved out of chunk-sized heap slabs; larger requests
// fall back to the heap (counted as misses, never pooled).
class SlabPool {
 public:
  explicit SlabPool(size_t block_bytes, size_t blocks_per_chunk = 64);
  ~SlabPool();
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  void* allocate(size_t bytes);
  void deallocate(void* ptr, size_t bytes) noexcept;

  [[nodiscard]] size_t block_bytes() const { return block_bytes_; }
  // Blocks currently sitting on the freelist.
  [[nodiscard]] size_t free_blocks() const;
  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  // Total bytes this pool pulled from the heap (chunk growth + oversize
  // fallbacks).  Flat in steady state — that is the whole point.
  [[nodiscard]] uint64_t heap_bytes() const {
    return heap_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void grow_locked();

  const size_t block_bytes_;
  const size_t blocks_per_chunk_;
  mutable std::mutex mutex_;
  std::vector<void*> free_list_;
  std::vector<char*> chunks_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> heap_bytes_{0};
};

// Minimal std allocator over a shared SlabPool, for allocate_shared and
// friends.  Copyable across types (rebind) — all copies share the pool.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<SlabPool> pool)
      : pool_(std::move(pool)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : pool_(other.pool_) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* ptr, size_t n) noexcept {
    pool_->deallocate(ptr, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool_;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return !(*this == other);
  }

  std::shared_ptr<SlabPool> pool_;
};

// Recycles vector<uint8_t> backing stores (connection read buffers).  Every
// handed-out vector has capacity >= block_bytes(); a vector that grew while
// in use comes back with its larger capacity and benefits the next user.
class BufferPool {
 public:
  explicit BufferPool(size_t block_bytes, size_t max_free = 64);

  [[nodiscard]] std::vector<uint8_t> acquire();
  void release(std::vector<uint8_t> storage);

  [[nodiscard]] size_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] size_t free_buffers() const;
  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t heap_bytes() const {
    return heap_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const size_t block_bytes_;
  const size_t max_free_;
  mutable std::mutex mutex_;
  std::vector<std::vector<uint8_t>> free_list_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> heap_bytes_{0};
};

// Bump allocator for small scratch allocations that all die together.  Not
// thread-safe (one arena per owner); reset() recycles chunks without
// touching the heap.
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 4096);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(size_t bytes, size_t align = alignof(std::max_align_t));
  void reset();

  [[nodiscard]] size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] uint64_t heap_bytes() const { return heap_bytes_; }

 private:
  struct Chunk {
    char* data;
    size_t size;
  };

  const size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // chunk being bumped
  size_t offset_ = 0;   // bump cursor within it
  uint64_t heap_bytes_ = 0;
};

}  // namespace cops
