// Bounded multi-producer multi-consumer FIFO queue.
//
// This is the incoming event queue of an EventProcessor when event scheduling
// (option O8) is disabled.  Blocking pop with shutdown support lets the
// processor's worker threads park when the server is idle — the paper's
// event-driven model uses a small number of threads that loop on the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace cops {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity = 0) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Pushes an item; blocks while the queue is at capacity (capacity 0 means
  // unbounded).  Returns false if the queue was shut down.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] {
      return shutdown_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (shutdown_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; fails when full or shut down.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (shutdown_) return false;
      if (capacity_ != 0 && items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking pop; empty optional means the queue was shut down and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void shutdown() {
    {
      std::lock_guard lock(mutex_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool is_shutdown() const {
    std::lock_guard lock(mutex_);
    return shutdown_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool shutdown_ = false;
};

}  // namespace cops
