#include "common/byte_buffer.hpp"

#include <cassert>
#include <cstring>

namespace cops {

void ByteBuffer::append(const void* bytes, size_t len) {
  assert(prepared_ == 0 && "append during an open prepare/commit window");
  const auto* p = static_cast<const uint8_t*>(bytes);
  data_.insert(data_.end(), p, p + len);
}

uint8_t* ByteBuffer::prepare(size_t len) {
  assert(prepared_ == 0 && "nested prepare() without commit()");
  prepared_ = len;
  data_.resize(data_.size() + len);
  return data_.data() + data_.size() - len;
}

void ByteBuffer::commit(size_t len) {
  assert(len <= prepared_ && "commit larger than prepared span");
  data_.resize(data_.size() - (prepared_ - len));
  prepared_ = 0;
}

void ByteBuffer::consume(size_t len) {
  read_pos_ += len;
  if (read_pos_ > data_.size()) read_pos_ = data_.size();
  maybe_compact();
}

size_t ByteBuffer::read(void* out, size_t len) {
  const size_t n = len < readable() ? len : readable();
  std::memcpy(out, read_ptr(), n);
  consume(n);
  return n;
}

size_t ByteBuffer::find(std::string_view needle) const {
  return view().find(needle);
}

void ByteBuffer::clear() {
  data_.clear();
  read_pos_ = 0;
  prepared_ = 0;
}

void ByteBuffer::adopt_storage(std::vector<uint8_t>&& storage) {
  data_ = std::move(storage);
  data_.clear();
  read_pos_ = 0;
  prepared_ = 0;
}

std::vector<uint8_t> ByteBuffer::release_storage() {
  std::vector<uint8_t> storage = std::move(data_);
  data_ = std::vector<uint8_t>();
  read_pos_ = 0;
  prepared_ = 0;
  return storage;
}

std::string ByteBuffer::take_string() {
  std::string out(view());
  clear();
  return out;
}

void ByteBuffer::maybe_compact() {
  if (read_pos_ == data_.size()) {
    data_.clear();
    read_pos_ = 0;
  } else if (read_pos_ > 4096 && read_pos_ > data_.size() / 2) {
    data_.erase(data_.begin(), data_.begin() + static_cast<ptrdiff_t>(read_pos_));
    read_pos_ = 0;
  }
}

}  // namespace cops
