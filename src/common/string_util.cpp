#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>

namespace cops {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, sep)) {
    auto t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

long parse_non_negative(std::string_view s) {
  if (s.empty() || s.size() > 18) return -1;
  long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace cops
