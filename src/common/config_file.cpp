#include "common/config_file.hpp"

#include <fstream>
#include <sstream>

#include "common/string_util.hpp"

namespace cops {

Result<ConfigFile> ConfigFile::parse(std::string_view text) {
  ConfigFile cfg;
  int line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument("line " + std::to_string(line_no) +
                                      ": expected key = value");
    }
    auto key = trim(line.substr(0, eq));
    auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::invalid_argument("line " + std::to_string(line_no) +
                                      ": empty key");
    }
    cfg.entries_[std::string(key)] = std::string(value);
  }
  return cfg;
}

Result<ConfigFile> ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::optional<std::string> ConfigFile::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigFile::get_or(const std::string& key,
                               std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::optional<long> ConfigFile::get_int(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  try {
    size_t idx = 0;
    long value = std::stol(*v, &idx);
    if (idx != v->size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<bool> ConfigFile::get_bool(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  auto lower = to_lower(*v);
  if (lower == "yes" || lower == "true" || lower == "on" || lower == "1") {
    return true;
  }
  if (lower == "no" || lower == "false" || lower == "off" || lower == "0") {
    return false;
  }
  return std::nullopt;
}

void ConfigFile::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

}  // namespace cops
