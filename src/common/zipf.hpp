// Zipf-distributed random integers.
//
// SpecWeb99 accesses directories and files with a Zipf popularity law; the
// workload generator uses this to pick which file each simulated client
// requests.  Uses the inverse-CDF table method: O(n) setup, O(log n) sample.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace cops {

class ZipfDistribution {
 public:
  // Values are drawn from [0, n); `s` is the skew exponent (1.0 = classic).
  ZipfDistribution(size_t n, double s = 1.0);

  template <typename Rng>
  size_t operator()(Rng& rng) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    return sample(uniform(rng));
  }

  // Maps u in [0,1) to a rank via the precomputed CDF.
  [[nodiscard]] size_t sample(double u) const;

  [[nodiscard]] size_t n() const { return cdf_.size(); }
  [[nodiscard]] double probability(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace cops
