#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cops {

Histogram::Histogram() : buckets_(kNumBuckets) {}

int Histogram::bucket_for(int64_t micros) {
  if (micros <= 1) return 0;
  int b = 64 - __builtin_clzll(static_cast<uint64_t>(micros) - 1);
  return std::min(b, kNumBuckets - 1);
}

int64_t Histogram::bucket_upper(int bucket) { return int64_t{1} << bucket; }

int64_t Histogram::bucket_upper_micros(int bucket) {
  return bucket_upper(bucket);
}

void Histogram::record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[static_cast<size_t>(bucket_for(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (micros > prev &&
         !max_.compare_exchange_weak(prev, micros, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)].fetch_add(
        other.buckets_[static_cast<size_t>(i)].load());
  }
  count_.fetch_add(other.count_.load());
  sum_.fetch_add(other.sum_.load());
  int64_t om = other.max_.load();
  int64_t prev = max_.load();
  while (om > prev && !max_.compare_exchange_weak(prev, om)) {
  }
}

double Histogram::mean_micros() const {
  const uint64_t n = count_.load();
  return n == 0 ? 0.0 : static_cast<double>(sum_.load()) / static_cast<double>(n);
}

int64_t Histogram::quantile_micros(double q) const {
  const uint64_t n = count_.load();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)].load();
    if (cumulative >= target) return bucket_upper(i);
  }
  return bucket_upper(kNumBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0);
  count_.store(0);
  sum_.store(0);
  max_.store(0);
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1fus p50<=%lldus p99<=%lldus max=%lldus",
                static_cast<unsigned long long>(count()), mean_micros(),
                static_cast<long long>(quantile_micros(0.5)),
                static_cast<long long>(quantile_micros(0.99)),
                static_cast<long long>(max_micros()));
  return buf;
}

}  // namespace cops
