// Source-code statistics: classes, methods, NCSS.
//
// Tables 3 and 4 of the paper report code distribution as classes / methods /
// non-comment source statements (NCSS).  This counter reproduces those
// metrics for C++ sources: comments and blank lines are stripped, statements
// are counted as `;` terminators plus block-opening constructs, classes as
// class/struct definitions, and methods as function definitions (a heuristic,
// as NCSS tools are).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cops {

struct SourceStats {
  int classes = 0;
  int methods = 0;
  int ncss = 0;  // non-comment source statements

  SourceStats& operator+=(const SourceStats& other) {
    classes += other.classes;
    methods += other.methods;
    ncss += other.ncss;
    return *this;
  }
};

// Strips // and /* */ comments and string/char literal contents (so braces
// or semicolons inside literals are not miscounted).
[[nodiscard]] std::string strip_comments_and_literals(std::string_view source);

[[nodiscard]] SourceStats analyze_source(std::string_view source);
[[nodiscard]] SourceStats analyze_file(const std::string& path);
// Recursively analyzes *.hpp / *.cpp / *.h / *.cc under `dir`.
[[nodiscard]] SourceStats analyze_directory(const std::string& dir);
[[nodiscard]] SourceStats analyze_files(const std::vector<std::string>& paths);

}  // namespace cops
