// Lightweight status / result types used across the library.
//
// The networking and server layers report recoverable failures through
// Status / Result<T> rather than exceptions: event-driven hot paths must not
// unwind across the reactor loop, and most failures (peer reset, would-block)
// are ordinary control flow for a server.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <variant>

namespace cops {

enum class StatusCode {
  kOk = 0,
  kWouldBlock,      // non-blocking op would block; retry when ready
  kClosed,          // peer closed the connection / EOF
  kNotFound,
  kInvalidArgument,
  kOutOfRange,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kInternal,
  kUnavailable,
  kIoError,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kWouldBlock: return "WOULD_BLOCK";
    case StatusCode::kClosed: return "CLOSED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status would_block() { return {StatusCode::kWouldBlock, {}}; }
  static Status closed() { return {StatusCode::kClosed, {}}; }
  static Status not_found(std::string msg = {}) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg = {}) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status io_error(std::string msg) {
    return {StatusCode::kIoError, std::move(msg)};
  }
  static Status unavailable(std::string msg = {}) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  // Builds an IO_ERROR status from the current errno value.
  static Status from_errno(const char* what) {
    return {StatusCode::kIoError,
            std::string(what) + ": " + std::strerror(errno)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string to_string() const {
    std::string out = cops::to_string(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a Status describing why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}     // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const {
    return std::holds_alternative<T>(data_);
  }
  [[nodiscard]] const T& value() const& { return std::get<T>(data_); }
  [[nodiscard]] T& value() & { return std::get<T>(data_); }
  [[nodiscard]] T&& take() && { return std::get<T>(std::move(data_)); }
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace cops
