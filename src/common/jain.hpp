// Jain fairness index (Fig. 4 metric).
//
//   f(x) = (sum x_i)^2 / (N * sum x_i^2)
//
// 1.0 when all clients receive equal service; k/N when k clients receive
// equal service and the rest none.
#pragma once

#include <cstddef>
#include <vector>

namespace cops {

template <typename T>
[[nodiscard]] double jain_fairness(const std::vector<T>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& x : xs) {
    const double v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: vacuously fair
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace cops
