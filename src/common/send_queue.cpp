#include "common/send_queue.hpp"

#include <cassert>
#include <cstdio>

namespace cops {

namespace {
// "<hex-size>\r\n" — the owned framing line that precedes each chunk.
std::string chunk_size_line(size_t n) {
  char buf[2 * sizeof(size_t) + 3];
  const int len = std::snprintf(buf, sizeof(buf), "%zx\r\n", n);
  return std::string(buf, static_cast<size_t>(len));
}
}  // namespace

void EncodedReply::add_owned(std::string bytes) {
  if (bytes.empty()) return;
  SendSegment seg;
  seg.len = bytes.size();
  seg.owned = std::move(bytes);
  copied_bytes += seg.len;
  segments.push_back(std::move(seg));
}

void EncodedReply::add_shared(std::shared_ptr<const void> keepalive,
                              const char* data, size_t len) {
  if (len == 0) return;
  SendSegment seg;
  seg.keepalive = std::move(keepalive);
  seg.ext_data = data;
  seg.len = len;
  segments.push_back(std::move(seg));
}

void EncodedReply::add_file(std::shared_ptr<const void> keepalive, int fd,
                            uint64_t offset, size_t len) {
  if (len == 0) return;
  SendSegment seg;
  seg.keepalive = std::move(keepalive);
  seg.file_fd = fd;
  seg.file_start = offset;
  seg.len = len;
  segments.push_back(std::move(seg));
}

void EncodedReply::add_shared_chunked(std::shared_ptr<const void> keepalive,
                                      const char* data, size_t len,
                                      size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = len;
  for (size_t at = 0; at < len; at += chunk_bytes) {
    const size_t take = std::min(chunk_bytes, len - at);
    add_owned(chunk_size_line(take));
    add_shared(keepalive, data + at, take);
    add_owned("\r\n");
  }
}

void EncodedReply::add_file_chunked(std::shared_ptr<const void> keepalive,
                                    int fd, uint64_t offset, size_t len,
                                    size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = len;
  for (size_t at = 0; at < len; at += chunk_bytes) {
    const size_t take = std::min(chunk_bytes, len - at);
    add_owned(chunk_size_line(take));
    add_file(keepalive, fd, offset + at, take);
    add_owned("\r\n");
  }
}

void EncodedReply::add_last_chunk() {
  add_owned("0\r\n\r\n");
  chunked_framed = true;
}

size_t EncodedReply::size() const {
  size_t total = 0;
  for (const auto& seg : segments) total += seg.len;
  return total;
}

EncodedReply EncodedReply::from_string(std::string bytes) {
  EncodedReply reply;
  reply.add_owned(std::move(bytes));
  return reply;
}

void SendQueue::push(SendSegment segment) {
  if (segment.remaining() == 0) return;
  total_ += segment.remaining();
  segments_.push_back(std::move(segment));
}

void SendQueue::push(EncodedReply&& reply) {
  for (auto& seg : reply.segments) push(std::move(seg));
  reply.segments.clear();
}

void SendQueue::push_owned(std::string bytes) {
  SendSegment seg;
  seg.len = bytes.size();
  seg.owned = std::move(bytes);
  push(std::move(seg));
}

int SendQueue::fill_iovec(struct iovec* iov, int max_iov) const {
  int count = 0;
  for (const auto& seg : segments_) {
    if (seg.is_file() || count == max_iov) break;
    iov[count].iov_base = const_cast<char*>(seg.data());
    iov[count].iov_len = seg.remaining();
    ++count;
  }
  return count;
}

void SendQueue::consume(size_t n) {
  assert(n <= total_);
  total_ -= n;
  while (n > 0) {
    auto& front = segments_.front();
    assert(!front.is_file());
    const size_t take = std::min(n, front.remaining());
    front.offset += take;
    n -= take;
    if (front.remaining() == 0) segments_.pop_front();
  }
}

void SendQueue::consume_file(size_t n) {
  auto& front = segments_.front();
  assert(front.is_file() && n <= front.remaining() && n <= total_);
  front.offset += n;
  total_ -= n;
  if (front.remaining() == 0) segments_.pop_front();
}

void SendQueue::clear() {
  segments_.clear();
  total_ = 0;
}

}  // namespace cops
