#include "nserver/connection.hpp"

#include "common/logging.hpp"
#include "nserver/server.hpp"

namespace cops::nserver {

std::atomic<uint64_t> Connection::next_generation_{1};

Connection::Connection(Server& server, net::Reactor& reactor,
                       net::TcpSocket socket, uint64_t id, size_t shard_index)
    : server_(server),
      reactor_(reactor),
      socket_(std::move(socket)),
      id_(id),
      generation_(next_generation_.fetch_add(1)),
      shard_index_(shard_index),
      last_activity_(now()) {
  socket_.set_nodelay(true);
  if (auto addr = socket_.peer_address(); addr.is_ok()) {
    peer_ = addr.value().to_string();
  }
  // buffer_mgmt=pooled: adopt a recycled read-buffer backing store instead
  // of growing a fresh vector from nothing.
  buffer_pool_ = server_.shards_[shard_index_]->read_buffer_pool;
  if (buffer_pool_) in_.adopt_storage(buffer_pool_->acquire());
}

Connection::~Connection() {
  if (buffer_pool_) buffer_pool_->release(in_.release_storage());
}

void Connection::start() {
  want_read_ = true;
  auto status = reactor_.register_handler(socket_.fd(), this, net::kReadable);
  if (!status.is_ok()) {
    COPS_WARN("connection " << id_ << ": register failed: "
                            << status.to_string());
    close("register-failed");
    return;
  }
  registered_ = true;
  // on_connect hook: greeting etc.  Runs on the dispatcher; any send() it
  // performs is posted back to this reactor and ordered before request
  // replies.
  auto ctx = server_.make_context(shared_from_this());
  server_.hooks_->on_connect(*ctx);
}

void Connection::handle_event(int /*fd*/, uint32_t readiness) {
  // Keep *this alive across user-triggered close() paths.
  auto self = shared_from_this();
  if (closed()) return;
  if ((readiness & net::kErrored) != 0) {
    close("socket-error");
    return;
  }
  if ((readiness & net::kWritable) != 0) on_writable();
  if (closed()) return;
  if ((readiness & net::kReadable) != 0 && want_read_) on_readable();
}

void Connection::on_readable() {
  auto n = socket_.read(in_);
  if (!n.is_ok()) {
    if (n.status().code() == StatusCode::kWouldBlock) return;
    // Orderly EOF or reset: the peer is gone.
    close(n.status().code() == StatusCode::kClosed ? "peer-closed"
                                                   : "read-error");
    return;
  }
  last_activity_ = now();
  server_.note_event(EventKind::kRead, id_, "bytes");
  bytes_read_total_.fetch_add(n.value(), std::memory_order_relaxed);
  if (server_.options_.profiling) profiler_bytes_read(n.value());
  start_pipeline();
}

void Connection::profiler_bytes_read(size_t n) {  // small indirection helper
  server_.profiler_.count_bytes_read(n);
}

void Connection::start_pipeline() {
  // Pipeline token moves from the socket to the Event Processor: stop
  // reading until this request cycle resolves.
  want_read_ = false;
  pipeline_active_ = true;
  if (server_.options_.profiling) trace_.begin_request(trace_now_us());
  update_interest();
  server_.submit_decode(shared_from_this());
}

void Connection::resume_reading() {
  if (closed()) return;
  pipeline_active_ = false;
  // Decode said "need more".  A non-empty in-buffer means the peer is mid-
  // request: start the slowloris clock (once — see partial_since()).  An
  // empty buffer means we are cleanly between requests.
  if (in_.empty()) {
    partial_since_ = TimePoint{};
  } else if (partial_since_ == TimePoint{}) {
    partial_since_ = now();
  }
  // Data may already be buffered in the kernel; with level-triggered epoll
  // re-arming read interest is sufficient to get a new readable event.
  want_read_ = true;
  update_interest();
  last_activity_ = now();
}

void Connection::continue_pipeline() {
  if (closed()) return;
  if (close_after_reply_) {
    close("close-after-reply");
    return;
  }
  // A request completed: whatever remains buffered is the *next* request,
  // which deserves a fresh slowloris window.
  partial_since_ = TimePoint{};
  // More pipelined requests may already sit in the in-buffer; go around the
  // Decode loop again before re-arming the socket.
  pipeline_active_ = true;
  if (server_.options_.profiling) trace_.begin_request(trace_now_us());
  server_.submit_decode(shared_from_this());
}

void Connection::queue_send(EncodedReply reply, bool completes_request) {
  if (closed()) return;
  if (server_.options_.profiling && reply.copied_bytes > 0) {
    server_.profiler_.count_send_copied(reply.copied_bytes);
  }
  // Chunk-framed replies (body_framing=chunked) are counted here — the one
  // spot every encode path funnels through — not in the Encode hooks.
  if (server_.options_.profiling && reply.chunked_framed) {
    server_.profiler_.count_send_chunked();
  }
  out_.push(std::move(reply));
  if (completes_request) reply_pending_drain_ = true;
  flush_out();
}

void Connection::queue_send(std::string bytes, bool completes_request) {
  queue_send(EncodedReply::from_string(std::move(bytes)), completes_request);
}

namespace {
// Gather batch per writev: enough for several pipelined header+body replies
// in one syscall, small enough to sit on the stack.
constexpr int kSendIovBatch = 16;
}  // namespace

void Connection::flush_out() {
  // Drain loop: scatter-gather the leading memory segments into one writev
  // per round; a leading file segment goes out via sendfile instead.  Stop
  // on would-block (write interest re-arms below) or error.
  while (out_.readable() > 0) {
    const Result<size_t> n = [&]() -> Result<size_t> {
      if (out_.front_is_file()) {
        auto sent = socket_.sendfile_from(out_.front_file_fd(),
                                          out_.front_file_offset(),
                                          out_.front_file_remaining());
        if (sent.is_ok()) {
          out_.consume_file(sent.value());
          if (server_.options_.profiling) {
            server_.profiler_.count_send_sendfile(sent.value());
          }
        }
        return sent;
      }
      struct iovec iov[kSendIovBatch];
      const int iovcnt = out_.fill_iovec(iov, kSendIovBatch);
      auto sent = socket_.writev(iov, iovcnt);
      if (sent.is_ok()) {
        out_.consume(sent.value());
        if (server_.options_.profiling) server_.profiler_.count_send_writev();
      }
      return sent;
    }();
    if (!n.is_ok()) {
      if (n.status().code() != StatusCode::kWouldBlock) {
        close("write-error");
        return;
      }
      break;
    }
    bytes_sent_total_.fetch_add(n.value(), std::memory_order_relaxed);
    if (server_.options_.profiling) {
      server_.profiler_.count_bytes_sent(n.value());
    }
    last_activity_ = now();
  }
  const bool drained = out_.readable() == 0;
  if (drained && reply_pending_drain_) {
    reply_pending_drain_ = false;
    after_reply_sent();
    if (closed()) return;
  }
  const bool need_write = out_.readable() > 0;
  if (need_write != want_write_) {
    want_write_ = need_write;
    update_interest();
  }
}

void Connection::on_writable() { flush_out(); }

void Connection::after_reply_sent() {
  server_.note_event(EventKind::kSend, id_, "reply-drained");
  if (server_.options_.profiling) {
    server_.profiler_.count_reply();
    const int64_t now_us = trace_now_us();
    server_.profiler_.record_stage(
        Stage::kWrite, TraceContext::elapsed(trace_.encode_done_us, now_us));
    server_.profiler_.record_stage(
        Stage::kTotal, TraceContext::elapsed(trace_.read_done_us, now_us));
  }
  continue_pipeline();
}

void Connection::update_interest() {
  if (!registered_ || closed()) return;
  uint32_t interest = 0;
  if (want_read_) interest |= net::kReadable;
  if (want_write_) interest |= net::kWritable;
  reactor_.update_interest(socket_.fd(), interest);
}

void Connection::close(const std::string& reason) {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  if (registered_) {
    reactor_.deregister(socket_.fd());
    registered_ = false;
  }
  socket_.close();
  server_.note_event(EventKind::kShutdown, id_, reason.c_str());
  server_.remove_connection(*this);
}

}  // namespace cops::nserver
