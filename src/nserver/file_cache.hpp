// FileCache — transparent in-memory file cache (option O6).
//
// "To relieve users from the burden of implementing a file cache, the
// N-Server can be configured to generate code that automatically caches disk
// files in memory" (paper, Section IV).  COPS-HTTP runs with a 20 MB LRU
// cache.  The cache is byte-capacity bounded; the replacement policy is a
// strategy object (see cache_policy.hpp).
//
// Thread-safe: hook methods running on any Event Processor thread may look
// up and insert concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "nserver/cache_policy.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::nserver {

class FileCache {
 public:
  FileCache(std::unique_ptr<CachePolicy> policy, size_t capacity_bytes);

  // How long an entry may be served before its on-disk mtime/size are
  // re-checked (0 = re-check on every lookup).
  void set_revalidate_interval(std::chrono::milliseconds interval) {
    revalidate_interval_ = interval;
  }

  // nullptr on miss.  Hits bump the policy's recency/frequency stamps.
  // A hit whose backing file changed on disk (mtime or size mismatch) or
  // disappeared is invalidated — dropped and reported as a miss — so a
  // modified file is never served stale beyond the revalidate interval.
  [[nodiscard]] FileDataPtr lookup(const std::string& key);

  // Inserts (evicting per policy as needed).  Returns false when the policy
  // refused admission or the object alone exceeds capacity.
  bool insert(const std::string& key, FileDataPtr data);

  void erase(const std::string& key);
  void clear();

  [[nodiscard]] size_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] size_t capacity_bytes() const { return capacity_bytes_; }
  [[nodiscard]] size_t entry_count() const;

  [[nodiscard]] uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] uint64_t misses() const { return misses_.load(); }
  [[nodiscard]] uint64_t evictions() const { return evictions_.load(); }
  [[nodiscard]] uint64_t invalidations() const { return invalidations_.load(); }
  [[nodiscard]] double hit_rate() const;
  [[nodiscard]] const char* policy_name() const {
    return policy_ ? policy_->name() : "None";
  }

  // Monotonic invalidation stamp for L1 tiers layered above this cache
  // (see l1_cache.hpp): bumped whenever cached bytes stop being
  // trustworthy — explicit erase, clear, or a revalidation failure — but
  // *not* on capacity eviction, which leaves the on-disk file unchanged.
  // An L1 entry promoted under epoch E is served only while E is current.
  [[nodiscard]] uint64_t invalidation_epoch() const {
    return invalidation_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    FileDataPtr data;
    CacheEntryInfo info;
    TimePoint last_validated{};
  };

  void erase_locked(const std::string& key);
  // True when the entry still matches the on-disk file (mutex held).
  [[nodiscard]] bool revalidate_locked(const std::string& key, Entry& entry);

  std::unique_ptr<CachePolicy> policy_;
  size_t capacity_bytes_;
  std::chrono::milliseconds revalidate_interval_{1000};

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  size_t size_bytes_ = 0;
  uint64_t access_seq_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> invalidation_epoch_{1};
};

}  // namespace cops::nserver
