#include "nserver/file_cache.hpp"

#include <sys/stat.h>

namespace cops::nserver {

FileCache::FileCache(std::unique_ptr<CachePolicy> policy,
                     size_t capacity_bytes)
    : policy_(std::move(policy)), capacity_bytes_(capacity_bytes) {}

bool FileCache::revalidate_locked(const std::string& key, Entry& entry) {
  const auto current = now();
  if (revalidate_interval_.count() > 0 &&
      entry.last_validated != TimePoint{} &&
      current - entry.last_validated < revalidate_interval_) {
    return true;  // checked recently enough
  }
  struct stat st{};
  if (::stat(key.c_str(), &st) != 0 ||
      static_cast<int64_t>(st.st_mtime) != entry.data->mtime_seconds ||
      static_cast<size_t>(st.st_size) != entry.data->size()) {
    return false;  // file changed or vanished: the entry is stale
  }
  entry.last_validated = current;
  return true;
}

FileDataPtr FileCache::lookup(const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (!revalidate_locked(key, it->second)) {
    erase_locked(key);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    invalidation_epoch_.fetch_add(1, std::memory_order_release);
    // The caller re-reads the file and re-inserts; account it as a miss.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.info.access_count += 1;
  it->second.info.last_access_seq = ++access_seq_;
  if (policy_) policy_->on_access(it->second.info);
  return it->second.data;
}

bool FileCache::insert(const std::string& key, FileDataPtr data) {
  if (!data) return false;
  const size_t size = data->size();
  std::lock_guard lock(mutex_);
  if (policy_ == nullptr) return false;  // cache disabled
  if (!policy_->admit(key, size)) return false;
  if (size > capacity_bytes_) return false;

  // Replace an existing entry under the same key.
  if (entries_.count(key) != 0) erase_locked(key);

  // Evict until the object fits.
  while (size_bytes_ + size > capacity_bytes_) {
    auto victim = policy_->choose_victim(size);
    if (!victim || entries_.count(*victim) == 0) return false;
    erase_locked(*victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  Entry entry;
  entry.data = std::move(data);
  entry.info = {key, size, /*access_count=*/1,
                /*last_access_seq=*/++access_seq_};
  entry.last_validated = now();
  policy_->on_insert(entry.info);
  size_bytes_ += size;
  entries_.emplace(key, std::move(entry));
  return true;
}

void FileCache::erase(const std::string& key) {
  std::lock_guard lock(mutex_);
  erase_locked(key);
  invalidation_epoch_.fetch_add(1, std::memory_order_release);
}

void FileCache::erase_locked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  size_bytes_ -= it->second.info.size;
  if (policy_) policy_->on_erase(key);
  entries_.erase(it);
}

void FileCache::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& [key, entry] : entries_) {
    if (policy_) policy_->on_erase(key);
  }
  entries_.clear();
  size_bytes_ = 0;
  invalidation_epoch_.fetch_add(1, std::memory_order_release);
}

size_t FileCache::entry_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

double FileCache::hit_rate() const {
  const uint64_t h = hits_.load();
  const uint64_t m = misses_.load();
  return (h + m) == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace cops::nserver
