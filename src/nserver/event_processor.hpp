// EventProcessor — the participant the N-Server adds to the Reactor so the
// pattern scales beyond one processor (paper, Section IV): "An Event
// Processor contains an event queue and a pool of threads that operate
// collaboratively to process ready events."
//
// The queue discipline is fixed at construction (generation time in
// CO₂P₃S terms): a plain FIFO, or — when option O8 (event scheduling) is
// on — a quota-based priority queue, the structural variation the paper
// describes replacing "a normal event queue ... by a priority queue".
//
// With zero threads the processor degenerates to inline execution on the
// submitting (dispatcher) thread — option O2 = No, the classic
// single-process event-driven (SPED) structure.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/quota_priority_queue.hpp"
#include "nserver/event.hpp"

namespace cops::nserver {

class Profiler;

struct EventProcessorConfig {
  std::string name = "processor";
  size_t threads = 2;  // 0 = inline execution on the submitter
  bool scheduling = false;
  std::vector<size_t> priority_quotas = {8, 1};
  // When set (O11), every queued event's wait time is recorded into the
  // queue_wait stage histogram.  Not owned; must outlive the processor.
  Profiler* profiler = nullptr;
};

class EventProcessor {
 public:
  explicit EventProcessor(EventProcessorConfig config);
  ~EventProcessor();
  EventProcessor(const EventProcessor&) = delete;
  EventProcessor& operator=(const EventProcessor&) = delete;

  // Enqueues (or, with zero threads, runs) an event.  Returns false after
  // stop().
  bool submit(Event event);

  // Current queue depth — the signal the overload controller watches.
  [[nodiscard]] size_t queue_depth() const;

  // Dynamic thread allocation (option O5): grow/shrink the worker pool.
  void resize(size_t threads);
  [[nodiscard]] size_t num_threads() const;

  // Overload action (adaptive O9, tier 2): park every quota level except
  // the highest — queued low-priority events stay queued, new ones still
  // enqueue, and workers drain only level 0 until resumed.  No-op without
  // event scheduling (O8) or in inline mode (nothing is ever queued).
  void pause_low_priority(bool paused);
  [[nodiscard]] bool low_priority_paused() const {
    return low_priority_paused_.load(std::memory_order_relaxed);
  }

  // Drains and joins.  Safe to call twice.
  void stop();

  [[nodiscard]] uint64_t processed() const { return processed_.load(); }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] bool inline_mode() const { return inline_mode_; }

 private:
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> retired;
  };

  std::optional<Event> pop();
  void worker_loop(std::shared_ptr<std::atomic<bool>> retired);
  void spawn_locked(size_t count);

  EventProcessorConfig config_;
  bool inline_mode_;
  // Exactly one of the two queues is used, chosen at construction.
  std::unique_ptr<MpmcQueue<Event>> fifo_;
  std::unique_ptr<QuotaPriorityQueue<Event>> prio_;

  mutable std::mutex mutex_;
  std::vector<Worker> workers_;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> low_priority_paused_{false};
  std::atomic<uint64_t> processed_{0};
};

}  // namespace cops::nserver
