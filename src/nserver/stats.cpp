#include "nserver/stats.hpp"

#include <cinttypes>
#include <cstdio>

namespace cops::nserver {
namespace {

void append_metric(std::string& out, const char* name, const char* type,
                   const char* help, uint64_t value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s %s\n%s %" PRIu64 "\n", name, help,
                name, type, name, value);
  out += buf;
}

void append_gauge_f(std::string& out, const char* name, const char* help,
                    double value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s gauge\n%s %.6f\n", name, help, name,
                name, value);
  out += buf;
}

// One Prometheus histogram family with a `stage` label per stage.  Bucket
// bounds are the log2-microsecond bucket uppers, expressed in seconds.
void append_stage_histograms(std::string& out,
                             const std::array<Histogram, kStageCount>& stages) {
  const char* name = "nserver_stage_latency_seconds";
  out += "# HELP nserver_stage_latency_seconds Request-cycle stage latency.\n";
  out += "# TYPE nserver_stage_latency_seconds histogram\n";
  char buf[256];
  for (size_t s = 0; s < kStageCount; ++s) {
    const char* stage = to_string(static_cast<Stage>(s));
    const Histogram& h = stages[s];
    uint64_t cumulative = 0;
    int64_t prev_upper = -1;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const uint64_t in_bucket = h.bucket_count(b);
      cumulative += in_bucket;
      const int64_t upper = Histogram::bucket_upper_micros(b);
      // Log2 buckets repeat the upper bound at the low end (1us); emit each
      // distinct bound once, and skip empty interior ones to keep the
      // exposition small (cumulative counts stay correct).
      if (upper == prev_upper) continue;
      prev_upper = upper;
      if (in_bucket == 0 && b + 1 < Histogram::kNumBuckets) continue;
      std::snprintf(buf, sizeof(buf), "%s_bucket{stage=\"%s\",le=\"%.6f\"} %" PRIu64
                    "\n",
                    name, stage, static_cast<double>(upper) / 1e6, cumulative);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{stage=\"%s\",le=\"+Inf\"} %" PRIu64 "\n", name,
                  stage, h.count());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum{stage=\"%s\"} %.6f\n", name, stage,
                  static_cast<double>(h.sum_micros()) / 1e6);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count{stage=\"%s\"} %" PRIu64 "\n",
                  name, stage, h.count());
    out += buf;
  }
}

void append_json_field(std::string& out, const char* key, uint64_t value,
                       bool trailing_comma = true) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const StatsSnapshot& s) {
  std::string out;
  out.reserve(4096);
  const auto& c = s.counters;
  append_metric(out, "nserver_connections_accepted_total", "counter",
                "Connections accepted (O11).", c.connections_accepted);
  append_metric(out, "nserver_connections_closed_total", "counter",
                "Connections closed.", c.connections_closed);
  append_metric(out, "nserver_connections_rejected_total", "counter",
                "Connections rejected by the max-connections limiter (O9).",
                c.connections_rejected);
  append_metric(out, "nserver_bytes_read_total", "counter",
                "Bytes read from client sockets.", c.bytes_read);
  append_metric(out, "nserver_bytes_sent_total", "counter",
                "Bytes written to client sockets.", c.bytes_sent);
  append_metric(out, "nserver_requests_total", "counter",
                "Requests decoded.", c.requests_decoded);
  append_metric(out, "nserver_replies_total", "counter",
                "Replies fully sent.", c.replies_sent);
  append_metric(out, "nserver_decode_errors_total", "counter",
                "Malformed requests.", c.decode_errors);
  append_metric(out, "nserver_events_processed_total", "counter",
                "Events run by the Event Processor.", c.events_processed);
  append_metric(out, "nserver_idle_shutdowns_total", "counter",
                "Connections reaped by the idle timer (O7).",
                c.idle_shutdowns);
  append_metric(out, "nserver_header_timeouts_total", "counter",
                "Connections reaped mid-request by the slowloris timer.",
                c.header_timeouts);
  append_metric(out, "nserver_overload_suspensions_total", "counter",
                "Acceptor suspensions by the overload controller (O9).",
                c.overload_suspensions);
  append_metric(out, "nserver_requests_shed_total", "counter",
                "Requests answered 503 by the overload shed tier (O9).",
                c.requests_shed);
  append_metric(out, "nserver_per_ip_rejections_total", "counter",
                "Accepts rejected by the per-IP connection cap.",
                c.per_ip_rejections);
  append_metric(out, "cops_send_writev_calls_total", "counter",
                "Completed scatter-gather writev calls on the send path.",
                c.send_writev_calls);
  append_metric(out, "cops_send_bytes_copied_total", "counter",
                "Reply bytes materialised into owned buffers before send.",
                c.send_bytes_copied);
  append_metric(out, "cops_send_sendfile_bytes_total", "counter",
                "Reply bytes moved by sendfile(2) (send_path=sendfile).",
                c.send_sendfile_bytes);
  append_metric(out, "cops_send_chunked_replies_total", "counter",
                "Replies framed with chunked transfer coding "
                "(body_framing=chunked).",
                c.send_chunked_replies);
  append_metric(out, "cops_pool_hits_total", "counter",
                "Pool allocations served from a free-list "
                "(buffer_mgmt=pooled).",
                c.pool_hits);
  append_metric(out, "cops_pool_misses_total", "counter",
                "Pool allocations that had to grow the pool.",
                c.pool_misses);
  append_metric(out, "cops_alloc_bytes_total", "counter",
                "Heap bytes acquired by the request-path pools.",
                c.pool_alloc_bytes);
  append_metric(out, "nserver_connections_open", "gauge",
                "Currently open connections.", s.connections_open);
  append_metric(out, "nserver_processor_queue_depth", "gauge",
                "Events waiting in the processor queue.", s.queue_depth);
  append_metric(out, "nserver_processor_threads", "gauge",
                "Event-processor worker threads.", s.processor_threads);
  append_metric(out, "nserver_file_io_pending", "gauge",
                "Pending emulated non-blocking file reads (O4).",
                s.file_io_pending);
  if (s.has_cache) {
    append_metric(out, "nserver_cache_hits_total", "counter",
                  "File-cache hits (O6).", s.cache_hits);
    append_metric(out, "nserver_cache_misses_total", "counter",
                  "File-cache misses.", s.cache_misses);
    append_metric(out, "nserver_cache_evictions_total", "counter",
                  "File-cache evictions.", s.cache_evictions);
    append_metric(out, "nserver_cache_invalidations_total", "counter",
                  "Entries dropped because the on-disk file changed.",
                  s.cache_invalidations);
    append_metric(out, "nserver_cache_bytes", "gauge",
                  "Bytes currently cached.", s.cache_bytes);
    append_metric(out, "nserver_cache_capacity_bytes", "gauge",
                  "Cache capacity.", s.cache_capacity_bytes);
    append_metric(out, "nserver_cache_entries", "gauge",
                  "Cached objects.", s.cache_entries);
    append_gauge_f(out, "nserver_cache_hit_rate",
                   "hits / (hits + misses) over the server's lifetime.",
                   c.cache_hit_rate);
    append_metric(out, "nserver_cache_l1_hits_total", "counter",
                  "Per-shard L1 tier hits, summed over shards "
                  "(cache_l1_entries > 0).",
                  c.l1_hits);
    append_metric(out, "nserver_cache_l1_misses_total", "counter",
                  "L1 tier misses (fell through to the shared L2).",
                  c.l1_misses);
    append_metric(out, "nserver_cache_l1_promotions_total", "counter",
                  "Entries promoted from the shared L2 into a shard L1.",
                  c.l1_promotions);
    append_gauge_f(out, "nserver_cache_l1_hit_rate",
                   "L1 hits / (hits + misses) summed over shards.",
                   c.l1_hit_rate);
  }
  if (!s.shards.empty()) {
    char buf[256];
    out += "# HELP nserver_shard_accepts_total Connections landed on this "
           "shard (accept_path=reuseport: kernel spread; dispatch: "
           "round-robin).\n# TYPE nserver_shard_accepts_total counter\n";
    for (const auto& sh : s.shards) {
      std::snprintf(buf, sizeof(buf),
                    "nserver_shard_accepts_total{shard=\"%" PRIu64 "\"} %"
                    PRIu64 "\n",
                    sh.shard, sh.accepts);
      out += buf;
    }
    out += "# HELP nserver_shard_connections_open Connections this shard "
           "currently owns.\n# TYPE nserver_shard_connections_open gauge\n";
    for (const auto& sh : s.shards) {
      std::snprintf(buf, sizeof(buf),
                    "nserver_shard_connections_open{shard=\"%" PRIu64 "\"} %"
                    PRIu64 "\n",
                    sh.shard, sh.connections_open);
      out += buf;
    }
    out += "# HELP nserver_shard_l1_hit_rate This shard's L1 cache hit "
           "rate.\n# TYPE nserver_shard_l1_hit_rate gauge\n";
    for (const auto& sh : s.shards) {
      std::snprintf(buf, sizeof(buf),
                    "nserver_shard_l1_hit_rate{shard=\"%" PRIu64 "\"} %.6f\n",
                    sh.shard, sh.l1_hit_rate);
      out += buf;
    }
  }
  if (s.has_overload) {
    const auto& o = s.overload;
    out += "# HELP cops_overload_pressure Resource pressure (0-1), per "
           "monitor and overall.\n# TYPE cops_overload_pressure gauge\n";
    char buf[256];
    for (const auto& m : o.monitors) {
      std::snprintf(buf, sizeof(buf),
                    "cops_overload_pressure{monitor=\"%s\"} %.6f\n",
                    m.name.c_str(), m.smoothed);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "cops_overload_pressure{monitor=\"overall\"} %.6f\n",
                  o.pressure);
    out += buf;
    append_metric(out, "cops_overload_tier", "gauge",
                  "Active overload action tier (0=none 1=conserve "
                  "2=pause-low-prio 3=shed 4=stop-accept).",
                  static_cast<uint64_t>(o.tier));
    append_metric(out, "cops_overload_retry_after_seconds", "gauge",
                  "Retry-After currently advertised on shed 503s.",
                  static_cast<uint64_t>(o.retry_after.count()));
    append_metric(out, "cops_overload_accept_stopped", "gauge",
                  "1 while the top tier holds the acceptor suspended.",
                  o.accept_stopped ? 1 : 0);
  }
  append_stage_histograms(out, c.stages);
  return out;
}

std::string render_json(const StatsSnapshot& s) {
  std::string out;
  out.reserve(4096);
  const auto& c = s.counters;
  out += "{";
  append_json_field(out, "connections_accepted", c.connections_accepted);
  append_json_field(out, "connections_closed", c.connections_closed);
  append_json_field(out, "connections_rejected", c.connections_rejected);
  append_json_field(out, "bytes_read", c.bytes_read);
  append_json_field(out, "bytes_sent", c.bytes_sent);
  append_json_field(out, "requests", c.requests_decoded);
  append_json_field(out, "replies", c.replies_sent);
  append_json_field(out, "decode_errors", c.decode_errors);
  append_json_field(out, "events_processed", c.events_processed);
  append_json_field(out, "idle_shutdowns", c.idle_shutdowns);
  append_json_field(out, "header_timeouts", c.header_timeouts);
  append_json_field(out, "overload_suspensions", c.overload_suspensions);
  append_json_field(out, "requests_shed", c.requests_shed);
  append_json_field(out, "per_ip_rejections", c.per_ip_rejections);
  append_json_field(out, "send_writev_calls", c.send_writev_calls);
  append_json_field(out, "send_bytes_copied", c.send_bytes_copied);
  append_json_field(out, "send_sendfile_bytes", c.send_sendfile_bytes);
  append_json_field(out, "send_chunked_replies", c.send_chunked_replies);
  append_json_field(out, "pool_hits", c.pool_hits);
  append_json_field(out, "pool_misses", c.pool_misses);
  append_json_field(out, "alloc_bytes", c.pool_alloc_bytes);
  append_json_field(out, "connections_open", s.connections_open);
  append_json_field(out, "queue_depth", s.queue_depth);
  append_json_field(out, "processor_threads", s.processor_threads);
  append_json_field(out, "file_io_pending", s.file_io_pending);
  if (s.has_cache) {
    out += "\"cache\":{";
    append_json_field(out, "hits", s.cache_hits);
    append_json_field(out, "misses", s.cache_misses);
    append_json_field(out, "evictions", s.cache_evictions);
    append_json_field(out, "invalidations", s.cache_invalidations);
    append_json_field(out, "bytes", s.cache_bytes);
    append_json_field(out, "capacity_bytes", s.cache_capacity_bytes);
    append_json_field(out, "entries", s.cache_entries);
    append_json_field(out, "l1_hits", c.l1_hits);
    append_json_field(out, "l1_misses", c.l1_misses);
    append_json_field(out, "l1_promotions", c.l1_promotions, false);
    out += "},";
  }
  out += "\"shards\":[";
  for (size_t i = 0; i < s.shards.size(); ++i) {
    const auto& sh = s.shards[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":%" PRIu64 ",\"accepts\":%" PRIu64
                  ",\"connections_open\":%" PRIu64 ",\"l1_hits\":%" PRIu64
                  ",\"l1_misses\":%" PRIu64 ",\"l1_promotions\":%" PRIu64
                  ",\"l1_hit_rate\":%.6f}%s",
                  sh.shard, sh.accepts, sh.connections_open, sh.l1_hits,
                  sh.l1_misses, sh.l1_promotions, sh.l1_hit_rate,
                  i + 1 < s.shards.size() ? "," : "");
    out += buf;
  }
  out += "],";
  if (s.has_overload) {
    const auto& o = s.overload;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"overload\":{\"pressure\":%.6f,\"tier\":%d,"
                  "\"tier_name\":\"%s\",\"retry_after_s\":%lld,"
                  "\"conserving\":%s,\"low_priority_paused\":%s,"
                  "\"shedding\":%s,\"accept_stopped\":%s,\"monitors\":[",
                  o.pressure, static_cast<int>(o.tier), to_string(o.tier),
                  static_cast<long long>(o.retry_after.count()),
                  o.conserving ? "true" : "false",
                  o.low_priority_paused ? "true" : "false",
                  o.shedding ? "true" : "false",
                  o.accept_stopped ? "true" : "false");
    out += buf;
    for (size_t i = 0; i < o.monitors.size(); ++i) {
      const auto& m = o.monitors[i];
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"raw\":%.6f,\"pressure\":%.6f,"
                    "\"smoothed\":%.6f}%s",
                    json_escape(m.name).c_str(), m.raw, m.pressure,
                    m.smoothed, i + 1 < o.monitors.size() ? "," : "");
      out += buf;
    }
    out += "]},";
  }
  out += "\"stages\":{";
  for (size_t i = 0; i < kStageCount; ++i) {
    const Histogram& h = c.stages[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64
                  ",\"mean_us\":%.1f,\"p50_us\":%lld,\"p99_us\":%lld,"
                  "\"max_us\":%lld}%s",
                  to_string(static_cast<Stage>(i)), h.count(),
                  h.mean_micros(),
                  static_cast<long long>(h.quantile_micros(0.5)),
                  static_cast<long long>(h.quantile_micros(0.99)),
                  static_cast<long long>(h.max_micros()),
                  i + 1 < kStageCount ? "," : "");
    out += buf;
  }
  out += "},\"connections\":[";
  for (size_t i = 0; i < s.connections.size(); ++i) {
    const auto& conn = s.connections[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%" PRIu64 ",\"peer\":\"%s\",\"bytes_read\":%" PRIu64
                  ",\"bytes_sent\":%" PRIu64 ",\"requests\":%" PRIu64 "}%s",
                  conn.id, json_escape(conn.peer).c_str(), conn.bytes_read,
                  conn.bytes_sent, conn.requests,
                  i + 1 < s.connections.size() ? "," : "");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace cops::nserver
