#include "nserver/processor_controller.hpp"

namespace cops::nserver {

int ProcessorController::tick() {
  const size_t depth = processor_.queue_depth();
  const size_t threads = processor_.num_threads();
  if (depth > config_.grow_threshold && threads < config_.max_threads) {
    idle_ticks_ = 0;
    processor_.resize(threads + 1);
    ++grows_;
    return 1;
  }
  if (depth == 0) {
    if (++idle_ticks_ >= config_.shrink_after_ticks &&
        threads > config_.min_threads) {
      idle_ticks_ = 0;
      processor_.resize(threads - 1);
      ++shrinks_;
      return -1;
    }
  } else {
    idle_ticks_ = 0;
  }
  return 0;
}

}  // namespace cops::nserver
