// TraceContext — per-request stage timestamps for the observability layer
// (option O11 and the O11+ admin export).
//
// One trace accompanies the single in-flight request of a connection (the
// pipeline-token invariant guarantees at most one).  Stages are stamped by
// whichever thread runs the step — dispatcher for read/write, processor for
// decode/handle/encode — so the fields are relaxed atomics: a stamp is a
// single store, a stage duration a single load, and no stamp synchronizes
// with another (the pipeline's own hand-offs already order them).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.hpp"

namespace cops::nserver {

// Monotonic microsecond stamp used throughout the trace.
[[nodiscard]] inline int64_t trace_now_us() {
  return to_micros(now().time_since_epoch());
}

struct TraceContext {
  // Request bytes arrived and the pipeline token left the socket.
  std::atomic<int64_t> read_done_us{0};
  // Decode hook produced a complete request.
  std::atomic<int64_t> decode_done_us{0};
  // Handle hook invoked.
  std::atomic<int64_t> handle_start_us{0};
  // Handle resolved (reply()/reply_raw()) — the Encode step begins.
  std::atomic<int64_t> resolve_us{0};
  // Encode hook produced wire bytes.
  std::atomic<int64_t> encode_done_us{0};

  static constexpr auto kRelaxed = std::memory_order_relaxed;

  void begin_request(int64_t now_us) {
    read_done_us.store(now_us, kRelaxed);
    decode_done_us.store(0, kRelaxed);
    handle_start_us.store(0, kRelaxed);
    resolve_us.store(0, kRelaxed);
    encode_done_us.store(0, kRelaxed);
  }

  // Elapsed micros from `since` to `until`, or -1 when either stamp is
  // missing (stage skipped, e.g. O3 = No removes Encode).
  [[nodiscard]] static int64_t elapsed(const std::atomic<int64_t>& since,
                                       const std::atomic<int64_t>& until) {
    const int64_t a = since.load(kRelaxed);
    const int64_t b = until.load(kRelaxed);
    if (a == 0 || b == 0 || b < a) return -1;
    return b - a;
  }
  [[nodiscard]] static int64_t elapsed(const std::atomic<int64_t>& since,
                                       int64_t until_us) {
    const int64_t a = since.load(kRelaxed);
    if (a == 0 || until_us == 0 || until_us < a) return -1;
    return until_us - a;
  }
};

}  // namespace cops::nserver
