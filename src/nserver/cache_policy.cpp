#include "nserver/cache_policy.hpp"

#include <algorithm>
#include <limits>

namespace cops::nserver {
namespace {

// Shared bookkeeping: every policy below keeps the live entry table and
// derives its victim choice from it.  O(n) victim scans are acceptable for
// web-cache entry counts (thousands); the paper's policies are defined by
// *what* they evict, not by their asymptotics.
class TableBackedPolicy : public CachePolicy {
 public:
  void on_insert(const CacheEntryInfo& info) override {
    entries_[info.key] = info;
  }
  void on_access(const CacheEntryInfo& info) override {
    entries_[info.key] = info;
  }
  void on_erase(const std::string& key) override { entries_.erase(key); }

 protected:
  std::unordered_map<std::string, CacheEntryInfo> entries_;
};

// Least Recently Used.
class LruPolicy : public TableBackedPolicy {
 public:
  std::optional<std::string> choose_victim(size_t) override {
    const CacheEntryInfo* victim = nullptr;
    for (const auto& [key, info] : entries_) {
      if (victim == nullptr || info.last_access_seq < victim->last_access_seq) {
        victim = &info;
      }
    }
    if (victim == nullptr) return std::nullopt;
    return victim->key;
  }
  [[nodiscard]] const char* name() const override { return "LRU"; }
};

// Least Frequently Used; LRU tie-break.
class LfuPolicy : public TableBackedPolicy {
 public:
  std::optional<std::string> choose_victim(size_t) override {
    const CacheEntryInfo* victim = nullptr;
    for (const auto& [key, info] : entries_) {
      if (victim == nullptr || info.access_count < victim->access_count ||
          (info.access_count == victim->access_count &&
           info.last_access_seq < victim->last_access_seq)) {
        victim = &info;
      }
    }
    if (victim == nullptr) return std::nullopt;
    return victim->key;
  }
  [[nodiscard]] const char* name() const override { return "LFU"; }
};

// LRU-MIN (Abrams et al., 1995): prefer evicting *large* documents so many
// small popular ones survive.  To admit an object of size S, evict the
// least-recently-used entry among those of size >= S; if none qualifies,
// halve S and retry.
class LruMinPolicy : public TableBackedPolicy {
 public:
  std::optional<std::string> choose_victim(size_t incoming_size) override {
    if (entries_.empty()) return std::nullopt;
    size_t threshold = std::max<size_t>(incoming_size, 1);
    while (true) {
      const CacheEntryInfo* victim = nullptr;
      for (const auto& [key, info] : entries_) {
        if (info.size >= threshold &&
            (victim == nullptr ||
             info.last_access_seq < victim->last_access_seq)) {
          victim = &info;
        }
      }
      if (victim != nullptr) return victim->key;
      if (threshold <= 1) break;
      threshold /= 2;
    }
    // Degenerate: everything is smaller than 1 byte threshold — plain LRU.
    const CacheEntryInfo* victim = nullptr;
    for (const auto& [key, info] : entries_) {
      if (victim == nullptr || info.last_access_seq < victim->last_access_seq) {
        victim = &info;
      }
    }
    return victim == nullptr ? std::nullopt
                             : std::optional<std::string>(victim->key);
  }
  [[nodiscard]] const char* name() const override { return "LRU-MIN"; }
};

// LRU-Threshold (Abrams et al., 1995): plain LRU, but objects above a size
// threshold are never cached at all.
class LruThresholdPolicy : public LruPolicy {
 public:
  explicit LruThresholdPolicy(size_t threshold) : threshold_(threshold) {}
  [[nodiscard]] bool admit(const std::string&, size_t size) const override {
    return size <= threshold_;
  }
  [[nodiscard]] const char* name() const override { return "LRU-Threshold"; }

 private:
  size_t threshold_;
};

// Hyper-G (Williams et al., 1996): evict by least frequency, breaking ties
// by least recent use, breaking remaining ties by largest size.
class HyperGPolicy : public TableBackedPolicy {
 public:
  std::optional<std::string> choose_victim(size_t) override {
    const CacheEntryInfo* victim = nullptr;
    for (const auto& [key, info] : entries_) {
      if (victim == nullptr) {
        victim = &info;
        continue;
      }
      if (info.access_count != victim->access_count) {
        if (info.access_count < victim->access_count) victim = &info;
      } else if (info.last_access_seq != victim->last_access_seq) {
        if (info.last_access_seq < victim->last_access_seq) victim = &info;
      } else if (info.size > victim->size) {
        victim = &info;
      }
    }
    if (victim == nullptr) return std::nullopt;
    return victim->key;
  }
  [[nodiscard]] const char* name() const override { return "Hyper-G"; }
};

// Custom: delegates the victim choice to the user hook (the N-Server's
// "implement a different cache replacement policy by simply adding code to
// a hook method").
class CustomPolicy : public TableBackedPolicy {
 public:
  explicit CustomPolicy(CustomEvictionHook hook) : hook_(std::move(hook)) {}
  std::optional<std::string> choose_victim(size_t incoming_size) override {
    if (!hook_) return std::nullopt;
    return hook_(entries_, incoming_size);
  }
  [[nodiscard]] const char* name() const override { return "Custom"; }

 private:
  CustomEvictionHook hook_;
};

}  // namespace

std::unique_ptr<CachePolicy> make_cache_policy(CachePolicyKind kind,
                                               size_t size_threshold,
                                               CustomEvictionHook hook) {
  switch (kind) {
    case CachePolicyKind::kNone: return nullptr;
    case CachePolicyKind::kLru: return std::make_unique<LruPolicy>();
    case CachePolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case CachePolicyKind::kLruMin: return std::make_unique<LruMinPolicy>();
    case CachePolicyKind::kLruThreshold:
      return std::make_unique<LruThresholdPolicy>(size_threshold);
    case CachePolicyKind::kHyperG: return std::make_unique<HyperGPolicy>();
    case CachePolicyKind::kCustom:
      return std::make_unique<CustomPolicy>(std::move(hook));
  }
  return nullptr;
}

}  // namespace cops::nserver
