#include "nserver/profiler.hpp"

#include <sstream>
#include <unordered_map>

namespace cops::nserver {

std::string ProfilerSnapshot::to_string() const {
  std::ostringstream out;
  out << "accepted=" << connections_accepted
      << " closed=" << connections_closed
      << " rejected=" << connections_rejected
      << " bytes_read=" << bytes_read << " bytes_sent=" << bytes_sent
      << " requests=" << requests_decoded << " replies=" << replies_sent
      << " decode_errors=" << decode_errors
      << " events=" << events_processed
      << " idle_shutdowns=" << idle_shutdowns
      << " header_timeouts=" << header_timeouts
      << " overload_suspensions=" << overload_suspensions
      << " requests_shed=" << requests_shed
      << " per_ip_rejections=" << per_ip_rejections
      << " cache_invalidations=" << cache_invalidations
      << " send_writev_calls=" << send_writev_calls
      << " send_bytes_copied=" << send_bytes_copied
      << " send_sendfile_bytes=" << send_sendfile_bytes
      << " send_chunked_replies=" << send_chunked_replies
      << " cache_hit_rate=" << cache_hit_rate
      << " l1_hits=" << l1_hits << " l1_misses=" << l1_misses
      << " l1_promotions=" << l1_promotions
      << " l1_hit_rate=" << l1_hit_rate;
  for (size_t i = 0; i < kStageCount; ++i) {
    if (stages[i].count() == 0) continue;
    out << "\n  " << nserver::to_string(static_cast<Stage>(i)) << ": "
        << stages[i].summary();
  }
  return out.str();
}

uint64_t Profiler::next_instance_id() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Profiler::StageShard& Profiler::local_shard() {
  // One cache per thread mapping profiler id → that thread's shard.  The
  // shard itself is owned by the profiler (shards_), so a thread exiting
  // never invalidates merged data; a profiler dying leaves a dangling map
  // entry that can never be looked up again (ids are not recycled).
  thread_local std::unordered_map<uint64_t, StageShard*> cache;
  auto it = cache.find(instance_id_);
  if (it != cache.end()) return *it->second;
  auto shard = std::make_unique<StageShard>();
  StageShard* raw = shard.get();
  {
    std::lock_guard lock(shards_mutex_);
    shards_.push_back(std::move(shard));
  }
  cache.emplace(instance_id_, raw);
  return *raw;
}

void Profiler::record_stage(Stage stage, int64_t micros) {
  if (micros < 0) return;  // stage skipped (missing stamp)
  local_shard().histograms[static_cast<size_t>(stage)].record(micros);
}

std::array<Histogram, kStageCount> Profiler::merged_stages() const {
  std::array<Histogram, kStageCount> merged;
  std::lock_guard lock(shards_mutex_);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < kStageCount; ++i) {
      merged[i].merge(shard->histograms[i]);
    }
  }
  return merged;
}

ProfilerSnapshot Profiler::snapshot(uint64_t events_processed,
                                    double cache_hit_rate,
                                    uint64_t cache_invalidations) const {
  ProfilerSnapshot s;
  s.connections_accepted = accepts_.load();
  s.connections_closed = closes_.load();
  s.connections_rejected = rejects_.load();
  s.bytes_read = bytes_read_.load();
  s.bytes_sent = bytes_sent_.load();
  s.requests_decoded = requests_.load();
  s.replies_sent = replies_.load();
  s.decode_errors = decode_errors_.load();
  s.idle_shutdowns = idle_shutdowns_.load();
  s.header_timeouts = header_timeouts_.load();
  s.overload_suspensions = suspensions_.load();
  s.requests_shed = sheds_.load();
  s.per_ip_rejections = per_ip_rejects_.load();
  s.send_writev_calls = send_writevs_.load();
  s.send_bytes_copied = send_copied_.load();
  s.send_sendfile_bytes = send_sendfile_.load();
  s.send_chunked_replies = send_chunked_.load();
  s.events_processed = events_processed;
  s.cache_hit_rate = cache_hit_rate;
  s.cache_invalidations = cache_invalidations;
  s.stages = merged_stages();
  return s;
}

void Profiler::reset() {
  accepts_.store(0);
  closes_.store(0);
  rejects_.store(0);
  bytes_read_.store(0);
  bytes_sent_.store(0);
  requests_.store(0);
  replies_.store(0);
  decode_errors_.store(0);
  idle_shutdowns_.store(0);
  header_timeouts_.store(0);
  suspensions_.store(0);
  sheds_.store(0);
  per_ip_rejects_.store(0);
  send_writevs_.store(0);
  send_copied_.store(0);
  send_sendfile_.store(0);
  send_chunked_.store(0);
  std::lock_guard lock(shards_mutex_);
  for (auto& shard : shards_) {
    for (auto& histogram : shard->histograms) histogram.reset();
  }
}

}  // namespace cops::nserver
