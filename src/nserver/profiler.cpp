#include "nserver/profiler.hpp"

#include <sstream>

namespace cops::nserver {

std::string ProfilerSnapshot::to_string() const {
  std::ostringstream out;
  out << "accepted=" << connections_accepted
      << " closed=" << connections_closed
      << " rejected=" << connections_rejected
      << " bytes_read=" << bytes_read << " bytes_sent=" << bytes_sent
      << " requests=" << requests_decoded << " replies=" << replies_sent
      << " decode_errors=" << decode_errors
      << " events=" << events_processed
      << " idle_shutdowns=" << idle_shutdowns
      << " overload_suspensions=" << overload_suspensions
      << " cache_hit_rate=" << cache_hit_rate;
  return out.str();
}

ProfilerSnapshot Profiler::snapshot(uint64_t events_processed,
                                    double cache_hit_rate) const {
  ProfilerSnapshot s;
  s.connections_accepted = accepts_.load();
  s.connections_closed = closes_.load();
  s.connections_rejected = rejects_.load();
  s.bytes_read = bytes_read_.load();
  s.bytes_sent = bytes_sent_.load();
  s.requests_decoded = requests_.load();
  s.replies_sent = replies_.load();
  s.decode_errors = decode_errors_.load();
  s.idle_shutdowns = idle_shutdowns_.load();
  s.overload_suspensions = suspensions_.load();
  s.events_processed = events_processed;
  s.cache_hit_rate = cache_hit_rate;
  return s;
}

void Profiler::reset() {
  accepts_.store(0);
  closes_.store(0);
  rejects_.store(0);
  bytes_read_.store(0);
  bytes_sent_.store(0);
  requests_.store(0);
  replies_.store(0);
  decode_errors_.store(0);
  idle_shutdowns_.store(0);
  suspensions_.store(0);
}

}  // namespace cops::nserver
