// Machine-readable server statistics (the O11+ admin export surface).
//
// A StatsSnapshot is everything an external scraper may assert against:
// the profiler's counters, the merged per-stage latency histograms, the
// live gauges (open connections, queue depth) and the cache counters.
// Server::stats_snapshot() assembles one; the renderers below serialize it
// as Prometheus text exposition format (/stats) or JSON (/stats.json), so
// tests and the load generator parse numbers instead of scraping logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nserver/overload_manager.hpp"
#include "nserver/profiler.hpp"

namespace cops::nserver {

// Per-connection byte/request gauges (one live connection each).
struct ConnectionStats {
  uint64_t id = 0;
  std::string peer;
  uint64_t bytes_read = 0;
  uint64_t bytes_sent = 0;
  uint64_t requests = 0;
};

// Per-shard gauges (one entry per dispatcher): where accepts landed and how
// the shard-local L1 cache tier is doing.  Rendered with a `shard` label in
// Prometheus and as a "shards" array in JSON.
struct ShardStats {
  uint64_t shard = 0;
  uint64_t accepts = 0;
  uint64_t connections_open = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l1_promotions = 0;
  double l1_hit_rate = 0.0;
};

struct StatsSnapshot {
  ProfilerSnapshot counters;

  // Gauges.
  uint64_t connections_open = 0;
  uint64_t queue_depth = 0;
  uint64_t processor_threads = 0;
  uint64_t file_io_pending = 0;

  // Cache (meaningful only when has_cache).
  bool has_cache = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_capacity_bytes = 0;
  uint64_t cache_entries = 0;

  // Adaptive overload manager (overload = adaptive): per-monitor pressure
  // gauges and the current action tier, so loadgen runs can scrape the
  // control loop's trajectory.
  bool has_overload = false;
  OverloadSnapshot overload;

  std::vector<ShardStats> shards;
  std::vector<ConnectionStats> connections;
};

// Prometheus text exposition format, one `nserver_*` family per counter and
// a classic cumulative-bucket histogram per stage (seconds).
[[nodiscard]] std::string render_prometheus(const StatsSnapshot& snapshot);

// The same data as a single JSON object (per-connection gauges included).
[[nodiscard]] std::string render_json(const StatsSnapshot& snapshot);

}  // namespace cops::nserver
