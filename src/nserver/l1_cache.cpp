#include "nserver/l1_cache.hpp"

namespace cops::nserver {

namespace {

size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

L1FileCache::L1FileCache(size_t entries, size_t entry_max_bytes,
                         std::chrono::milliseconds ttl)
    : mask_(round_up_pow2(entries == 0 ? 1 : entries) - 1),
      entry_max_bytes_(entry_max_bytes),
      ttl_(ttl),
      slots_(new std::atomic<std::shared_ptr<const Slot>>[mask_ + 1]) {}

FileDataPtr L1FileCache::lookup(const std::string& key, uint64_t epoch) {
  const auto slot = slots_[index_of(key)].load(std::memory_order_acquire);
  if (slot != nullptr && slot->key == key && slot->epoch == epoch &&
      ttl_.count() > 0 && now() - slot->cached_at < ttl_) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return slot->data;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void L1FileCache::promote(const std::string& key, FileDataPtr data,
                          uint64_t epoch) {
  if (data == nullptr || data->size() > entry_max_bytes_) return;
  auto slot = std::make_shared<const Slot>(
      Slot{key, std::move(data), epoch, now()});
  slots_[index_of(key)].store(std::move(slot), std::memory_order_release);
  promotions_.fetch_add(1, std::memory_order_relaxed);
}

void L1FileCache::clear() {
  for (size_t i = 0; i <= mask_; ++i) {
    slots_[i].store(nullptr, std::memory_order_release);
  }
}

double L1FileCache::hit_rate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return (h + m) == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace cops::nserver
