// FileIoService — non-blocking file I/O emulation (Proactor pattern).
//
// Java (and POSIX, practically) offers no non-blocking file reads, so the
// paper emulates them: a pool of threads performs the blocking operation and
// the result comes back as a Completion Event carrying an Asynchronous
// Completion Token (paper, Sections I/II: "non-blocking file I/O operations
// are emulated using a pool of threads").
//
// The caller provides an executor — typically EventProcessor::submit bound
// with EventKind::kCompletion and the issuing connection's priority — so the
// completion re-enters the normal event flow instead of running on the I/O
// thread.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "nserver/event.hpp"

namespace cops::nserver {

class UringFileEngine;

// An open-and-read file snapshot ("File Handle" + contents in one immutable
// object; shared by the cache and in-flight replies).  On the sendfile send
// path a large uncached file is *opened*, not read: `fd` then holds the
// descriptor (owned — closed on destruction) and `bytes` stays empty.
struct FileData {
  std::string path;
  std::string bytes;
  int64_t mtime_seconds = 0;
  int fd = -1;
  uint64_t fd_size = 0;

  FileData() = default;
  FileData(const FileData&) = delete;  // owns fd
  FileData& operator=(const FileData&) = delete;
  ~FileData();

  [[nodiscard]] size_t size() const {
    return fd >= 0 ? static_cast<size_t>(fd_size) : bytes.size();
  }
};

using FileDataPtr = std::shared_ptr<const FileData>;

// How fetch misses are materialised (see ServerOptions::send_path).
struct FileLoadOptions {
  // Open files >= sendfile_min_bytes for sendfile instead of reading them.
  bool open_for_sendfile = false;
  size_t sendfile_min_bytes = 0;
};
using FileCallback = std::function<void(Result<FileDataPtr>)>;
// Runs a completion on the appropriate event flow (see class comment).
using CompletionExecutor = std::function<void(std::function<void()>)>;

class FileIoService {
 public:
  // `use_uring` routes async loads through a UringFileEngine (one ring +
  // one engine thread doing IORING_OP_READ / READ_FIXED) instead of the
  // blocking-read thread pool.  Silently degrades to the pool when the
  // backend is compiled out or the runtime probe fails.
  explicit FileIoService(size_t threads, bool use_uring = false);
  ~FileIoService();

  // Blocking read of a whole file (used in synchronous completion mode O4,
  // and internally by the async path).
  static Result<FileDataPtr> read_file(const std::string& path);
  // Blocking load honouring FileLoadOptions: either a full read (cacheable,
  // memory-backed) or — for sendfile-eligible sizes — an open descriptor.
  static Result<FileDataPtr> load_file(const std::string& path,
                                       const FileLoadOptions& load);

  // Asynchronous read: performs the blocking I/O on the pool, then invokes
  // `callback` via `executor`.  `token` travels with the request purely for
  // the caller's correlation (ACT pattern); this service does not interpret
  // it.
  void async_read(std::string path, CompletionToken token,
                  FileCallback callback, CompletionExecutor executor);
  // async_read with FileLoadOptions (the sendfile-aware variant).
  void async_load(std::string path, FileLoadOptions load,
                  CompletionToken token, FileCallback callback,
                  CompletionExecutor executor);

  void stop();

  [[nodiscard]] size_t pending() const;
  [[nodiscard]] uint64_t completed() const { return completed_.load(); }
  // True when async loads run on the io_uring engine (requested and the
  // runtime probe passed).
  [[nodiscard]] bool using_uring() const { return engine_ != nullptr; }
  [[nodiscard]] UringFileEngine* uring_engine() { return engine_.get(); }

  // Test hook: runs just before load_file's ::open (both the blocking path
  // and the uring engine), after any metadata decision could have been made
  // from a *different* file.  The TOCTOU regression test swaps the file out
  // here and asserts the served bytes and mtime still agree.
  static void set_test_pre_open_hook(std::function<void(const std::string&)>);

 private:
  ThreadPool pool_;
  std::unique_ptr<UringFileEngine> engine_;
  std::atomic<uint64_t> completed_{0};
};

namespace detail {
// Invokes the FileIoService test pre-open hook (no-op when unset).
void invoke_test_pre_open_hook(const std::string& path);
}  // namespace detail

}  // namespace cops::nserver
