// FileIoService — non-blocking file I/O emulation (Proactor pattern).
//
// Java (and POSIX, practically) offers no non-blocking file reads, so the
// paper emulates them: a pool of threads performs the blocking operation and
// the result comes back as a Completion Event carrying an Asynchronous
// Completion Token (paper, Sections I/II: "non-blocking file I/O operations
// are emulated using a pool of threads").
//
// The caller provides an executor — typically EventProcessor::submit bound
// with EventKind::kCompletion and the issuing connection's priority — so the
// completion re-enters the normal event flow instead of running on the I/O
// thread.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "nserver/event.hpp"

namespace cops::nserver {

// An open-and-read file snapshot ("File Handle" + contents in one immutable
// object; shared by the cache and in-flight replies).
struct FileData {
  std::string path;
  std::string bytes;
  int64_t mtime_seconds = 0;

  [[nodiscard]] size_t size() const { return bytes.size(); }
};

using FileDataPtr = std::shared_ptr<const FileData>;
using FileCallback = std::function<void(Result<FileDataPtr>)>;
// Runs a completion on the appropriate event flow (see class comment).
using CompletionExecutor = std::function<void(std::function<void()>)>;

class FileIoService {
 public:
  explicit FileIoService(size_t threads);
  ~FileIoService();

  // Blocking read of a whole file (used in synchronous completion mode O4,
  // and internally by the async path).
  static Result<FileDataPtr> read_file(const std::string& path);

  // Asynchronous read: performs the blocking I/O on the pool, then invokes
  // `callback` via `executor`.  `token` travels with the request purely for
  // the caller's correlation (ACT pattern); this service does not interpret
  // it.
  void async_read(std::string path, CompletionToken token,
                  FileCallback callback, CompletionExecutor executor);

  void stop();

  [[nodiscard]] size_t pending() const { return pool_.queue_depth(); }
  [[nodiscard]] uint64_t completed() const { return completed_.load(); }

 private:
  ThreadPool pool_;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace cops::nserver
