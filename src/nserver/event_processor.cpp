#include "nserver/event_processor.hpp"

#include "nserver/profiler.hpp"
#include "nserver/trace_context.hpp"

namespace cops::nserver {

EventProcessor::EventProcessor(EventProcessorConfig config)
    : config_(std::move(config)), inline_mode_(config_.threads == 0) {
  if (config_.scheduling) {
    prio_ = std::make_unique<QuotaPriorityQueue<Event>>(config_.priority_quotas);
  } else {
    fifo_ = std::make_unique<MpmcQueue<Event>>();
  }
  if (!inline_mode_) {
    std::lock_guard lock(mutex_);
    spawn_locked(config_.threads);
  }
}

EventProcessor::~EventProcessor() { stop(); }

bool EventProcessor::submit(Event event) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  if (inline_mode_) {
    // No queue, no wait: the submitter runs the event directly.
    event.action();
    processed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (config_.profiler != nullptr) event.enqueued_us = trace_now_us();
  if (prio_) {
    return prio_->push(std::move(event),
                       static_cast<size_t>(event.priority < 0 ? 0
                                                              : event.priority));
  }
  return fifo_->push(std::move(event));
}

size_t EventProcessor::queue_depth() const {
  return prio_ ? prio_->size() : fifo_->size();
}

std::optional<Event> EventProcessor::pop() {
  if (prio_) return prio_->pop();
  return fifo_->pop();
}

void EventProcessor::worker_loop(std::shared_ptr<std::atomic<bool>> retired) {
  while (!retired->load(std::memory_order_acquire)) {
    auto event = pop();
    if (!event) return;  // shut down and drained
    if (config_.profiler != nullptr && event->enqueued_us != 0) {
      config_.profiler->record_stage(Stage::kQueueWait,
                                     trace_now_us() - event->enqueued_us);
    }
    event->action();
    processed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventProcessor::spawn_locked(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    auto retired = std::make_shared<std::atomic<bool>>(false);
    workers_.push_back(
        {std::thread([this, retired] { worker_loop(retired); }), retired});
  }
}

void EventProcessor::resize(size_t threads) {
  if (inline_mode_ || stopped_.load()) return;
  std::lock_guard lock(mutex_);
  // Reap previously retired workers.
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->retired->load() && it->thread.joinable()) {
      it->thread.detach();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
  const size_t current = workers_.size();
  if (threads > current) {
    spawn_locked(threads - current);
  } else if (threads < current) {
    size_t to_retire = current - threads;
    for (auto it = workers_.rbegin(); it != workers_.rend() && to_retire > 0;
         ++it) {
      if (!it->retired->load()) {
        it->retired->store(true, std::memory_order_release);
        --to_retire;
        // Wake a sleeper so it can observe the retire flag.
        Event nudge;
        nudge.kind = EventKind::kUser;
        nudge.action = [] {};
        if (prio_) {
          prio_->push(std::move(nudge), 0);
        } else {
          fifo_->push(std::move(nudge));
        }
      }
    }
  }
}

void EventProcessor::pause_low_priority(bool paused) {
  if (!prio_ || inline_mode_) return;
  low_priority_paused_.store(paused, std::memory_order_relaxed);
  prio_->set_paused_floor(paused ? 1 : static_cast<size_t>(-1));
}

size_t EventProcessor::num_threads() const {
  std::lock_guard lock(mutex_);
  size_t alive = 0;
  for (const auto& w : workers_) {
    if (!w.retired->load()) ++alive;
  }
  return alive;
}

void EventProcessor::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) {
    // Already stopped; still make sure threads are joined (idempotent).
  }
  if (prio_) prio_->shutdown();
  if (fifo_) fifo_->shutdown();
  std::vector<Worker> workers;
  {
    std::lock_guard lock(mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.thread.joinable()) w.thread.join();
  }
}

}  // namespace cops::nserver
