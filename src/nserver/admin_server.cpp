#include "nserver/admin_server.hpp"

#include <utility>

#include "common/logging.hpp"
#include "nserver/server.hpp"
#include "nserver/stats.hpp"

namespace cops::nserver {
namespace {

// Admin requests are tiny (a GET line plus a few headers); anything larger
// is not a scraper.
constexpr size_t kMaxAdminRequestBytes = 8 * 1024;

}  // namespace

std::string admin_response(int status, const char* reason,
                           const char* content_type, std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// One accepted admin connection: read a request, write the response, close.
// Runs entirely on the owning reactor's thread.
class AdminConnection : public net::EventHandler,
                        public std::enable_shared_from_this<AdminConnection> {
 public:
  AdminConnection(AdminServer& owner, uint64_t id, net::TcpSocket socket)
      : owner_(owner), id_(id), socket_(std::move(socket)) {}

  void start() {
    (void)socket_.set_nodelay(true);
    auto status =
        owner_.reactor_.register_handler(socket_.fd(), this, net::kReadable);
    if (!status.is_ok()) shutdown();
  }

  void handle_event(int /*fd*/, uint32_t readiness) override {
    if ((readiness & net::kErrored) != 0) {
      shutdown();
      return;
    }
    if ((readiness & net::kReadable) != 0) on_readable();
    if ((readiness & net::kWritable) != 0) flush();
  }

  void shutdown() {
    if (closed_) return;
    closed_ = true;
    if (socket_.fd() >= 0) {
      (void)owner_.reactor_.deregister(socket_.fd());
      socket_.close();
    }
    owner_.remove(id_);  // may destroy `this` once the caller returns
  }

 private:
  void on_readable() {
    auto n = socket_.read(in_);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      shutdown();
      return;
    }
    if (responding_) return;  // ignore pipelined bytes; we close after one
    const size_t header_end = in_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (in_.readable() > kMaxAdminRequestBytes) {
        respond(admin_response(431, "Request Header Fields Too Large",
                              "text/plain; charset=utf-8", "too large\n"));
      }
      return;
    }
    std::string_view head = in_.view().substr(0, header_end);
    const size_t line_end = head.find("\r\n");
    std::string_view line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string_view::npos
                           ? std::string_view::npos
                           : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos) {
      respond(admin_response(400, "Bad Request", "text/plain; charset=utf-8",
                            "bad request\n"));
      return;
    }
    std::string method(line.substr(0, sp1));
    std::string path(line.substr(sp1 + 1, sp2 - sp1 - 1));
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    respond(owner_.respond(method, path));
  }

  void respond(std::string response) {
    responding_ = true;
    out_.append(response);
    flush();
  }

  void flush() {
    auto n = socket_.write(out_);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      shutdown();
      return;
    }
    if (out_.empty()) {
      if (responding_) shutdown();
      return;
    }
    auto status =
        owner_.reactor_.update_interest(socket_.fd(), net::kWritable);
    if (!status.is_ok()) shutdown();
  }

  AdminServer& owner_;
  uint64_t id_;
  net::TcpSocket socket_;
  ByteBuffer in_;
  ByteBuffer out_;
  bool responding_ = false;
  bool closed_ = false;
};

AdminServer::AdminServer(Server& server, net::Reactor& reactor)
    : server_(&server), reactor_(reactor) {}

AdminServer::AdminServer(net::Reactor& reactor, Responder responder)
    : responder_(std::move(responder)), reactor_(reactor) {}

AdminServer::~AdminServer() = default;

Status AdminServer::open(const net::InetAddress& addr, int backlog) {
  acceptor_ = std::make_unique<net::Acceptor>(
      reactor_, [this](net::TcpSocket socket) { on_accept(std::move(socket)); });
  auto status = acceptor_->open(addr, backlog);
  if (!status.is_ok()) {
    acceptor_.reset();
    return status;
  }
  auto local = acceptor_->local_address();
  if (local.is_ok()) port_ = local.value().port();
  COPS_INFO("admin endpoint listening on "
            << (local.is_ok() ? local.value().to_string() : std::string("?")));
  return Status::ok();
}

void AdminServer::close() {
  // remove() mutates connections_; drain via a moved copy.
  auto doomed = std::move(connections_);
  connections_.clear();
  for (auto& [id, conn] : doomed) conn->shutdown();
  if (acceptor_) {
    acceptor_->close();
    acceptor_.reset();
  }
}

void AdminServer::on_accept(net::TcpSocket socket) {
  const uint64_t id = next_id_++;
  auto conn = std::make_shared<AdminConnection>(*this, id, std::move(socket));
  connections_.emplace(id, conn);
  conn->start();
}

void AdminServer::remove(uint64_t id) { connections_.erase(id); }

std::string AdminServer::respond(const std::string& method,
                                 const std::string& path) const {
  if (method != "GET" && method != "HEAD") {
    return admin_response(405, "Method Not Allowed",
                         "text/plain; charset=utf-8", "GET only\n");
  }
  if (responder_) return responder_(method, path);
  return server_respond(method, path);
}

std::string AdminServer::server_respond(const std::string& method,
                                        const std::string& path) const {
  (void)method;
  if (path == "/healthz") {
    // Load-balancer health probes key off this: flip to 503 while the
    // server is draining or has suspended accepting under overload, so the
    // LB routes around us before clients see refused connects.
    if (server_->draining() || !server_->accepting()) {
      return admin_response(503, "Service Unavailable",
                            "text/plain; charset=utf-8",
                            server_->draining() ? "draining\n"
                                                : "overloaded\n");
    }
    return admin_response(200, "OK", "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/stats") {
    return admin_response(200, "OK",
                         "text/plain; version=0.0.4; charset=utf-8",
                         render_prometheus(server_->stats_snapshot()));
  }
  if (path == "/stats.json") {
    return admin_response(200, "OK", "application/json",
                         render_json(server_->stats_snapshot()));
  }
  if (path == "/") {
    return admin_response(200, "OK", "text/plain; charset=utf-8",
                         "cops-nserver admin\n"
                         "  /healthz     liveness\n"
                         "  /stats       Prometheus text format\n"
                         "  /stats.json  JSON\n");
  }
  return admin_response(404, "Not Found", "text/plain; charset=utf-8",
                       "not found\n");
}

}  // namespace cops::nserver
