#include "nserver/overload_control.hpp"

namespace cops::nserver {

void OverloadController::watch_queue(std::string name,
                                     std::function<size_t()> depth) {
  queues_.emplace_back(std::move(name), std::move(depth));
}

void OverloadController::unwatch_queue(const std::string& name) {
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (it->first == name) {
      queues_.erase(it);
      return;
    }
  }
}

OverloadController::Decision OverloadController::evaluate() {
  size_t max_depth = 0;
  size_t live = 0;
  for (const auto& [name, depth_fn] : queues_) {
    const size_t depth = depth_fn();
    if (depth == kQueueGone) continue;  // dead queue: not a depth
    ++live;
    if (depth > max_depth) max_depth = depth;
  }
  if (!overloaded_) {
    if (live > 0 && max_depth > high_) {
      overloaded_ = true;
      ++suspends_;
      return Decision::kSuspend;
    }
  } else {
    // Resume when every *live* queue is below the low watermark — or when
    // no live queue remains at all (every watched queue was removed or
    // reports kQueueGone), since a depth that can no longer be measured
    // can never drain and must not wedge the acceptor suspended.
    if (live == 0 || max_depth < low_) {
      overloaded_ = false;
      return Decision::kResume;
    }
  }
  return Decision::kNoChange;
}

}  // namespace cops::nserver
