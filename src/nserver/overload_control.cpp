#include "nserver/overload_control.hpp"

namespace cops::nserver {

void OverloadController::watch_queue(std::string name,
                                     std::function<size_t()> depth) {
  queues_.emplace_back(std::move(name), std::move(depth));
}

OverloadController::Decision OverloadController::evaluate() {
  size_t max_depth = 0;
  for (const auto& [name, depth_fn] : queues_) {
    const size_t depth = depth_fn();
    if (depth > max_depth) max_depth = depth;
  }
  if (!overloaded_) {
    if (max_depth > high_) {
      overloaded_ = true;
      ++suspends_;
      return Decision::kSuspend;
    }
  } else {
    // Resume only when *every* queue is below the low watermark.
    if (max_depth < low_) {
      overloaded_ = false;
      return Decision::kResume;
    }
  }
  return Decision::kNoChange;
}

}  // namespace cops::nserver
