// AdminServer — the O11+ observability endpoint (Envoy-admin style).
//
// A second, independent listener that serves the profiler's statistics over
// HTTP:
//
//   GET /healthz     liveness probe ("ok")
//   GET /stats       Prometheus text exposition format
//   GET /stats.json  the same data as one JSON object (+ per-connection
//                    byte/request gauges)
//
// The listener and every admin connection live on the shard-0 dispatcher
// (no extra thread); request handling is a map lookup plus a snapshot of
// relaxed atomics, so scrapes never contend with the serving hot path.
// The protocol handling is deliberately minimal — one GET per connection,
// response, close — so the nserver library does not depend on the HTTP
// protocol library layered above it.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/acceptor.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::nserver {

class Server;
class AdminConnection;

class AdminServer {
 public:
  // `reactor` must be the reactor whose thread will run the listener
  // (shard 0 in the N-Server); open() must run before that reactor's loop
  // starts, or on its thread.
  AdminServer(Server& server, net::Reactor& reactor);
  ~AdminServer();

  Status open(const net::InetAddress& addr, int backlog = 16);
  [[nodiscard]] uint16_t port() const { return port_; }

  // Closes the listener and every admin connection.  Reactor thread.
  void close();

 private:
  friend class AdminConnection;

  void on_accept(net::TcpSocket socket);
  void remove(uint64_t id);
  // Routes a request path to a response body; sets content type and status.
  [[nodiscard]] std::string respond(const std::string& method,
                                    const std::string& path) const;

  Server& server_;
  net::Reactor& reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unordered_map<uint64_t, std::shared_ptr<AdminConnection>> connections_;
  uint64_t next_id_ = 1;
  uint16_t port_ = 0;
};

}  // namespace cops::nserver
