// AdminServer — the O11+ observability endpoint (Envoy-admin style).
//
// A second, independent listener that serves the profiler's statistics over
// HTTP:
//
//   GET /healthz     liveness probe ("ok")
//   GET /stats       Prometheus text exposition format
//   GET /stats.json  the same data as one JSON object (+ per-connection
//                    byte/request gauges)
//
// The listener and every admin connection live on the shard-0 dispatcher
// (no extra thread); request handling is a map lookup plus a snapshot of
// relaxed atomics, so scrapes never contend with the serving hot path.
// The protocol handling is deliberately minimal — one GET per connection,
// response, close — so the nserver library does not depend on the HTTP
// protocol library layered above it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/acceptor.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::nserver {

class Server;
class AdminConnection;

// Builds a complete minimal HTTP/1.1 response (status line, Content-Type,
// Content-Length, Connection: close) for admin-style endpoints.
std::string admin_response(int status, const char* reason,
                           const char* content_type, std::string_view body);

class AdminServer {
 public:
  // Routes a request (method, path) to a complete HTTP response; runs on
  // the owning reactor's thread.
  using Responder =
      std::function<std::string(const std::string&, const std::string&)>;

  // `reactor` must be the reactor whose thread will run the listener
  // (shard 0 in the N-Server); open() must run before that reactor's loop
  // starts, or on its thread.
  AdminServer(Server& server, net::Reactor& reactor);
  // Generic form: any component with a reactor (e.g. the cluster load
  // balancer) can expose its own stats through the same machinery.
  AdminServer(net::Reactor& reactor, Responder responder);
  ~AdminServer();

  Status open(const net::InetAddress& addr, int backlog = 16);
  [[nodiscard]] uint16_t port() const { return port_; }

  // Closes the listener and every admin connection.  Reactor thread.
  void close();

 private:
  friend class AdminConnection;

  void on_accept(net::TcpSocket socket);
  void remove(uint64_t id);
  // Routes a request path to a response body; sets content type and status.
  [[nodiscard]] std::string respond(const std::string& method,
                                    const std::string& path) const;
  // The default routing table, serving `server_`'s snapshot.
  [[nodiscard]] std::string server_respond(const std::string& method,
                                           const std::string& path) const;

  Server* server_ = nullptr;  // null when constructed with a Responder
  Responder responder_;
  net::Reactor& reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unordered_map<uint64_t, std::shared_ptr<AdminConnection>> connections_;
  uint64_t next_id_ = 1;
  uint16_t port_ = 0;
};

}  // namespace cops::nserver
