// DebugTracer — debug-mode internal event trace (option O10).
//
// "If the server is generated in debug mode, then all internal events that
// are triggered in the server are written into a file.  The user can trace
// this file to get a snapshot of what happened during the time an error
// condition occurred" (paper, Section IV).
//
// Events are buffered in a bounded ring (so tracing a long run cannot
// exhaust memory) and flushed to the trace file on dump() or destruction.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "nserver/event.hpp"

namespace cops::nserver {

class DebugTracer {
 public:
  explicit DebugTracer(std::string path, size_t ring_capacity = 65536)
      : path_(std::move(path)), capacity_(ring_capacity) {}
  ~DebugTracer();

  void record(EventKind kind, uint64_t connection_id, std::string detail);

  // Writes the ring contents (oldest first) to the trace file; clears it.
  void dump();

  [[nodiscard]] size_t buffered() const;
  [[nodiscard]] uint64_t total_recorded() const { return total_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct TraceRecord {
    TimePoint at;
    EventKind kind;
    uint64_t connection_id;
    std::string detail;
  };

  std::string path_;
  size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<TraceRecord> ring_;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace cops::nserver
