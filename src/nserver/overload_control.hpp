// OverloadController — automatic overload control (option O9).
//
// The paper's second (non-trivial) mechanism: "the N-Server is configured to
// generate code that queries the length of multiple queues ... If there is a
// queue whose length exceeds its specified high watermark, then new
// connection requests are postponed until the length drops below a specified
// low watermark."  Watching *multiple* queues handles multi-bottleneck
// overload (CPU and disk) per Voigt & Gunningburg.
//
// The controller is polled from the Server's housekeeping timer; when it
// flips state the Server suspends/resumes the Acceptor.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cops::nserver {

class OverloadController {
 public:
  OverloadController(size_t high_watermark, size_t low_watermark)
      : high_(high_watermark), low_(low_watermark) {}

  // A depth callback may return this sentinel to mean "the queue no longer
  // exists" (its subsystem was stopped or swapped out).  evaluate() ignores
  // such readings instead of treating SIZE_MAX as a real depth — otherwise
  // a dead queue's stale callback would hold the acceptor suspended
  // forever, since a queue that is gone can never drain below the low
  // watermark.
  static constexpr size_t kQueueGone = static_cast<size_t>(-1);

  // Registers a queue to watch (e.g. the reactive Event Processor's queue
  // and the file-I/O queue).  `depth` is sampled on every evaluation.
  void watch_queue(std::string name, std::function<size_t()> depth);
  // Stops watching a queue.  Safe while suspended: the next evaluate()
  // judges only the remaining queues, so removing the one that tripped the
  // high watermark lets the controller resume.
  void unwatch_queue(const std::string& name);

  enum class Decision { kNoChange, kSuspend, kResume };

  // Evaluates all watched queues against the watermarks.
  Decision evaluate();

  [[nodiscard]] bool overloaded() const { return overloaded_; }
  [[nodiscard]] uint64_t suspend_count() const { return suspends_; }
  [[nodiscard]] size_t high_watermark() const { return high_; }
  [[nodiscard]] size_t low_watermark() const { return low_; }

  // O9 shed tier: when enabled, requests arriving while overloaded should
  // be answered with an explicit rejection (HTTP 503 + Retry-After) rather
  // than queued.  The flag mirrors `overloaded()` — same hysteresis — so a
  // shed burst ends exactly when accept resumes.
  void set_shed(bool enabled) { shed_enabled_ = enabled; }
  [[nodiscard]] bool should_shed() const {
    return shed_enabled_ && overloaded_;
  }

 private:
  size_t high_;
  size_t low_;
  bool overloaded_ = false;
  bool shed_enabled_ = false;
  uint64_t suspends_ = 0;
  std::vector<std::pair<std::string, std::function<size_t()>>> queues_;
};

}  // namespace cops::nserver
