#include "nserver/options.hpp"

namespace cops::nserver {

const char* to_string(CompletionMode mode) {
  return mode == CompletionMode::kAsynchronous ? "Asynchronous" : "Synchronous";
}

const char* to_string(ThreadAllocation alloc) {
  return alloc == ThreadAllocation::kStatic ? "Static" : "Dynamic";
}

const char* to_string(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kNone: return "None";
    case CachePolicyKind::kLru: return "LRU";
    case CachePolicyKind::kLfu: return "LFU";
    case CachePolicyKind::kLruMin: return "LRU-MIN";
    case CachePolicyKind::kLruThreshold: return "LRU-Threshold";
    case CachePolicyKind::kHyperG: return "Hyper-G";
    case CachePolicyKind::kCustom: return "Custom";
  }
  return "?";
}

const char* to_string(ServerMode mode) {
  return mode == ServerMode::kProduction ? "Production" : "Debug";
}

const char* to_string(StatsExport mode) {
  return mode == StatsExport::kNone ? "None" : "AdminHttp";
}

const char* to_string(SendPath path) {
  switch (path) {
    case SendPath::kCopy: return "Copy";
    case SendPath::kWritev: return "Writev";
    case SendPath::kSendfile: return "Sendfile";
  }
  return "?";
}

const char* to_string(BufferMgmt mgmt) {
  return mgmt == BufferMgmt::kPerRequest ? "PerRequest" : "Pooled";
}

const char* to_string(BodyFraming framing) {
  return framing == BodyFraming::kContentLength ? "ContentLength" : "Chunked";
}

const char* to_string(UpstreamMode mode) {
  return mode == UpstreamMode::kPerRequest ? "PerRequest" : "Pooled";
}

const char* to_string(OverloadMode mode) {
  return mode == OverloadMode::kWatermark ? "Watermark" : "Adaptive";
}

const char* to_string(AcceptPath path) {
  return path == AcceptPath::kDispatch ? "Dispatch" : "Reuseport";
}

const char* to_string(IoBackend backend) {
  return backend == IoBackend::kEpoll ? "Epoll" : "IoUring";
}

std::string ServerOptions::validate() const {
  if (dispatcher_threads < 1) {
    return "O1: dispatcher_threads must be >= 1";
  }
  if (separate_processor_pool && processor_threads == 0 &&
      thread_allocation == ThreadAllocation::kStatic) {
    return "O2/O5: a static separate processor pool needs >= 1 thread";
  }
  if (!separate_processor_pool && event_scheduling) {
    return "O2/O8: event scheduling requires a separate processor pool "
           "(events must queue to be reordered)";
  }
  if (!separate_processor_pool &&
      completion == CompletionMode::kSynchronous &&
      !allow_blocking_dispatcher) {
    return "O2/O4: synchronous completions would block the dispatcher; "
           "use a separate processor pool or asynchronous completions";
  }
  if (thread_allocation == ThreadAllocation::kDynamic &&
      (min_processor_threads == 0 ||
       min_processor_threads > max_processor_threads)) {
    return "O5: dynamic allocation needs 1 <= min <= max processor threads";
  }
  if (completion == CompletionMode::kAsynchronous && file_io_threads == 0) {
    return "O4: asynchronous completions need >= 1 file I/O thread";
  }
  if (cache_policy != CachePolicyKind::kNone && cache_capacity_bytes == 0) {
    return "O6: file cache enabled with zero capacity";
  }
  if (event_scheduling && priority_quotas.empty()) {
    return "O8: event scheduling needs at least one priority level";
  }
  if (overload_control &&
      queue_low_watermark >= queue_high_watermark) {
    return "O9: low watermark must be below the high watermark";
  }
  if (shutdown_long_idle && idle_timeout.count() <= 0) {
    return "O7: idle timeout must be positive";
  }
  if (header_read_timeout.count() < 0) {
    return "O7: header read timeout must be >= 0";
  }
  if (overload_shed && !overload_control) {
    return "O9: overload_shed requires overload_control";
  }
  if (overload_shed && overload_retry_after.count() <= 0) {
    return "O9: overload_retry_after must be positive";
  }
  if (overload_mode == OverloadMode::kAdaptive) {
    if (!overload_control) {
      return "overload: adaptive mode requires overload_control";
    }
    if (overload_target_delay.count() <= 0 || overload_interval.count() <= 0) {
      return "overload: adaptive mode needs positive target delay and "
             "interval (CoDel parameters)";
    }
    if (overload_ewma_alpha <= 0.0 || overload_ewma_alpha > 1.0) {
      return "overload: EWMA alpha must be in (0, 1]";
    }
    if (overload_hysteresis < 0.0 || overload_hysteresis >= 0.5) {
      return "overload: hysteresis must be in [0, 0.5)";
    }
    if (overload_retry_after_max < overload_retry_after) {
      return "overload: overload_retry_after_max must be >= "
             "overload_retry_after";
    }
  }
  if (send_path == SendPath::kSendfile && sendfile_min_bytes == 0) {
    return "send_path: sendfile needs a positive size threshold "
           "(sendfile_min_bytes) so small files still populate the cache";
  }
  if (buffer_mgmt == BufferMgmt::kPooled && read_buffer_block_bytes == 0) {
    return "buffer_mgmt: pooled buffers need a positive block size "
           "(read_buffer_block_bytes)";
  }
  if (body_framing == BodyFraming::kChunked && reply_chunk_bytes == 0) {
    return "body_framing: chunked replies need a positive chunk window "
           "(reply_chunk_bytes)";
  }
  if (upstream_mode == UpstreamMode::kPooled && upstream_pool_cap == 0) {
    return "upstream_mode: pooled upstream connections need a positive "
           "per-backend cap (upstream_pool_cap)";
  }
  if (cache_l1_entries > 0 && cache_policy == CachePolicyKind::kNone) {
    return "cache: the per-shard L1 fronts the shared policy cache; "
           "cache_l1_entries needs a cache_policy (the L2)";
  }
  if (cache_l1_entries > 0 && cache_l1_entry_max_bytes == 0) {
    return "cache: the L1 byte bound is entries x entry size; "
           "cache_l1_entry_max_bytes must be positive";
  }
  if (stats_export == StatsExport::kAdminHttp && !profiling) {
    return "O11+: the admin export serves the profiler's statistics; "
           "enable profiling";
  }
  return {};
}

}  // namespace cops::nserver
