#include "nserver/uring_file_engine.hpp"

#include "net/uring.hpp"

#if COPS_URING_ENABLED

#include <fcntl.h>
#include <sys/eventfd.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"

namespace cops::nserver {

namespace {
constexpr unsigned kRingEntries = 64;
constexpr size_t kSlabBytes = 64 * 1024;
constexpr size_t kSlabCount = 16;
// user_data of the eventfd wake read; load reads carry their in-flight
// slot index, which stays far below this.
constexpr uint64_t kWakeData = ~uint64_t{0};
}  // namespace

struct UringFileEngine::Impl {
  struct Request {
    std::string path;
    FileLoadOptions load;
    Callback done;
  };
  struct Inflight {
    std::shared_ptr<FileData> data;
    Callback done;
    int fd = -1;
    size_t size = 0;
    size_t off = 0;
    int slot = -1;  // registered-buffer slot; -1 = plain READ
    bool active = false;
  };

  net::UringRing ring;
  BufferPool slab_source{kSlabBytes, /*max_free=*/kSlabCount};
  std::unique_ptr<net::RegisteredBufferPool> regbufs;
  int wake_fd = -1;
  uint64_t wake_buf = 0;
  bool wake_armed = false;

  std::thread thread;
  std::mutex mu;
  std::deque<Request> queue;
  std::atomic<size_t> pending{0};
  std::atomic<bool> stopping{false};
  std::atomic<uint64_t> fixed_reads{0};
  std::atomic<uint64_t> plain_reads{0};

  std::vector<Inflight> inflight;
  std::vector<size_t> free_slots;
  size_t active = 0;

  ~Impl() {
    if (wake_fd >= 0) ::close(wake_fd);
  }

  size_t alloc_inflight() {
    if (free_slots.empty()) {
      inflight.emplace_back();
      free_slots.push_back(inflight.size() - 1);
    }
    const size_t idx = free_slots.back();
    free_slots.pop_back();
    inflight[idx] = Inflight{};
    inflight[idx].active = true;
    ++active;
    return idx;
  }

  void complete(size_t idx, Result<FileDataPtr> result) {
    Inflight& inf = inflight[idx];
    if (inf.slot >= 0 && regbufs) regbufs->release(inf.slot);
    if (inf.fd >= 0) ::close(inf.fd);
    auto done = std::move(inf.done);
    inf = Inflight{};
    free_slots.push_back(idx);
    --active;
    pending.fetch_sub(1, std::memory_order_relaxed);
    done(std::move(result));
  }

  io_uring_sqe* sqe_or_flush() {
    io_uring_sqe* sqe = ring.get_sqe();
    if (sqe == nullptr) {
      ring.submit();
      sqe = ring.get_sqe();
    }
    return sqe;
  }

  // Submits the next READ (or READ_FIXED) for an in-flight load; falls back
  // to a blocking read-to-completion if the SQ stays full (cannot happen
  // with <= kRingEntries loads in flight, but never hang a request on it).
  void submit_read(size_t idx) {
    Inflight& inf = inflight[idx];
    io_uring_sqe* sqe = sqe_or_flush();
    if (sqe == nullptr) {
      finish_blocking(idx);
      return;
    }
    if (inf.slot >= 0) {
      sqe->opcode = IORING_OP_READ_FIXED;
      sqe->addr = reinterpret_cast<uint64_t>(regbufs->data(inf.slot)) + inf.off;
      sqe->buf_index = static_cast<uint16_t>(inf.slot);
    } else {
      sqe->opcode = IORING_OP_READ;
      sqe->addr = reinterpret_cast<uint64_t>(inf.data->bytes.data()) + inf.off;
    }
    sqe->fd = inf.fd;
    sqe->len = static_cast<uint32_t>(inf.size - inf.off);
    sqe->off = inf.off;
    sqe->user_data = idx;
  }

  void finish_blocking(size_t idx) {
    Inflight& inf = inflight[idx];
    while (inf.off < inf.size) {
      const ssize_t n = ::pread(inf.fd, inf.data->bytes.data() + inf.off,
                                inf.size - inf.off, inf.off);
      if (n < 0) {
        if (errno == EINTR) continue;
        complete(idx, Status::from_errno("read"));
        return;
      }
      if (n == 0) {
        complete(idx, Status::io_error("short read on " + inf.data->path));
        return;
      }
      inf.off += static_cast<size_t>(n);
    }
    finish_ok(idx);
  }

  void finish_ok(size_t idx) {
    Inflight& inf = inflight[idx];
    if (inf.slot >= 0) {
      std::memcpy(inf.data->bytes.data(), regbufs->data(inf.slot), inf.size);
      fixed_reads.fetch_add(1, std::memory_order_relaxed);
    } else {
      plain_reads.fetch_add(1, std::memory_order_relaxed);
    }
    complete(idx, FileDataPtr(std::move(inf.data)));
  }

  // Opens + fstats (same TOCTOU-safe contract as FileIoService::load_file)
  // and either completes immediately (error, sendfile fd, empty file) or
  // submits the first kernel read.
  void start(Request r) {
    detail::invoke_test_pre_open_hook(r.path);
    const size_t idx = alloc_inflight();
    Inflight& inf = inflight[idx];
    inf.done = std::move(r.done);
    int fd = ::open(r.path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT || errno == ENOTDIR) {
        complete(idx, Status::not_found(r.path));
      } else {
        complete(idx, Status::from_errno("open"));
      }
      return;
    }
    inf.fd = fd;
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      complete(idx, Status::from_errno("fstat"));
      return;
    }
    if (!S_ISREG(st.st_mode)) {
      complete(idx, Status::invalid_argument(r.path + " is not a regular file"));
      return;
    }
    auto data = std::make_shared<FileData>();
    data->path = r.path;
    data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
    if (r.load.open_for_sendfile &&
        static_cast<size_t>(st.st_size) >= r.load.sendfile_min_bytes) {
      data->fd = fd;
      data->fd_size = static_cast<uint64_t>(st.st_size);
      inf.fd = -1;  // ownership moved into the FileData
      complete(idx, FileDataPtr(std::move(data)));
      return;
    }
    inf.size = static_cast<size_t>(st.st_size);
    data->bytes.resize(inf.size);
    inf.data = std::move(data);
    if (inf.size == 0) {
      finish_ok(idx);
      return;
    }
    if (regbufs && inf.size <= regbufs->slab_bytes()) {
      inf.slot = regbufs->acquire();  // -1 when all slabs busy → plain READ
    }
    submit_read(idx);
  }

  void handle_cqe(const io_uring_cqe& cqe) {
    if (cqe.user_data == kWakeData) {
      wake_armed = false;
      return;
    }
    const size_t idx = static_cast<size_t>(cqe.user_data);
    if (idx >= inflight.size() || !inflight[idx].active) return;
    Inflight& inf = inflight[idx];
    if (cqe.res < 0) {
      errno = -cqe.res;
      complete(idx, Status::from_errno("read"));
      return;
    }
    if (cqe.res == 0) {
      complete(idx, Status::io_error("short read on " + inf.data->path));
      return;
    }
    inf.off += static_cast<size_t>(cqe.res);
    if (inf.off < inf.size) {
      submit_read(idx);
      return;
    }
    finish_ok(idx);
  }

  void arm_wake() {
    if (wake_armed) return;
    io_uring_sqe* sqe = sqe_or_flush();
    if (sqe == nullptr) return;  // retried next loop pass
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd;
    sqe->addr = reinterpret_cast<uint64_t>(&wake_buf);
    sqe->len = sizeof(wake_buf);
    sqe->user_data = kWakeData;
    wake_armed = true;
  }

  void run() {
    while (true) {
      arm_wake();
      ring.submit_and_wait(1, -1);
      io_uring_cqe cqe;
      while (ring.pop_cqe(cqe)) handle_cqe(cqe);
      std::deque<Request> batch;
      {
        std::lock_guard<std::mutex> lock(mu);
        batch.swap(queue);
      }
      for (auto& r : batch) start(std::move(r));
      if (stopping.load(std::memory_order_acquire) && active == 0) {
        std::lock_guard<std::mutex> lock(mu);
        if (queue.empty()) return;
      }
    }
  }

  void wake() {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
};

UringFileEngine::UringFileEngine() : impl_(std::make_unique<Impl>()) {}

UringFileEngine::~UringFileEngine() { stop(); }

std::unique_ptr<UringFileEngine> UringFileEngine::create() {
  if (!net::uring_available()) return nullptr;
  auto engine = std::unique_ptr<UringFileEngine>(new UringFileEngine());
  Impl& impl = *engine->impl_;
  if (!impl.ring.init(kRingEntries).is_ok()) return nullptr;
  // Blocking eventfd on purpose: io_uring poll-arms the READ internally; a
  // non-blocking one would complete instantly with EAGAIN.
  impl.wake_fd = ::eventfd(0, EFD_CLOEXEC);
  if (impl.wake_fd < 0) return nullptr;
  auto regbufs =
      std::make_unique<net::RegisteredBufferPool>(impl.slab_source, kSlabCount);
  if (regbufs->register_with(impl.ring).is_ok()) {
    impl.regbufs = std::move(regbufs);
  } else {
    // RLIMIT_MEMLOCK too small for pinned slabs — plain READs still work.
    COPS_WARN("io_uring buffer registration failed; file loads use plain READ");
  }
  impl.thread = std::thread([&impl] { impl.run(); });
  return engine;
}

void UringFileEngine::submit(std::string path, FileLoadOptions load,
                             Callback done) {
  Impl& impl = *impl_;
  impl.pending.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    impl.queue.push_back(
        Impl::Request{std::move(path), load, std::move(done)});
  }
  impl.wake();
}

void UringFileEngine::stop() {
  Impl& impl = *impl_;
  if (!impl.thread.joinable()) return;
  impl.stopping.store(true, std::memory_order_release);
  impl.wake();
  impl.thread.join();
  // A submit that raced the final drain: complete it here, blocking.
  std::deque<Impl::Request> leftover;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    leftover.swap(impl.queue);
  }
  for (auto& r : leftover) {
    impl.pending.fetch_sub(1, std::memory_order_relaxed);
    r.done(FileIoService::load_file(r.path, r.load));
  }
}

size_t UringFileEngine::pending() const { return impl_->pending.load(); }
uint64_t UringFileEngine::fixed_reads() const {
  return impl_->fixed_reads.load();
}
uint64_t UringFileEngine::plain_reads() const {
  return impl_->plain_reads.load();
}

}  // namespace cops::nserver

#else  // !COPS_URING_ENABLED

namespace cops::nserver {

struct UringFileEngine::Impl {};

UringFileEngine::UringFileEngine() = default;
UringFileEngine::~UringFileEngine() = default;

std::unique_ptr<UringFileEngine> UringFileEngine::create() { return nullptr; }
void UringFileEngine::submit(std::string path, FileLoadOptions load,
                             Callback done) {
  done(FileIoService::load_file(path, load));
}
void UringFileEngine::stop() {}
size_t UringFileEngine::pending() const { return 0; }
uint64_t UringFileEngine::fixed_reads() const { return 0; }
uint64_t UringFileEngine::plain_reads() const { return 0; }

}  // namespace cops::nserver

#endif  // COPS_URING_ENABLED
