// Connection — the Communicator Component of the N-Server.
//
// Owns one accepted socket and drives the generated halves of the five-step
// request cycle: Read Request (socket → in buffer) and Send Reply (out
// buffer → socket).  The application-dependent steps in between run on
// Event Processor threads; this class is only ever mutated on its reactor
// (dispatcher) thread — worker threads reach it exclusively through
// Reactor::post, which is what makes the hook code lock-free.
//
// Pipeline token invariant: per connection exactly one of these holds —
//   (a) read interest is armed (waiting for request bytes),
//   (b) an event for this connection is queued/executing in a processor, or
//   (c) a reply is draining through the out buffer.
// The token passes (a)→(b) on read, (b)→(c) on reply, (c)→(b) after the
// reply drains (pipelined requests) or (c)→(a) when the in-buffer is empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/buffer_pool.hpp"
#include "common/byte_buffer.hpp"
#include "common/clock.hpp"
#include "common/send_queue.hpp"
#include "net/event_handler.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "nserver/trace_context.hpp"

namespace cops::nserver {

class Server;

class Connection : public net::EventHandler,
                   public std::enable_shared_from_this<Connection> {
 public:
  Connection(Server& server, net::Reactor& reactor, net::TcpSocket socket,
             uint64_t id, size_t shard_index);
  ~Connection() override;

  // Registers read interest and fires the on_connect hook.  Reactor thread.
  void start();

  // net::EventHandler — invoked by the Event Dispatcher.
  void handle_event(int fd, uint32_t readiness) override;

  // ---- reactor-thread operations (workers invoke via Reactor::post) -----
  // Moves the reply's segments into the send queue and starts draining.
  // When `completes_request` is true the pipeline continues after the
  // drain.
  void queue_send(EncodedReply reply, bool completes_request);
  // Thin forwarding overload for callers holding flat bytes (greetings,
  // raw sends); the string is moved, never copied, into the queue.
  void queue_send(std::string bytes, bool completes_request);
  // Re-arms read interest (decode needs more data).
  void resume_reading();
  // Continues the pipeline without sending (finish()-style resolutions).
  void continue_pipeline();
  void close(const std::string& reason);

  // ---- accessors ---------------------------------------------------------
  [[nodiscard]] uint64_t id() const { return id_; }
  [[nodiscard]] uint64_t generation() const { return generation_; }
  [[nodiscard]] size_t shard_index() const { return shard_index_; }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] net::Reactor& reactor() { return reactor_; }
  [[nodiscard]] const std::string& peer() const { return peer_; }
  [[nodiscard]] TimePoint last_activity() const { return last_activity_; }
  [[nodiscard]] bool pipeline_active() const { return pipeline_active_; }
  // When the connection is stuck mid-request (bytes buffered, nothing the
  // decoder could parse), the instant the partial request *started* —
  // deliberately not refreshed as more bytes trickle in, so a slowloris
  // peer cannot stay under the header_read_timeout by drip-feeding.
  // TimePoint{} = not mid-request.  Reactor thread only.
  [[nodiscard]] TimePoint partial_since() const { return partial_since_; }

  // Request-scheduling priority (option O8).  Written only inside the
  // single active pipeline step; the Event/Communicator priority crosscut
  // from Table 2.
  [[nodiscard]] int priority() const { return priority_; }
  void set_priority(int priority) { priority_ = priority; }

  // Per-connection application state (the hooks' session object).
  std::shared_ptr<void>& app_state() { return app_state_; }

  // Per-request stage timeline (O11+).  The pipeline token invariant means
  // exactly one request is in flight per connection, so one TraceContext per
  // connection suffices; stamps are written by whichever thread holds the
  // token and read at the next stage boundary.
  [[nodiscard]] TraceContext& trace() { return trace_; }

  // Lifetime byte/request totals for this connection (admin /stats.json
  // gauges).  Relaxed atomics: written on the hot path, read on scrape.
  [[nodiscard]] uint64_t bytes_read_total() const {
    return bytes_read_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t bytes_sent_total() const {
    return bytes_sent_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }
  void note_request() {
    requests_total_.fetch_add(1, std::memory_order_relaxed);
  }

  // The decode buffer; touched by the reactor only while the pipeline is
  // inactive, and by the worker only while it is active.
  ByteBuffer& in_buffer() { return in_; }

  void set_close_after_reply() { close_after_reply_ = true; }

 private:
  friend class Server;

  void on_readable();
  void on_writable();
  void profiler_bytes_read(size_t n);
  // Moves the pipeline token from socket to processor.
  void start_pipeline();
  // A completed reply finished draining: continue or close.
  void after_reply_sent();
  void flush_out();
  void update_interest();

  Server& server_;
  net::Reactor& reactor_;
  net::TcpSocket socket_;
  const uint64_t id_;
  const uint64_t generation_;
  const size_t shard_index_;
  std::string peer_;

  ByteBuffer in_;
  // buffer_mgmt=pooled: where in_'s backing store came from and returns to
  // (in ~Connection — never earlier, a worker may still be decoding from
  // in_ when close() runs).  The connection holds its own reference so the
  // return outlives any Server teardown ordering.
  std::shared_ptr<BufferPool> buffer_pool_;
  SendQueue out_;
  std::shared_ptr<void> app_state_;
  TraceContext trace_;
  std::atomic<uint64_t> bytes_read_total_{0};
  std::atomic<uint64_t> bytes_sent_total_{0};
  std::atomic<uint64_t> requests_total_{0};

  std::atomic<bool> closed_{false};
  bool want_read_ = false;
  bool want_write_ = false;
  bool registered_ = false;
  bool pipeline_active_ = false;
  bool reply_pending_drain_ = false;  // a completed reply is in out_
  bool close_after_reply_ = false;
  int priority_ = 0;
  TimePoint last_activity_;
  TimePoint partial_since_{};  // slowloris clock (see partial_since())
  // Per-IP accounting key (empty = not counted, e.g. outbound connections);
  // Server::remove_connection releases the slot.
  std::string ip_key_;

  static std::atomic<uint64_t> next_generation_;
};

}  // namespace cops::nserver
