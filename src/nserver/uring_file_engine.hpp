// UringFileEngine — the real Proactor behind FileIoService when
// `io_backend = io_uring`.
//
// The paper emulates non-blocking file I/O with a pool of threads issuing
// blocking reads.  With io_uring the emulation disappears: one engine
// thread owns a ring, file loads become IORING_OP_READ submissions, and the
// kernel performs the read while the engine thread sleeps in
// io_uring_enter.  Small files (at most one slab) read through registered
// buffers (IORING_OP_READ_FIXED, slabs pinned from a BufferPool via
// RegisteredBufferPool) so steady-state loads recycle pre-registered memory
// instead of faulting fresh pages; large files chain plain READs directly
// into the destination string.
//
// Metadata stays TOCTOU-safe: the engine opens first (O_RDONLY | O_CLOEXEC)
// and fstats the descriptor it will read from — identical contract to
// FileIoService::load_file.  sendfile-eligible loads complete immediately
// with the open descriptor (the send path wants the fd, not bytes).
//
// Completion callbacks run on the engine thread; FileIoService wraps them
// with the caller's CompletionExecutor so results re-enter the normal event
// flow exactly like pool-path completions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::nserver {

class UringFileEngine {
 public:
  using Callback = std::function<void(Result<FileDataPtr>)>;

  // nullptr when the io_uring backend is compiled out or the runtime probe
  // fails — the caller keeps the thread-pool emulation.
  static std::unique_ptr<UringFileEngine> create();
  ~UringFileEngine();
  UringFileEngine(const UringFileEngine&) = delete;
  UringFileEngine& operator=(const UringFileEngine&) = delete;

  // Queues a load; `done` runs on the engine thread.  Safe from any thread.
  void submit(std::string path, FileLoadOptions load, Callback done);

  // Finishes in-flight loads, completes queued ones, joins the thread.
  void stop();

  [[nodiscard]] size_t pending() const;
  // Reads served through registered buffers vs. plain READs (introspection
  // for tests and the perf report).
  [[nodiscard]] uint64_t fixed_reads() const;
  [[nodiscard]] uint64_t plain_reads() const;

  struct Impl;

 private:
  UringFileEngine();
  std::unique_ptr<Impl> impl_;
};

}  // namespace cops::nserver
