// ServerOptions — the runtime image of the N-Server pattern template options
// (Table 1 of the paper).
//
// In CO₂P₃S the options are chosen in the pattern GUI and the framework is
// *generated* with feature code included or excluded.  In this library the
// same twelve options configure the framework at construction time; the
// copsgen generator (src/gdp) emits a scaffold that pins them as constants
// (plus a constexpr traits header used by the generative-vs-dynamic ablation
// bench).  Option numbering follows Table 1.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cops::nserver {

// O4: how slow operations (file I/O, ...) complete.
enum class CompletionMode {
  kAsynchronous,  // proactor emulation: worker pool + completion events
  kSynchronous,   // hooks block their event-processor thread
};

// O5: event-processor thread allocation.
enum class ThreadAllocation {
  kStatic,   // fixed pool size
  kDynamic,  // ProcessorController resizes the pool with load
};

// O6: file cache replacement policies (five built in + custom hook).
enum class CachePolicyKind {
  kNone,
  kLru,
  kLfu,
  kLruMin,
  kLruThreshold,
  kHyperG,
  kCustom,
};

// O10: generation mode.
enum class ServerMode {
  kProduction,
  kDebug,  // every internal event is traced to a file
};

// O11+: how the profiler's statistics are exported.
enum class StatsExport {
  kNone,       // in-process snapshot() only
  kAdminHttp,  // second listener serving /stats, /stats.json, /healthz
};

// Send-path option: how the Send Reply step moves encoded replies to the
// socket.  kCopy is the original single-string path (Encode materialises
// one flat buffer); kWritev keeps header bytes and refcounted body slices
// as separate segments and drains them with one scatter-gather syscall
// (zero body copies on cache hits); kSendfile additionally routes large
// uncached files through sendfile(2) so their bytes never enter user space.
enum class SendPath {
  kCopy,
  kWritev,
  kSendfile,
};

// Buffer-management option: how the receive half of the request cycle gets
// its memory.  kPerRequest is the naive path — a fresh read buffer per
// connection, a fresh request object and RequestContext per request.
// kPooled recycles all three: connection read buffers come from a per-shard
// BufferPool, Decode hooks reuse a per-connection scratch request parsed
// in place, and RequestContexts are allocated from a per-shard slab
// free-list — zero steady-state allocations per keep-alive request.
enum class BufferMgmt {
  kPerRequest,
  kPooled,
};

// Body-framing option: how the Encode Reply step frames response bodies on
// the wire.  kContentLength is the classic static-content shape — one
// length header, body bytes verbatim.  kChunked advertises
// "Transfer-Encoding: chunked" and frames large HTTP/1.1 bodies in
// fixed-size chunks (RFC 7230 §4.1), the prerequisite for streaming replies
// whose length is unknown up front; the ~10-byte-per-chunk framing lines
// are owned segments riding the same writev/sendfile gather loop, so the
// body bytes themselves stay zero-copy.  Request-side chunked *decoding* is
// always on — this option only selects the reply framing.
enum class BodyFraming {
  kContentLength,
  kChunked,
};

// Upstream-connection option for proxy deployments (S4, appended after
// body_framing): how the streaming L7 data plane (src/proxy) manages its
// server-facing connections.  kPerRequest opens a fresh upstream connection
// per proxied request (the shape of the original examples/http_proxy);
// kPooled keeps completed upstream connections in per-backend keep-alive
// pools with caps, idle reuse, and a single stale-connection retry.  The
// core Server ignores it — the generated proxy config unit and
// proxy::ProxyServer consume it.
enum class UpstreamMode {
  kPerRequest,
  kPooled,
};

// Overload-control option (S5, appended after proxy_upstream to preserve
// the paper's option numbering): which O9 control loop the server runs.
// kWatermark is the paper's static two-watermark gate on queue *length*
// (OverloadController).  kAdaptive replaces it with the OverloadManager:
// CoDel-style admission on measured queue *delay* plus connection / pool /
// heap pressure monitors, EWMA smoothing, and graduated actions (conserve
// timeouts → pause low-priority quota classes → shed 503 → stop accept)
// instead of the single suspend/resume lever.
enum class OverloadMode {
  kWatermark,
  kAdaptive,
};

// Accept-path option (S6, appended after overload to preserve the paper's
// option numbering): how accepted connections reach their shard.
// kDispatch is the classic single-listener shape — one Acceptor on shard 0
// round-robins sockets to the other reactors (a cross-thread post per
// accept).  kReuseport opens one SO_REUSEPORT listener per shard; the
// kernel spreads incoming connections and every accept lands directly on
// the shard that will own the connection — the dispatch hop disappears and
// the accept path becomes shared-nothing.
enum class AcceptPath {
  kDispatch,
  kReuseport,
};

// I/O-backend option (S7, appended after accept_path to preserve the
// paper's option numbering): which kernel event-notification machinery
// drives the Reactors.  kEpoll is the classic readiness loop (level-
// triggered epoll, unchanged default).  kIoUring swaps the Poller for a
// completion-driven io_uring backend — poll re-arms ride the batched SQE
// submission inside the reactor tick instead of costing epoll_ctl syscalls,
// listeners use multishot IORING_OP_ACCEPT, socket I/O routes through
// per-thread rings, and FileIoService's thread-pool emulation becomes a
// real kernel Proactor (IORING_OP_READ into registered buffers).  Requested
// io_uring degrades to epoll when the build disables COPS_WITH_LIBURING or
// the runtime probe fails (old kernel, seccomp) — see
// Server::effective_io_backend().
enum class IoBackend {
  kEpoll,
  kIoUring,
};

[[nodiscard]] const char* to_string(CompletionMode mode);
[[nodiscard]] const char* to_string(ThreadAllocation alloc);
[[nodiscard]] const char* to_string(CachePolicyKind kind);
[[nodiscard]] const char* to_string(ServerMode mode);
[[nodiscard]] const char* to_string(StatsExport mode);
[[nodiscard]] const char* to_string(SendPath path);
[[nodiscard]] const char* to_string(BufferMgmt mgmt);
[[nodiscard]] const char* to_string(BodyFraming framing);
[[nodiscard]] const char* to_string(UpstreamMode mode);
[[nodiscard]] const char* to_string(OverloadMode mode);
[[nodiscard]] const char* to_string(AcceptPath path);
[[nodiscard]] const char* to_string(IoBackend backend);

struct ServerOptions {
  // O1: # of dispatcher threads (1, or 2..N reactors sharding connections).
  int dispatcher_threads = 1;

  // O2: separate thread pool for event handling.  When false the dispatcher
  // processes events inline (classic single-threaded Reactor / SPED).
  bool separate_processor_pool = true;
  size_t processor_threads = 2;

  // O3: encoding/decoding required.  When false the Decode and Encode steps
  // are skipped (Fig. 2 structural variant) and handle() sees raw bytes.
  bool encode_decode = true;

  // O4: completion events.
  CompletionMode completion = CompletionMode::kAsynchronous;
  size_t file_io_threads = 2;  // proactor-emulation pool (async mode)
  // Opt-in for the SPED combination (no separate pool + synchronous
  // completions): every hook, including blocking file I/O, runs inline on
  // the dispatcher thread.  Rejected by default because one slow request
  // stalls the whole event loop; the deterministic sim harness requires it
  // precisely because it serialises everything onto one thread.
  bool allow_blocking_dispatcher = false;

  // O5: event thread allocation.
  ThreadAllocation thread_allocation = ThreadAllocation::kStatic;
  size_t min_processor_threads = 1;
  size_t max_processor_threads = 8;

  // O6: file cache.
  CachePolicyKind cache_policy = CachePolicyKind::kNone;
  size_t cache_capacity_bytes = 20 * 1024 * 1024;  // paper: 20 MB for COPS-HTTP
  size_t cache_size_threshold = 64 * 1024;         // LRU-Threshold parameter
  // How long a cached entry may be served before its on-disk mtime/size are
  // re-checked (0 = every lookup re-checks).
  std::chrono::milliseconds cache_revalidate_interval{1000};

  // O7: shutdown long-idle connections.
  bool shutdown_long_idle = false;
  std::chrono::milliseconds idle_timeout{30'000};
  // O7 extension (slowloris defense): a separate, shorter deadline for a
  // connection that has sent *part* of a request (bytes buffered, nothing
  // parseable yet) — stuck mid-request-line/headers.  Distinct from the
  // keep-alive idle timeout above, which only covers quiet-between-requests
  // connections.  0 = disabled.  Works independently of O7.
  std::chrono::milliseconds header_read_timeout{0};

  // O8: event scheduling.
  bool event_scheduling = false;
  // quotas[i] = events level i may consume per scheduling round (level 0 is
  // the highest priority).
  std::vector<size_t> priority_quotas = {8, 1};

  // O9: overload control.
  bool overload_control = false;
  size_t queue_high_watermark = 20;  // paper's Fig. 6 settings
  size_t queue_low_watermark = 5;
  size_t max_connections = 0;  // 0 = unlimited (mechanism 1 disabled)
  // O9 shed tier: while overloaded, answer protocol requests with an
  // explicit rejection (HTTP: 503 + Retry-After) instead of only suspending
  // accept — upstream load balancers then see overload as a fast, countable
  // signal rather than hung connects.  Requires overload_control.
  bool overload_shed = false;
  std::chrono::seconds overload_retry_after{1};  // advertised Retry-After
  // Per-client-IP connection cap enforced at accept (0 = off); rejected
  // accepts are counted and closed immediately.
  size_t max_connections_per_ip = 0;

  // O10: mode.
  ServerMode mode = ServerMode::kProduction;
  std::string debug_trace_path = "nserver_debug_trace.log";

  // O11: performance profiling.
  bool profiling = false;

  // O11+: statistics export.  kAdminHttp binds a second listener (on the
  // shard-0 dispatcher — no extra thread) serving the profiler's counters
  // and stage histograms in Prometheus text (/stats), JSON (/stats.json),
  // and a liveness probe (/healthz).  Requires profiling.
  StatsExport stats_export = StatsExport::kNone;
  std::string admin_host = "127.0.0.1";
  uint16_t admin_port = 0;  // 0 = kernel-assigned

  // O12: logging.
  bool logging = false;

  // Send-path option (appended after O12, like stats_export, to preserve
  // the paper's option numbering).  See enum SendPath.
  SendPath send_path = SendPath::kWritev;
  // kSendfile only: files at or above this size that miss the cache are
  // opened (not read) and transmitted with sendfile(2); smaller files take
  // the normal read-and-cache path.
  size_t sendfile_min_bytes = 256 * 1024;

  // Buffer-management option (appended after send_path to preserve the
  // paper's option numbering).  See enum BufferMgmt.
  BufferMgmt buffer_mgmt = BufferMgmt::kPooled;
  // kPooled only: initial capacity of pooled connection read buffers (they
  // still grow past it on demand, and the grown capacity is what the pool
  // recycles).  Also sizes the RequestContext slab blocks.
  size_t read_buffer_block_bytes = 16 * 1024;

  // Body-framing option (appended after buffer_mgmt to preserve the paper's
  // option numbering).  See enum BodyFraming.
  BodyFraming body_framing = BodyFraming::kContentLength;
  // kChunked only: HTTP/1.1 file replies at or above this size are sent
  // chunk-framed; smaller bodies (and every error/listing/HEAD reply) keep
  // Content-Length, where the length is already known and chunk overhead
  // buys nothing.
  size_t chunked_min_bytes = 4 * 1024;
  // kChunked only: size of each chunk window on the reply side.
  size_t reply_chunk_bytes = 64 * 1024;

  // Upstream-connection option (appended after body_framing; proxy
  // deployments only — see enum UpstreamMode and src/proxy).
  UpstreamMode upstream_mode = UpstreamMode::kPerRequest;
  // kPooled only: per-backend connection cap (in-flight + idle).
  size_t upstream_pool_cap = 8;

  // Overload-control option (S5, appended after upstream_mode).  Only
  // meaningful with overload_control on; see enum OverloadMode.
  OverloadMode overload_mode = OverloadMode::kWatermark;
  // kAdaptive only — CoDel admission parameters: the control loop sheds
  // when the *minimum* event-queue delay over the trailing interval holds
  // above the target (a standing queue, not a burst).
  std::chrono::milliseconds overload_target_delay{5};
  std::chrono::milliseconds overload_interval{100};
  // kAdaptive only: per-monitor EWMA weight (0 < alpha <= 1) and tier
  // hysteresis (each action releases at its engage threshold minus this).
  double overload_ewma_alpha = 0.3;
  double overload_hysteresis = 0.10;
  // kAdaptive only: upper clamp for the pressure-decay-derived Retry-After
  // on shed 503s (the lower clamp is overload_retry_after).
  std::chrono::seconds overload_retry_after_max{30};
  // kAdaptive only: heap budget for the pool-allocated-bytes monitor
  // (0 disables that monitor).
  size_t overload_max_heap_bytes = 0;

  // Accept-path option (S6, appended after overload).  See enum AcceptPath.
  AcceptPath accept_path = AcceptPath::kDispatch;

  // Two-tier file cache: entry count of each shard's L1 (0 disables the L1
  // and every lookup goes to the shared policy cache).  The L1 is a bounded
  // per-shard read-mostly tier in front of the policy-driven shared L2 —
  // lock-free-to-read, so cache hits never touch the L2 mutex; one shard's
  // miss fills the L2 and every other shard then promotes the entry into
  // its own L1 without cross-shard write contention.  Requires a cache
  // policy (the L2); sized in entries, bounded in bytes by the product with
  // cache_l1_entry_max_bytes.
  size_t cache_l1_entries = 0;
  // Entries larger than this stay L2-only (keeps the L1's byte bound tight
  // while the big files still enjoy the policy cache).
  size_t cache_l1_entry_max_bytes = 256 * 1024;

  // I/O-backend option (S7, appended after accept_path).  See enum
  // IoBackend.
  IoBackend io_backend = IoBackend::kEpoll;

  // --- non-option runtime knobs -----------------------------------------
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = kernel-assigned
  int listen_backlog = 512;
  std::chrono::milliseconds housekeeping_interval{200};

  // Validates cross-option constraints; returns an empty string when valid,
  // else a description of the violation.
  [[nodiscard]] std::string validate() const;
};

}  // namespace cops::nserver
