// Server — the N-Server façade: everything the pattern template generates,
// assembled according to the twelve options.
//
// Structure (paper, Section IV):
//
//   Acceptor ── Reactor(s) [Event Dispatcher + decorated Event Sources]
//                  │ ready events
//                  ▼
//            EventProcessor  [queue (FIFO | quota-priority) + thread pool]
//                  │ Decode / Handle / Encode hook steps
//                  ▼
//            FileIoService   [proactor-emulated non-blocking file I/O]
//            FileCache       [transparent caching, 5 policies + custom]
//            OverloadController / ProcessorController / Profiler /
//            DebugTracer / idle reaper
//
// Option O1 (dispatcher threads) instantiates N reactors; connections are
// sharded round-robin and each shard's state is confined to its reactor
// thread (no locks on the connection path).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/buffer_pool.hpp"
#include "net/acceptor.hpp"
#include "net/connector.hpp"
#include "net/reactor.hpp"
#include "nserver/connection.hpp"
#include "nserver/debug_trace.hpp"
#include "nserver/event_processor.hpp"
#include "nserver/file_cache.hpp"
#include "nserver/file_io_service.hpp"
#include "nserver/l1_cache.hpp"
#include "nserver/hooks.hpp"
#include "nserver/options.hpp"
#include "nserver/overload_control.hpp"
#include "nserver/overload_manager.hpp"
#include "nserver/processor_controller.hpp"
#include "nserver/profiler.hpp"
#include "nserver/request_context.hpp"
#include "nserver/stats.hpp"

namespace cops::nserver {

class AdminServer;

class Server {
 public:
  Server(ServerOptions options, std::shared_ptr<AppHooks> hooks);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the listener, starts dispatcher and processor threads.
  Status start();
  // Stops accepting, closes connections, joins every thread.  Idempotent.
  void stop();
  // Graceful shutdown: stops accepting, waits until every in-flight
  // request pipeline has resolved and drained (or `timeout` passes), then
  // stops.  Returns true when the server went idle before the timeout.
  bool drain(std::chrono::milliseconds timeout);

  // ---- observability ----------------------------------------------------
  [[nodiscard]] uint16_t port() const { return port_; }
  // The admin endpoint's bound port (O11+); 0 unless stats_export is on.
  [[nodiscard]] uint16_t admin_port() const { return admin_port_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  // The I/O backend actually in effect: options().io_backend unless
  // io_uring was requested but unavailable (compiled out, old kernel) —
  // then the server degrades to epoll and reports it here.
  [[nodiscard]] IoBackend effective_io_backend() const {
    return io_backend_effective_;
  }
  [[nodiscard]] size_t connection_count() const { return num_connections_; }
  [[nodiscard]] bool accepting() const { return !accept_suspended_; }
  // True once drain() has begun (and until stop completes); /healthz
  // reports 503 while set so load balancers route around this instance.
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  // True while the O9 shed tier is rejecting requests (overload_shed on and
  // the overload controller reports overload).
  [[nodiscard]] bool shedding() const {
    return shedding_.load(std::memory_order_relaxed);
  }
  // The adaptive O9 control loop (overload_mode = kAdaptive); null in
  // watermark mode.  Exposed for the admin endpoint and tests.
  [[nodiscard]] OverloadManager* overload_manager() {
    return overload_mgr_.get();
  }
  [[nodiscard]] ProfilerSnapshot profile() const;
  // Everything the admin endpoint serves, in one consistent grab.
  [[nodiscard]] StatsSnapshot stats_snapshot() const;
  [[nodiscard]] FileCache* cache() { return cache_.get(); }
  [[nodiscard]] EventProcessor& processor() { return *processor_; }
  [[nodiscard]] FileIoService* file_service() { return file_service_.get(); }
  [[nodiscard]] DebugTracer* tracer() { return tracer_.get(); }

  // Installs the Custom cache-eviction hook (O6 = Custom) — must be called
  // before start().
  void set_custom_eviction_hook(CustomEvictionHook hook) {
    custom_eviction_ = std::move(hook);
  }

  // ---- Client Component (Acceptor-Connector's active side) ---------------
  // Initiates an outbound connection; once established it becomes a regular
  // Communicator driven by the same hooks and five-step pipeline (the
  // on_connect hook typically sends the first request).  `on_done` runs on
  // a dispatcher thread with the new connection id, or the failure.
  // Thread-safe; requires a started server.
  using ConnectCallback = std::function<void(Result<uint64_t>)>;
  void connect_peer(const net::InetAddress& peer, ConnectCallback on_done);

 private:
  friend class Connection;
  friend class RequestContext;
  friend class AdminServer;

  struct Shard {
    std::unique_ptr<net::Reactor> reactor;
    // Confined to the shard's reactor thread.
    std::unordered_map<uint64_t, std::shared_ptr<Connection>> connections;
    // buffer_mgmt=pooled recyclers (null under per_request).  The shared_ptrs
    // are set once in start() and read-only afterwards; the pools themselves
    // are internally synchronized — contexts and buffers are released from
    // whichever thread drops the last reference.
    std::shared_ptr<SlabPool> ctx_pool;
    std::shared_ptr<BufferPool> read_buffer_pool;
    // Adaptive O9, SPED mode: when the next loop-lag probe timer is due
    // (ns since clock epoch, 0 = none scheduled).  Written by the shard's
    // reactor thread, read by the overload manager's overdue hint — while
    // the loop grinds through a long pass the timer can't fire, but
    // `now() - expected` is already the standing lag.
    std::atomic<int64_t> lag_probe_expected_ns{0};
    // Two-tier cache (cache_l1_entries > 0): this shard's read-mostly L1
    // in front of the shared policy cache.  Null when the L1 is off.
    std::unique_ptr<L1FileCache> l1_cache;
    // Per-shard gauges for /stats{,.json} (shard label): connections this
    // shard accepted (or was dispatched) and currently owns.  Updated on
    // accept/close paths, read by the admin endpoint — hence atomics.
    std::atomic<uint64_t> accepts{0};
    std::atomic<size_t> open_connections{0};
  };

  // Allocates a RequestContext — from the shard's slab free-list under
  // buffer_mgmt=pooled, from the heap under per_request.
  [[nodiscard]] RequestContextPtr make_context(
      const std::shared_ptr<Connection>& conn);

  // ---- accept path --------------------------------------------------------
  // Runs on the accepting shard's reactor: shard 0 under accept_path =
  // kDispatch (single listener), any shard under kReuseport (one listener
  // each — the connection then stays on `acceptor_shard`, no dispatch hop).
  void on_accept(size_t acceptor_shard, net::TcpSocket socket);
  // Applies accept suspension to every acceptor (the O9 lever).  Runs on
  // the shard-0 housekeeping thread; acceptors on other shards are
  // reactor-confined, so their suspend/resume is posted.
  void set_accept_suspended(bool on);
  // `ip_key` non-empty = this connection holds a per-IP accounting slot
  // (accepted with max_connections_per_ip on); released on removal.
  // `counted` = on_accept already reserved this connection's slot in
  // num_connections_ (the shard-safe cap check), so don't count it twice.
  uint64_t add_connection(size_t shard_index, net::TcpSocket socket,
                          std::string ip_key = {}, bool counted = false);

  // ---- pipeline steps (processor threads unless O2 = No) -----------------
  void submit_decode(const std::shared_ptr<Connection>& conn);
  void run_decode(const std::shared_ptr<Connection>& conn);
  void run_handle(const std::shared_ptr<Connection>& conn, std::any request,
                  int priority);
  // Called by RequestContext::reply — applies the Encode hook then sends.
  void resolve_with_reply(RequestContext& ctx, std::any response);

  // ---- services for RequestContext ---------------------------------------
  void fetch_file(RequestContextPtr ctx, std::string path,
                  RequestContext::FetchCallback done);

  // ---- housekeeping (reactor 0 timer) -------------------------------------
  void housekeeping();
  void reap_idle(Shard& shard);
  // Adaptive O9 setup/probing: build_overload_manager() wires the monitors
  // and graduated actions.  With a separate processor pool,
  // launch_overload_probes() sends one timestamped sentinel per tick through
  // the event queue so the queue-delay monitor measures real dispatch
  // latency.  In SPED mode nothing is ever queued, so each shard instead
  // runs a self-rescheduling timer whose lateness (scheduled vs. actual fire
  // time) is the event-loop lag a newly ready request experiences.
  void build_overload_manager();
  void launch_overload_probes();
  void schedule_loop_lag_probe(size_t shard_index, Duration interval);

  // Internal event accounting: debug trace (O10) + logging (O12).
  void note_event(EventKind kind, uint64_t conn_id, const char* detail);

  // Counts connections with an active pipeline step (reactor-confined
  // state, gathered by hopping onto each dispatcher).
  size_t count_active_pipelines();

  void remove_connection(Connection& conn);

  ServerOptions options_;
  std::shared_ptr<AppHooks> hooks_;

  std::vector<std::unique_ptr<Shard>> shards_;
  // One acceptor under kDispatch (on shard 0); one per shard under
  // kReuseport (acceptors_[i] is confined to shard i's reactor).
  std::vector<std::unique_ptr<net::Acceptor>> acceptors_;
  std::unique_ptr<net::Connector> connector_;  // lives on shard 0
  std::unique_ptr<EventProcessor> processor_;
  std::unique_ptr<ProcessorController> controller_;
  std::unique_ptr<FileIoService> file_service_;
  std::unique_ptr<FileCache> cache_;
  std::unique_ptr<OverloadController> overload_;
  std::unique_ptr<OverloadManager> overload_mgr_;
  // Owned by overload_mgr_; one per shard under SPED (event-loop lag),
  // one for the processor queue with a separate pool.
  std::vector<QueueDelayMonitor*> delay_monitors_;
  std::unique_ptr<DebugTracer> tracer_;
  std::unique_ptr<AdminServer> admin_;
  Profiler profiler_;
  CustomEvictionHook custom_eviction_;

  // Per-connection gauges for /stats.json.  The shard connection maps are
  // reactor-confined, so the admin path (shard-0 thread) cannot hop to the
  // other shards with a blocking future; this registry, maintained only when
  // stats_export is on, is the lock-guarded view it reads instead.
  mutable std::mutex conn_registry_mutex_;
  std::unordered_map<uint64_t, std::weak_ptr<Connection>> conn_registry_;

  // Per-client-IP open-connection counts (max_connections_per_ip).  Bumped
  // on the accept path (reactor 0) and released on whichever shard thread
  // closes the connection — hence the lock.
  std::mutex ip_counts_mutex_;
  std::unordered_map<std::string, size_t> ip_counts_;

  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
  // S7 backend after the availability probe (see effective_io_backend()).
  IoBackend io_backend_effective_ = IoBackend::kEpoll;
  // This instance flipped the process-wide sync-over-ring socket-op switch
  // (balanced in stop()).
  bool uring_ops_on_ = false;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> num_connections_{0};
  std::atomic<size_t> next_shard_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> launched_{false};  // dispatcher threads are running
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};  // drain() began; admin healthz → 503
  // Mirror of the overload controller's shed decision, updated by
  // housekeeping (reactor 0) and read by worker threads via
  // RequestContext::should_shed(): atomic, not a plain bool.
  std::atomic<bool> shedding_{false};
  // Written by housekeeping on the reactor-0 thread, read cross-thread via
  // accepting() (tests, admin endpoint): atomic, not a plain bool.
  std::atomic<bool> accept_suspended_{false};
  // Adaptive O9 tier-1 action: while set, reap_idle() runs with sharply
  // shrunk keep-alive timeouts (and runs even when O7 is off).
  std::atomic<bool> conserve_idle_{false};
};

}  // namespace cops::nserver
