// Cache replacement policies (option O6).
//
// The N-Server template offers five built-in web-cache replacement policies
// — LRU, LFU, LRU-MIN, LRU-Threshold (Abrams et al., 1995) and Hyper-G
// (Williams et al., 1996) — plus a Custom hook, "a hook method that is
// called automatically at the appropriate time" for user-defined policies.
//
// A policy maintains ordering metadata only; the FileCache owns the entries
// and asks the policy which key to evict.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "nserver/options.hpp"

namespace cops::nserver {

struct CacheEntryInfo {
  std::string key;
  size_t size = 0;
  uint64_t access_count = 0;
  uint64_t last_access_seq = 0;  // monotonically increasing access stamp
};

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  // Admission check — may reject caching an object outright (LRU-Threshold
  // refuses files larger than its size threshold).
  [[nodiscard]] virtual bool admit(const std::string& key, size_t size) const {
    (void)key;
    (void)size;
    return true;
  }

  virtual void on_insert(const CacheEntryInfo& info) = 0;
  virtual void on_access(const CacheEntryInfo& info) = 0;
  virtual void on_erase(const std::string& key) = 0;

  // Chooses the key to evict to make room for `incoming_size` bytes;
  // nullopt when the policy tracks nothing (cache then refuses to insert).
  [[nodiscard]] virtual std::optional<std::string> choose_victim(
      size_t incoming_size) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

// Custom policy hook signature: given the live entry table and the incoming
// object size, return the key to evict.
using CustomEvictionHook = std::function<std::optional<std::string>(
    const std::unordered_map<std::string, CacheEntryInfo>& entries,
    size_t incoming_size)>;

// Factory covering every built-in kind; kCustom requires `hook`.
// kLruThreshold uses `size_threshold` as the largest cacheable object.
std::unique_ptr<CachePolicy> make_cache_policy(
    CachePolicyKind kind, size_t size_threshold = 64 * 1024,
    CustomEvictionHook hook = nullptr);

}  // namespace cops::nserver
