// L1FileCache — the per-shard tier of the two-tier file cache.
//
// The paper's policy-driven FileCache (O6) is a single mutex-guarded map;
// with one reactor per shard every cache hit on every shard serializes on
// that mutex.  The two-tier split keeps the policy cache as a *shared L2*
// (the five replacement policies remain the eviction knob) and puts one of
// these bounded, read-mostly L1s in front of it per shard:
//
//   * the hit path is lock-free and allocation-free — a hash, one
//     atomic<shared_ptr> load, a key compare, two stamp checks — so shards
//     never contend with each other on cached files;
//   * a miss falls through to the L2 (one shard's disk read fills the L2,
//     and every other shard then *promotes* the entry into its own L1 on
//     first touch — a miss on one shard warms all shards without any
//     cross-shard writes);
//   * freshness is inherited from the L2: an entry is served only while
//     (a) it is younger than the revalidate interval — older entries fall
//     through to the L2, which stat()s the file and re-promotes — and
//     (b) the L2's invalidation epoch still matches the promotion-time
//     stamp, so an explicit erase/clear or a detected file change drops
//     every L1 replica at the next lookup.
//
// Direct-mapped: each key hashes to exactly one slot and a colliding
// promotion displaces the previous occupant.  Capacity in bytes is bounded
// by entries x entry_max_bytes (larger files stay L2-only).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::nserver {

class L1FileCache {
 public:
  // `ttl` mirrors the L2's revalidate interval: entries older than this are
  // not served from the L1 (with ttl 0 every lookup re-checks, so the L1
  // steps aside entirely — same contract as the L2's interval 0).
  L1FileCache(size_t entries, size_t entry_max_bytes,
              std::chrono::milliseconds ttl);

  // The hot path: returns the cached data when the slot holds `key`, is
  // younger than the ttl, and was promoted under the current L2 epoch;
  // nullptr otherwise.  No locks, no allocations.
  [[nodiscard]] FileDataPtr lookup(const std::string& key, uint64_t epoch);

  // Installs `data` (fresh from the L2 or from disk) into the key's slot.
  // Oversized entries are skipped — they stay L2-only.
  void promote(const std::string& key, FileDataPtr data, uint64_t epoch);

  void clear();

  [[nodiscard]] uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double hit_rate() const;

 private:
  struct Slot {
    std::string key;
    FileDataPtr data;
    uint64_t epoch = 0;
    TimePoint cached_at{};
  };

  [[nodiscard]] size_t index_of(const std::string& key) const {
    return std::hash<std::string>{}(key) & mask_;
  }

  const size_t mask_;  // slot count - 1 (power of two)
  const size_t entry_max_bytes_;
  const std::chrono::milliseconds ttl_;
  std::unique_ptr<std::atomic<std::shared_ptr<const Slot>>[]> slots_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> promotions_{0};
};

}  // namespace cops::nserver
