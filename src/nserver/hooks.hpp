// Application hooks — the only code a user of the N-Server writes.
//
// "To develop a network server application using the N-Server pattern, a
// programmer only has to write code corresponding to the three
// application-dependent steps [Decode Request, Handle Request, Encode
// Reply], while the N-Server generates code for the other two common steps
// [Read Request, Send Reply]" (paper, Section IV).
//
// Hooks are plain sequential code.  All concurrency — reading, queueing,
// scheduling, completion dispatch, sending — lives in the framework.  The
// framework guarantees at most one pipeline step per connection is executing
// at any moment, so hooks may freely use the per-connection state without
// locks.
#pragma once

#include <any>
#include <memory>
#include <string>

#include "common/byte_buffer.hpp"
#include "common/send_queue.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::nserver {

class RequestContext;

enum class DecodeStatus {
  kNeedMore,  // incomplete request: re-arm the socket for reading
  kRequest,   // one complete request extracted from the buffer
  kError,     // malformed input: the framework closes the connection
  // Input the protocol can answer deterministically but not serve (bad
  // Content-Length, unsupported Transfer-Encoding, ...): the framework
  // encodes and sends the carried response, then closes the connection.
  kReject,
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  std::any request;
  // Scheduling priority for this request (0 = highest); honoured only when
  // option O8 is enabled.  This is the hook the paper's ISP experiment
  // implements in "13 lines": classify the request, assign the level.
  int priority = 0;

  static DecodeResult need_more() { return {}; }
  static DecodeResult error() { return {DecodeStatus::kError, {}, 0}; }
  static DecodeResult request_ready(std::any request, int priority = 0) {
    return {DecodeStatus::kRequest, std::move(request), priority};
  }
  // `response` goes through the Encode Reply hook like a normal reply, then
  // the connection closes.
  static DecodeResult reject(std::any response) {
    return {DecodeStatus::kReject, std::move(response), 0};
  }
};

class AppHooks {
 public:
  virtual ~AppHooks() = default;

  // Called on the dispatcher thread right after a connection is accepted.
  // Typical use: send a protocol greeting (FTP's "220 Service ready").
  virtual void on_connect(RequestContext& ctx) { (void)ctx; }

  // Called after a connection is fully closed (any thread).
  virtual void on_close(uint64_t connection_id) { (void)connection_id; }

  // Decode Request step.  Consume bytes from `in` (leaving any trailing
  // pipelined data for the next round).  Not called — and not required —
  // when the server was configured without encoding/decoding (O3 = No,
  // Fig. 2): the framework then delivers raw chunks straight to handle().
  virtual DecodeResult decode(RequestContext& ctx, ByteBuffer& in) {
    (void)ctx;
    (void)in;
    return DecodeResult::error();  // only reachable if O3 was misconfigured
  }

  // Handle Request step.  Must eventually resolve the context exactly once:
  // reply() / reply_raw() / finish() / close() — synchronously or from a
  // fetch_file() continuation.
  virtual void handle(RequestContext& ctx, std::any request) = 0;

  // Encode Reply step (only with O3 = Yes).  Default: the response already
  // is the wire payload.
  virtual std::string encode(RequestContext& ctx, std::any response) {
    (void)ctx;
    return std::any_cast<std::string>(std::move(response));
  }

  // Segment-producing Encode Reply step.  The framework calls this one; the
  // default wraps encode() into a single owned segment, so protocols that
  // only implement the string hook behave exactly as before.  Zero-copy
  // protocols override it to emit owned header bytes plus refcounted body
  // slices (see ctx.send_path() and HttpAppHooks::encode_reply).
  virtual EncodedReply encode_reply(RequestContext& ctx, std::any response) {
    return EncodedReply::from_string(encode(ctx, std::move(response)));
  }
};

}  // namespace cops::nserver
