#include "nserver/file_io_service.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "nserver/uring_file_engine.hpp"

namespace cops::nserver {

namespace {
std::function<void(const std::string&)>& pre_open_hook() {
  static std::function<void(const std::string&)> hook;
  return hook;
}
}  // namespace

void FileIoService::set_test_pre_open_hook(
    std::function<void(const std::string&)> hook) {
  pre_open_hook() = std::move(hook);
}

namespace detail {
void invoke_test_pre_open_hook(const std::string& path) {
  if (pre_open_hook()) pre_open_hook()(path);
}
}  // namespace detail

FileData::~FileData() {
  if (fd >= 0) ::close(fd);
}

FileIoService::FileIoService(size_t threads, bool use_uring)
    : pool_(threads) {
  if (use_uring) engine_ = UringFileEngine::create();
}

FileIoService::~FileIoService() { stop(); }

void FileIoService::stop() {
  if (engine_) engine_->stop();
  pool_.stop();
}

size_t FileIoService::pending() const {
  return engine_ ? engine_->pending() : pool_.queue_depth();
}

Result<FileDataPtr> FileIoService::read_file(const std::string& path) {
  return load_file(path, FileLoadOptions{});
}

Result<FileDataPtr> FileIoService::load_file(const std::string& path,
                                             const FileLoadOptions& load) {
  // TOCTOU-safe: open the descriptor first and derive *everything* —
  // existence, type, size, mtime, bytes — from that one descriptor.  The
  // old stat-then-open shape could serve file B's bytes with file A's
  // size/mtime when the path was swapped between the two calls.
  detail::invoke_test_pre_open_hook(path);
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT || errno == ENOTDIR) return Status::not_found(path);
    return Status::from_errno("open");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::from_errno("fstat");
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::invalid_argument(path + " is not a regular file");
  }
  auto data = std::make_shared<FileData>();
  data->path = path;
  data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
  if (load.open_for_sendfile &&
      static_cast<size_t>(st.st_size) >= load.sendfile_min_bytes) {
    // sendfile-eligible: hand back the open descriptor, no bytes in memory.
    data->fd = fd;
    data->fd_size = static_cast<uint64_t>(st.st_size);
    return FileDataPtr(std::move(data));
  }
  data->bytes.resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < data->bytes.size()) {
    const ssize_t n =
        ::read(fd, data->bytes.data() + off, data->bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::from_errno("read");
    }
    if (n == 0) {
      ::close(fd);
      return Status::io_error("short read on " + path);
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return FileDataPtr(std::move(data));
}

void FileIoService::async_read(std::string path, CompletionToken token,
                               FileCallback callback,
                               CompletionExecutor executor) {
  async_load(std::move(path), FileLoadOptions{}, token, std::move(callback),
             std::move(executor));
}

void FileIoService::async_load(std::string path, FileLoadOptions load,
                               CompletionToken token, FileCallback callback,
                               CompletionExecutor executor) {
  (void)token;  // carried by the caller's closure; see header
  if (engine_) {
    // Proactor proper: the kernel does the read (IORING_OP_READ) and the
    // completion re-enters the event flow through the same executor the
    // pool path uses.
    engine_->submit(std::move(path), load,
                    [this, callback = std::move(callback),
                     executor = std::move(executor)](
                        Result<FileDataPtr> result) mutable {
                      completed_.fetch_add(1, std::memory_order_relaxed);
                      executor([callback = std::move(callback),
                                result = std::move(result)] {
                        callback(result);
                      });
                    });
    return;
  }
  pool_.submit([this, path = std::move(path), load,
                callback = std::move(callback),
                executor = std::move(executor)]() mutable {
    auto result = load_file(path, load);
    completed_.fetch_add(1, std::memory_order_relaxed);
    executor([callback = std::move(callback), result = std::move(result)] {
      callback(result);
    });
  });
}

}  // namespace cops::nserver
