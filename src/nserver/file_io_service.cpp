#include "nserver/file_io_service.hpp"

#include <sys/stat.h>

#include <fstream>

namespace cops::nserver {

FileIoService::FileIoService(size_t threads) : pool_(threads) {}

FileIoService::~FileIoService() { stop(); }

void FileIoService::stop() { pool_.stop(); }

Result<FileDataPtr> FileIoService::read_file(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return Status::not_found(path);
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::invalid_argument(path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found(path);
  auto data = std::make_shared<FileData>();
  data->path = path;
  data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
  data->bytes.resize(static_cast<size_t>(st.st_size));
  in.read(data->bytes.data(), st.st_size);
  if (in.gcount() != st.st_size) {
    return Status::io_error("short read on " + path);
  }
  return FileDataPtr(std::move(data));
}

void FileIoService::async_read(std::string path, CompletionToken token,
                               FileCallback callback,
                               CompletionExecutor executor) {
  (void)token;  // carried by the caller's closure; see header
  pool_.submit([this, path = std::move(path), callback = std::move(callback),
                executor = std::move(executor)]() mutable {
    auto result = read_file(path);
    completed_.fetch_add(1, std::memory_order_relaxed);
    executor([callback = std::move(callback), result = std::move(result)] {
      callback(result);
    });
  });
}

}  // namespace cops::nserver
