#include "nserver/file_io_service.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>

namespace cops::nserver {

FileData::~FileData() {
  if (fd >= 0) ::close(fd);
}

FileIoService::FileIoService(size_t threads) : pool_(threads) {}

FileIoService::~FileIoService() { stop(); }

void FileIoService::stop() { pool_.stop(); }

Result<FileDataPtr> FileIoService::read_file(const std::string& path) {
  return load_file(path, FileLoadOptions{});
}

Result<FileDataPtr> FileIoService::load_file(const std::string& path,
                                             const FileLoadOptions& load) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return Status::not_found(path);
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::invalid_argument(path + " is not a regular file");
  }
  if (load.open_for_sendfile &&
      static_cast<size_t>(st.st_size) >= load.sendfile_min_bytes) {
    // sendfile-eligible: hand back an open descriptor, no bytes in memory.
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::from_errno("open");
    auto data = std::make_shared<FileData>();
    data->path = path;
    data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
    data->fd = fd;
    data->fd_size = static_cast<uint64_t>(st.st_size);
    return FileDataPtr(std::move(data));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found(path);
  auto data = std::make_shared<FileData>();
  data->path = path;
  data->mtime_seconds = static_cast<int64_t>(st.st_mtime);
  data->bytes.resize(static_cast<size_t>(st.st_size));
  in.read(data->bytes.data(), st.st_size);
  if (in.gcount() != st.st_size) {
    return Status::io_error("short read on " + path);
  }
  return FileDataPtr(std::move(data));
}

void FileIoService::async_read(std::string path, CompletionToken token,
                               FileCallback callback,
                               CompletionExecutor executor) {
  async_load(std::move(path), FileLoadOptions{}, token, std::move(callback),
             std::move(executor));
}

void FileIoService::async_load(std::string path, FileLoadOptions load,
                               CompletionToken token, FileCallback callback,
                               CompletionExecutor executor) {
  (void)token;  // carried by the caller's closure; see header
  pool_.submit([this, path = std::move(path), load,
                callback = std::move(callback),
                executor = std::move(executor)]() mutable {
    auto result = load_file(path, load);
    completed_.fetch_add(1, std::memory_order_relaxed);
    executor([callback = std::move(callback), result = std::move(result)] {
      callback(result);
    });
  });
}

}  // namespace cops::nserver
