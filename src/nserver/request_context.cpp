#include "nserver/request_context.hpp"

#include "common/logging.hpp"
#include "nserver/connection.hpp"
#include "nserver/server.hpp"

namespace cops::nserver {

RequestContext::RequestContext(Server& server, std::shared_ptr<Connection> conn)
    : server_(server), conn_(std::move(conn)) {}

uint64_t RequestContext::connection_id() const { return conn_->id(); }

const std::string& RequestContext::peer() const { return conn_->peer(); }

std::shared_ptr<void>& RequestContext::app_state() {
  return conn_->app_state();
}

bool RequestContext::connection_closed() const { return conn_->closed(); }

void RequestContext::set_priority(int priority) {
  priority_ = priority;
  conn_->set_priority(priority);
}

void RequestContext::fetch_file(std::string path, FetchCallback done) {
  server_.fetch_file(shared_from_this(), std::move(path), std::move(done));
}

Result<FileDataPtr> RequestContext::read_file_sync(const std::string& path) {
  return FileIoService::read_file(path);
}

ProfilerSnapshot RequestContext::server_profile() const {
  return server_.profile();
}

size_t RequestContext::server_connection_count() const {
  return server_.connection_count();
}

bool RequestContext::should_shed() const {
  // Adaptive O9, SPED mode: the dispatcher loop IS the worker, so a long
  // ready-batch starves the housekeeping timer that normally runs the
  // control loop.  Give the manager a chance to tick between requests of
  // the same pass; it rate-limits itself and this is the dispatcher
  // thread, so the graduated actions stay on their home thread.
  if (server_.overload_mgr_ && server_.processor_->inline_mode()) {
    server_.overload_mgr_->maybe_tick(now());
  }
  return server_.shedding_.load(std::memory_order_relaxed);
}

std::chrono::seconds RequestContext::shed_retry_after() const {
  // Adaptive O9: the advertised Retry-After tracks the measured pressure
  // decay (estimated seconds until shedding releases), clamped to
  // [overload_retry_after, overload_retry_after_max] by the manager.
  // Watermark mode keeps the fixed configured constant.
  if (server_.overload_mgr_) {
    return server_.overload_mgr_->retry_after_hint();
  }
  return server_.options_.overload_retry_after;
}

void RequestContext::note_shed() {
  if (server_.options_.profiling) server_.profiler_.count_shed();
}

TraceContext& RequestContext::trace() { return conn_->trace(); }

SendPath RequestContext::send_path() const {
  return server_.options_.send_path;
}

BufferMgmt RequestContext::buffer_mgmt() const {
  return server_.options_.buffer_mgmt;
}

BodyFraming RequestContext::body_framing() const {
  return server_.options_.body_framing;
}

size_t RequestContext::chunked_min_bytes() const {
  return server_.options_.chunked_min_bytes;
}

size_t RequestContext::reply_chunk_bytes() const {
  return server_.options_.reply_chunk_bytes;
}

std::shared_ptr<RequestContext> RequestContext::make_handle() const {
  return server_.make_context(conn_);
}

void RequestContext::send_segments(EncodedReply reply) {
  auto conn = conn_;
  conn->reactor().post([conn, reply = std::move(reply)]() mutable {
    conn->queue_send(std::move(reply), /*completes_request=*/false);
  });
}

bool RequestContext::mark_resolved() {
  bool expected = false;
  if (!resolved_.compare_exchange_strong(expected, true)) {
    COPS_WARN("request on connection " << conn_->id()
                                       << " resolved more than once");
    return false;
  }
  return true;
}

void RequestContext::send(std::string bytes) {
  auto conn = conn_;
  conn->reactor().post([conn, bytes = std::move(bytes)]() mutable {
    conn->queue_send(std::move(bytes), /*completes_request=*/false);
  });
}

void RequestContext::reply(std::any response) {
  server_.resolve_with_reply(*this, std::move(response));
}

void RequestContext::reply_raw(std::string bytes) {
  if (!mark_resolved()) return;
  auto conn = conn_;
  conn->reactor().post([conn, bytes = std::move(bytes)]() mutable {
    conn->queue_send(std::move(bytes), /*completes_request=*/true);
  });
}

void RequestContext::finish() {
  if (!mark_resolved()) return;
  auto conn = conn_;
  conn->reactor().post([conn] { conn->continue_pipeline(); });
}

void RequestContext::close_after_reply() {
  auto conn = conn_;
  conn->reactor().post([conn] { conn->set_close_after_reply(); });
}

void RequestContext::close() {
  mark_resolved();
  auto conn = conn_;
  conn->reactor().post([conn] { conn->close("hook-close"); });
}

}  // namespace cops::nserver
