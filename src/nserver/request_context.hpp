// RequestContext — the hooks' window into the framework.
//
// One context accompanies each hook invocation.  It exposes (a) connection
// identity and per-connection application state, (b) the framework services
// a Handle step may need — transparent file cache, proactor-emulated file
// reads — and (c) the resolution verbs that end a request: reply, finish,
// close.
//
// Contexts are shared_ptr-managed so a fetch_file() continuation can carry
// the context across an asynchronous completion (the Asynchronous Completion
// Token in object form).
#pragma once

#include <any>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "common/send_queue.hpp"
#include "common/status.hpp"
#include "nserver/file_io_service.hpp"
#include "nserver/options.hpp"
#include "nserver/profiler.hpp"
#include "nserver/trace_context.hpp"

namespace cops::nserver {

class Server;
class Connection;

class RequestContext : public std::enable_shared_from_this<RequestContext> {
 public:
  RequestContext(Server& server, std::shared_ptr<Connection> conn);

  // ---- identity ----------------------------------------------------------
  [[nodiscard]] uint64_t connection_id() const;
  [[nodiscard]] const std::string& peer() const;
  // Arbitrary per-connection session state owned by the application.
  [[nodiscard]] std::shared_ptr<void>& app_state();
  [[nodiscard]] bool connection_closed() const;

  // Scheduling priority of the current request (O8).
  [[nodiscard]] int priority() const { return priority_; }
  void set_priority(int priority);

  // ---- services ----------------------------------------------------------
  // Cache-aware file fetch.  On a cache hit `done` runs immediately on the
  // calling thread; on a miss the read happens per option O4 — emulated
  // non-blocking I/O with a completion event (Asynchronous), or a blocking
  // read on this worker thread (Synchronous) — and `done` runs when it
  // finishes.  Exactly the paper's transparent-caching contract: the hook
  // code is identical with caching on or off.
  using FetchCallback =
      std::function<void(RequestContext& ctx, Result<FileDataPtr> file)>;
  void fetch_file(std::string path, FetchCallback done);

  // Direct synchronous read, bypassing the cache (rarely needed).
  [[nodiscard]] Result<FileDataPtr> read_file_sync(const std::string& path);

  // Server observability for hooks (e.g. a status page): the profiler
  // snapshot and cache counters.  Cheap (relaxed atomic reads).
  [[nodiscard]] ProfilerSnapshot server_profile() const;
  [[nodiscard]] size_t server_connection_count() const;

  // O9 shed tier: true while the server is overloaded and `overload_shed`
  // is on — the Handle hook should answer with a cheap rejection (HTTP:
  // 503 + Retry-After of shed_retry_after()) instead of doing the work,
  // then call note_shed() so the rejection is counted.  Cheap (one relaxed
  // atomic read); always false when shedding is not configured.
  [[nodiscard]] bool should_shed() const;
  [[nodiscard]] std::chrono::seconds shed_retry_after() const;
  void note_shed();

  // The in-flight request's stage timestamps (O11+).  Hooks may add their
  // own reference stamps; the framework resets it per request.
  [[nodiscard]] TraceContext& trace();

  // The server's configured send path.  Encode hooks consult this to decide
  // between a flat serialized reply (kCopy) and header/body segments.
  [[nodiscard]] SendPath send_path() const;

  // The server's configured buffer management (S2).  Decode hooks consult
  // this to decide between per-request objects and a per-connection scratch
  // request recycled across keep-alive requests.
  [[nodiscard]] BufferMgmt buffer_mgmt() const;

  // The server's configured reply body framing (S3) and its thresholds.
  // Handle/Encode hooks consult these to decide between Content-Length and
  // chunked transfer coding on the reply side.
  [[nodiscard]] BodyFraming body_framing() const;
  [[nodiscard]] size_t chunked_min_bytes() const;
  [[nodiscard]] size_t reply_chunk_bytes() const;

  // ---- output ------------------------------------------------------------
  // Enqueues bytes without completing the request (multi-part replies,
  // greetings, FTP intermediate responses).
  void send(std::string bytes);
  // Segment-level variant of send(): enqueues an EncodedReply (owned header
  // bytes + refcounted body slices) without completing the request.
  void send_segments(EncodedReply reply);
  // Completes the request: response → Encode Reply hook (O3) → Send Reply.
  void reply(std::any response);
  // Completes the request with pre-encoded bytes (skips the Encode hook).
  void reply_raw(std::string bytes);
  // Completes the request without sending anything.
  void finish();
  // After the (next) completed reply drains, close the connection.
  void close_after_reply();
  // Closes the connection immediately.
  void close();

  [[nodiscard]] bool resolved() const { return resolved_.load(); }

  // Creates an independent, long-lived handle to the same connection for
  // server-initiated sends outside any request (e.g. chat broadcasts,
  // server push).  send()/close() on the handle stay valid for the
  // connection's lifetime; after the connection closes they are no-ops.
  [[nodiscard]] std::shared_ptr<RequestContext> make_handle() const;

 private:
  friend class Server;
  bool mark_resolved();  // false if already resolved (double resolution)

  Server& server_;
  std::shared_ptr<Connection> conn_;
  int priority_ = 0;
  std::atomic<bool> resolved_{false};
};

using RequestContextPtr = std::shared_ptr<RequestContext>;

}  // namespace cops::nserver
