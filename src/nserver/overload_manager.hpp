// OverloadManager — the adaptive generalization of option O9
// (overload = adaptive).
//
// The paper's watermark controller gates accept on queue *length*; this
// manager gates the whole request path on *pressure*: pluggable resource
// monitors (event-queue delay, connection count, pool-miss rate, heap
// bytes — and, in the proxy tier, upstream waiter depth and 502/504 rate)
// each map their raw signal to a 0–1 pressure score, smoothed with an EWMA.
// The overall pressure (worst monitor governs, like the watermark
// controller's worst queue) drives graduated actions in severity order:
//
//   tier 1  conserve        shrink keep-alive idle timeouts
//   tier 2  pause-low-prio  stop draining low-priority quota classes (O8)
//   tier 3  shed            answer new requests 503 + Retry-After
//   tier 4  stop-accept     suspend the Acceptor entirely
//
// Each tier latches independently with hysteresis (engage at its
// threshold, release at threshold − hysteresis), and the thresholds are
// monotone — so actions always engage in severity order and release in
// reverse order as pressure falls.
//
// The queue-delay monitor is CoDel-shaped (Nichols & Jacobson): the signal
// is the *sliding minimum* queue delay over an interval, compared against a
// target delay.  A transient burst leaves at least one low-delay sample in
// the window and is forgiven; a *standing* queue keeps the minimum above
// target and raises pressure.  Delay samples come from timestamped sentinel
// probes on cops::now(), so the same control loop runs in virtual time
// under simnet, bit-identical per seed.
//
// Threading: tick() and snapshot() are serialized by a mutex (housekeeping
// cadence, not per-request); the request path reads only relaxed atomics
// (tier, retry-after hint).  QueueDelayMonitor::record_delay is safe from
// any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"

namespace cops::nserver {

// One monitor's reading at a tick: the raw measured value (units vary per
// monitor — seconds, connections, a ratio) and its 0–1 pressure mapping.
struct MonitorReading {
  double raw = 0.0;
  double pressure = 0.0;
};

class ResourceMonitor {
 public:
  virtual ~ResourceMonitor() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  // Called once per manager tick, under the manager's lock.
  virtual MonitorReading sample(TimePoint now) = 0;
};

// CoDel-style queue-delay monitor.  Feed it timestamped delay observations
// (sentinel events enqueued with their cops::now() and measured on
// execution); sample() reports the minimum delay over the trailing
// `interval`, mapped so pressure 0.5 == delay at target (the tier-1
// threshold) and pressure 1.0 == delay at 2× target.
class QueueDelayMonitor : public ResourceMonitor {
 public:
  QueueDelayMonitor(std::string name, Duration target, Duration interval);

  // Thread-safe; called by the probe when it finally runs.
  void record_delay(Duration delay);

  // Optional: a callback returning the delay (seconds) of a probe that is
  // currently *overdue* — launched but not yet run.  sample() folds a
  // positive return into the window as a synthetic observation, so a loop
  // pass long enough to starve its own probes still raises pressure.
  void set_overdue_hint(std::function<double()> hint);

  [[nodiscard]] const std::string& name() const override { return name_; }
  MonitorReading sample(TimePoint now) override;

 private:
  const std::string name_;
  const double target_seconds_;
  const Duration interval_;
  std::mutex mutex_;
  std::function<double()> overdue_hint_;
  // (observation time, delay) pairs inside the sliding window.
  std::deque<std::pair<TimePoint, double>> samples_;
};

// Instantaneous gauge vs a fixed capacity (connection count, heap bytes):
// pressure = value / capacity, clamped.
class GaugeMonitor : public ResourceMonitor {
 public:
  GaugeMonitor(std::string name, std::function<double()> value,
               double capacity);

  [[nodiscard]] const std::string& name() const override { return name_; }
  MonitorReading sample(TimePoint now) override;

 private:
  const std::string name_;
  const std::function<double()> value_;
  const double capacity_;
};

// Windowed event-fraction monitor over two monotone counters (pool misses
// over pool requests, proxy 502/504s over proxied requests): pressure is
// the fraction observed since the previous tick, scaled so `full_scale`
// (e.g. 0.5 = half the events bad) maps to pressure 1.0.
class RateMonitor : public ResourceMonitor {
 public:
  RateMonitor(std::string name, std::function<uint64_t()> numerator,
              std::function<uint64_t()> denominator, double full_scale);

  [[nodiscard]] const std::string& name() const override { return name_; }
  MonitorReading sample(TimePoint now) override;

 private:
  const std::string name_;
  const std::function<uint64_t()> numerator_;
  const std::function<uint64_t()> denominator_;
  const double full_scale_;
  uint64_t last_numerator_ = 0;
  uint64_t last_denominator_ = 0;
};

// The graduated actions, in severity order.  kNone < kConserve < ... —
// the integer value is also the exported `cops_overload_tier` gauge.
enum class OverloadTier : int {
  kNone = 0,
  kConserve = 1,
  kPauseLowPriority = 2,
  kShed = 3,
  kStopAccept = 4,
};

[[nodiscard]] const char* to_string(OverloadTier tier);

// Engage/release callbacks the owning server wires up; each is invoked
// with `true` when its tier engages and `false` when it releases, from
// tick() (the housekeeping thread).  Unset callbacks are skipped.
struct OverloadActions {
  std::function<void(bool)> conserve;
  std::function<void(bool)> pause_low_priority;
  std::function<void(bool)> shed;
  std::function<void(bool)> stop_accept;
};

struct OverloadManagerConfig {
  // CoDel parameters for queue-delay monitors created via
  // add_queue_delay_monitor().
  Duration target_delay = std::chrono::milliseconds(5);
  Duration interval = std::chrono::milliseconds(100);
  // Per-monitor EWMA: smoothed += alpha * (sample - smoothed).
  double ewma_alpha = 0.3;
  // Engage thresholds per tier (monotone); each releases at
  // threshold - hysteresis.
  double conserve_threshold = 0.50;
  double pause_threshold = 0.65;
  double shed_threshold = 0.80;
  double stop_accept_threshold = 0.92;
  double hysteresis = 0.10;
  // Retry-After derivation bounds (see retry_after_hint()).
  std::chrono::seconds retry_after_min{1};
  std::chrono::seconds retry_after_max{30};
};

// Per-tick observable state, for the admin endpoint and tests.
struct OverloadSnapshot {
  struct MonitorState {
    std::string name;
    double raw = 0.0;
    double pressure = 0.0;   // instantaneous
    double smoothed = 0.0;   // EWMA
  };
  std::vector<MonitorState> monitors;
  double pressure = 0.0;  // overall = max smoothed
  OverloadTier tier = OverloadTier::kNone;
  bool conserving = false;
  bool low_priority_paused = false;
  bool shedding = false;
  bool accept_stopped = false;
  std::chrono::seconds retry_after{1};
  uint64_t ticks = 0;
};

class OverloadManager {
 public:
  explicit OverloadManager(OverloadManagerConfig config = {});

  // Registration (before the first tick).
  void add_monitor(std::unique_ptr<ResourceMonitor> monitor);
  // Convenience: creates a QueueDelayMonitor with the config's CoDel
  // parameters and returns it (owned by the manager) so the server can
  // feed it probe delays.
  QueueDelayMonitor* add_queue_delay_monitor(std::string name);
  void set_actions(OverloadActions actions);

  // One control-loop step: sample every monitor, fold the EWMAs, update
  // tier latches, and fire the engage/release callbacks that changed.
  void tick(TimePoint now);

  // Opportunistic tick from the request path: runs tick(now) only if at
  // least a quarter of the CoDel interval has passed since the last tick
  // (from any caller).  A single-threaded (SPED) loop digesting a long
  // backlog never returns to its housekeeping timer, so the control law
  // must get a chance to run *between requests* of the same pass.
  bool maybe_tick(TimePoint now);

  // ---- request-path reads (relaxed atomics, no lock) ---------------------
  [[nodiscard]] OverloadTier tier() const {
    return static_cast<OverloadTier>(tier_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool shedding() const {
    return tier() >= OverloadTier::kShed;
  }
  // Retry-After for 503s, derived from the measured pressure decay: the
  // estimated time for pressure to fall below the shed-release threshold
  // at its current decay rate, clamped to [retry_after_min,
  // retry_after_max].  Rising or flat pressure advertises the max.
  [[nodiscard]] std::chrono::seconds retry_after_hint() const {
    return std::chrono::seconds(
        retry_after_s_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] uint64_t accept_suspensions() const {
    return accept_suspensions_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] OverloadSnapshot snapshot() const;
  [[nodiscard]] const OverloadManagerConfig& config() const { return config_; }

 private:
  struct MonitorSlot {
    std::unique_ptr<ResourceMonitor> monitor;
    MonitorReading last;
    double smoothed = 0.0;
  };

  void update_retry_after_locked(TimePoint now, double pressure);

  const OverloadManagerConfig config_;
  // Engage thresholds indexed by tier-1 (kConserve..kStopAccept).
  double thresholds_[4];

  mutable std::mutex mutex_;
  std::vector<MonitorSlot> monitors_;
  OverloadActions actions_;
  bool engaged_[4] = {false, false, false, false};
  double pressure_ = 0.0;
  // Pressure decay tracking for the Retry-After derivation.
  TimePoint last_tick_{};
  double last_pressure_ = 0.0;
  uint64_t ticks_ = 0;

  std::atomic<int> tier_{0};
  std::atomic<int64_t> retry_after_s_;
  std::atomic<uint64_t> accept_suspensions_{0};
  // Cheap gate for maybe_tick(), updated by every tick().
  std::atomic<int64_t> last_tick_ns_{0};
};

}  // namespace cops::nserver
