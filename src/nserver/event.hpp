// Events and Asynchronous Completion Tokens.
//
// The N-Server's unit of work.  Each of the five request-handling steps and
// every service completion is packaged as an Event and flows through an
// EventProcessor.  The priority field exists for option O8 (event
// scheduling): the paper notes this field crosscuts the Event and
// Communicator classes when scheduling is generated.
//
// The Asynchronous Completion Token (Harrison & Schmidt, 1997) is the
// {connection id, generation} pair: a service response (e.g. a completed
// file read) is matched back to the connection that issued it, and a stale
// token (connection closed or recycled meanwhile) is detected and dropped
// instead of touching freed state.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace cops::nserver {

enum class EventKind : uint8_t {
  kAccept,      // new connection admitted
  kRead,        // socket readable (dispatcher-side, Read Request step)
  kDecode,      // Decode Request step
  kCompute,     // Handle Request step
  kEncode,      // Encode Reply step
  kSend,        // Send Reply step (dispatcher-side)
  kCompletion,  // asynchronous operation completed (file open/read, ...)
  kTimer,
  kUser,
  kShutdown,
};

[[nodiscard]] constexpr const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kAccept: return "Accept";
    case EventKind::kRead: return "Read";
    case EventKind::kDecode: return "Decode";
    case EventKind::kCompute: return "Compute";
    case EventKind::kEncode: return "Encode";
    case EventKind::kSend: return "Send";
    case EventKind::kCompletion: return "Completion";
    case EventKind::kTimer: return "Timer";
    case EventKind::kUser: return "User";
    case EventKind::kShutdown: return "Shutdown";
  }
  return "?";
}

// Asynchronous Completion Token: identifies the issuing connection
// generation-safely.
struct CompletionToken {
  uint64_t connection_id = 0;
  uint64_t generation = 0;

  friend bool operator==(const CompletionToken&,
                         const CompletionToken&) = default;
};

// A schedulable unit of work.  The action carries the bound step logic; the
// kind and token exist for scheduling, overload accounting, tracing, and
// completion matching.
struct Event {
  EventKind kind = EventKind::kUser;
  int priority = 0;  // 0 = highest; used only with event scheduling (O8)
  CompletionToken token;
  // Submission timestamp (trace_now_us), stamped by the EventProcessor when
  // profiling is on; 0 otherwise.  Feeds the queue_wait stage histogram.
  int64_t enqueued_us = 0;
  std::function<void()> action;
};

}  // namespace cops::nserver
