// ProcessorController — dynamic event-thread allocation (option O5).
//
// The paper's Table 2 lists a Processor Controller class whose existence is
// governed by O5: with Dynamic allocation the controller watches an Event
// Processor's queue and grows or shrinks its thread pool.  COPS-FTP used
// dynamic allocation (bursty command traffic); COPS-HTTP used static.
//
// Policy: sampled every tick —
//   * queue depth > grow_threshold  and threads < max  → add a thread
//   * queue empty for shrink_after consecutive ticks and threads > min
//     → retire a thread
#pragma once

#include <cstddef>

#include "nserver/event_processor.hpp"

namespace cops::nserver {

struct ProcessorControllerConfig {
  size_t min_threads = 1;
  size_t max_threads = 8;
  size_t grow_threshold = 4;   // queue depth that triggers growth
  int shrink_after_ticks = 10; // consecutive idle ticks before shrinking
};

class ProcessorController {
 public:
  ProcessorController(EventProcessor& processor,
                      ProcessorControllerConfig config)
      : processor_(processor), config_(config) {}

  // One control decision; call periodically (the Server drives this from
  // its housekeeping timer).  Returns the thread-count delta applied.
  int tick();

  [[nodiscard]] const ProcessorControllerConfig& config() const {
    return config_;
  }
  [[nodiscard]] uint64_t grow_count() const { return grows_; }
  [[nodiscard]] uint64_t shrink_count() const { return shrinks_; }

 private:
  EventProcessor& processor_;
  ProcessorControllerConfig config_;
  int idle_ticks_ = 0;
  uint64_t grows_ = 0;
  uint64_t shrinks_ = 0;
};

}  // namespace cops::nserver
