#include "nserver/debug_trace.hpp"

#include <cstdio>

namespace cops::nserver {

DebugTracer::~DebugTracer() { dump(); }

void DebugTracer::record(EventKind kind, uint64_t connection_id,
                         std::string detail) {
  std::lock_guard lock(mutex_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back({now(), kind, connection_id, std::move(detail)});
  ++total_;
}

void DebugTracer::dump() {
  std::deque<TraceRecord> records;
  uint64_t dropped = 0;
  {
    std::lock_guard lock(mutex_);
    records.swap(ring_);
    dropped = dropped_;
    dropped_ = 0;
  }
  if (records.empty() && dropped == 0) return;
  FILE* out = std::fopen(path_.c_str(), "a");
  if (out == nullptr) return;
  if (dropped > 0) {
    std::fprintf(out, "# %llu earlier events dropped (ring full)\n",
                 static_cast<unsigned long long>(dropped));
  }
  const TimePoint epoch = records.empty() ? now() : records.front().at;
  for (const auto& r : records) {
    std::fprintf(out, "%+10lldus conn=%llu %-10s %s\n",
                 static_cast<long long>(to_micros(r.at - epoch)),
                 static_cast<unsigned long long>(r.connection_id),
                 to_string(r.kind), r.detail.c_str());
  }
  std::fclose(out);
}

size_t DebugTracer::buffered() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

}  // namespace cops::nserver
