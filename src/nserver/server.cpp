#include "nserver/server.hpp"

#include <algorithm>
#include <future>

#include "common/logging.hpp"
#include "net/uring.hpp"
#include "nserver/admin_server.hpp"

namespace cops::nserver {

Server::Server(ServerOptions options, std::shared_ptr<AppHooks> hooks)
    : options_(std::move(options)), hooks_(std::move(hooks)) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (started_.exchange(true)) {
    return Status::invalid_argument("server already started");
  }
  if (auto problem = options_.validate(); !problem.empty()) {
    return Status::invalid_argument(problem);
  }

  // --- components selected by the options (generation-time in CO2P3S) ----
  if (options_.mode == ServerMode::kDebug) {
    tracer_ = std::make_unique<DebugTracer>(options_.debug_trace_path);
  }
  if (options_.cache_policy != CachePolicyKind::kNone) {
    cache_ = std::make_unique<FileCache>(
        make_cache_policy(options_.cache_policy, options_.cache_size_threshold,
                          custom_eviction_),
        options_.cache_capacity_bytes);
    cache_->set_revalidate_interval(options_.cache_revalidate_interval);
  }
  // S7 io_backend: resolve the requested backend against the runtime probe
  // before anything that depends on it (reactors, file service) is built.
  io_backend_effective_ = options_.io_backend;
  if (io_backend_effective_ == IoBackend::kIoUring &&
      !net::uring_available()) {
    COPS_WARN("io_backend=io_uring requested but unavailable "
              "(compiled out or kernel probe failed); falling back to epoll");
    io_backend_effective_ = IoBackend::kEpoll;
  }
  if (options_.completion == CompletionMode::kAsynchronous) {
    file_service_ = std::make_unique<FileIoService>(
        options_.file_io_threads,
        io_backend_effective_ == IoBackend::kIoUring);
  }

  EventProcessorConfig pcfg;
  pcfg.name = "reactive";
  pcfg.threads = options_.separate_processor_pool
                     ? (options_.thread_allocation == ThreadAllocation::kDynamic
                            ? options_.min_processor_threads
                            : options_.processor_threads)
                     : 0;
  pcfg.scheduling = options_.event_scheduling;
  pcfg.priority_quotas = options_.priority_quotas;
  pcfg.profiler = options_.profiling ? &profiler_ : nullptr;
  processor_ = std::make_unique<EventProcessor>(pcfg);

  if (options_.thread_allocation == ThreadAllocation::kDynamic &&
      options_.separate_processor_pool) {
    ProcessorControllerConfig ccfg;
    ccfg.min_threads = options_.min_processor_threads;
    ccfg.max_threads = options_.max_processor_threads;
    controller_ = std::make_unique<ProcessorController>(*processor_, ccfg);
  }

  if (options_.overload_control &&
      options_.overload_mode == OverloadMode::kWatermark) {
    overload_ = std::make_unique<OverloadController>(
        options_.queue_high_watermark, options_.queue_low_watermark);
    overload_->set_shed(options_.overload_shed);
    overload_->watch_queue("reactive",
                           [this] { return processor_->queue_depth(); });
    if (file_service_) {
      overload_->watch_queue("file-io",
                             [this] { return file_service_->pending(); });
    }
  }

  // --- dispatchers (O1) ----------------------------------------------------
  const int n_reactors = options_.dispatcher_threads;
  for (int i = 0; i < n_reactors; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->reactor = std::make_unique<net::Reactor>(
        io_backend_effective_ == IoBackend::kIoUring
            ? net::PollBackend::kUring
            : net::PollBackend::kEpoll);
    if (io_backend_effective_ == IoBackend::kIoUring &&
        shard->reactor->poll_backend() != net::PollBackend::kUring) {
      // Ring creation failed after the probe passed (e.g. fd limits):
      // this shard's Poller already fell back; report epoll overall.
      io_backend_effective_ = IoBackend::kEpoll;
    }
    if (options_.buffer_mgmt == BufferMgmt::kPooled) {
      // Context objects are small; size the slab blocks to fit the object
      // plus shared_ptr control block with headroom, and recycle read-buffer
      // backing stores at the configured block size.
      shard->ctx_pool = std::make_shared<SlabPool>(
          sizeof(RequestContext) + 128, /*blocks_per_chunk=*/64);
      shard->read_buffer_pool =
          std::make_shared<BufferPool>(options_.read_buffer_block_bytes);
    }
    if (cache_ && options_.cache_l1_entries > 0) {
      shard->l1_cache = std::make_unique<L1FileCache>(
          options_.cache_l1_entries, options_.cache_l1_entry_max_bytes,
          options_.cache_revalidate_interval);
    }
    shards_.push_back(std::move(shard));
  }

  // --- adaptive overload manager (O9, overload_mode = kAdaptive) ----------
  // Built after the shards so the per-shard event-loop-lag monitors and
  // pool-counter lambdas bind to live objects.
  if (options_.overload_control &&
      options_.overload_mode == OverloadMode::kAdaptive) {
    build_overload_manager();
  }

  // --- connector (Client Component) on dispatcher 0 -------------------------
  connector_ = std::make_unique<net::Connector>(*shards_[0]->reactor);

  // --- acceptor(s) ---------------------------------------------------------
  // kDispatch: the classic single listener on dispatcher 0.  kReuseport:
  // one SO_REUSEPORT listener per shard, registered with that shard's
  // reactor (safe here — the loops have not started yet), so the kernel
  // spreads connections and each accept lands on its owning shard.  Shard
  // 0 binds first to resolve port 0; the rest join the resolved port.
  const bool reuseport = options_.accept_path == AcceptPath::kReuseport;
  const size_t n_acceptors = reuseport ? shards_.size() : 1;
  for (size_t i = 0; i < n_acceptors; ++i) {
    auto acceptor = std::make_unique<net::Acceptor>(
        *shards_[i]->reactor, [this, i](net::TcpSocket socket) {
          on_accept(i, std::move(socket));
        });
    auto addr_result = net::InetAddress::parse(
        options_.listen_host, i == 0 ? options_.listen_port : port_);
    if (!addr_result.is_ok()) return addr_result.status();
    auto status =
        acceptor->open(addr_result.value(), options_.listen_backlog, reuseport);
    if (!status.is_ok()) return status;
    if (i == 0) {
      auto bound = acceptor->local_address();
      if (!bound.is_ok()) return bound.status();
      port_ = bound.value().port();
    }
    acceptors_.push_back(std::move(acceptor));
  }

  // --- admin endpoint (O11+) on dispatcher 0 -------------------------------
  if (options_.stats_export == StatsExport::kAdminHttp) {
    admin_ = std::make_unique<AdminServer>(*this, *shards_[0]->reactor);
    auto admin_addr =
        net::InetAddress::parse(options_.admin_host, options_.admin_port);
    if (!admin_addr.is_ok()) return admin_addr.status();
    auto admin_status = admin_->open(admin_addr.value());
    if (!admin_status.is_ok()) return admin_status;
    admin_port_ = admin_->port();
  }

  // --- housekeeping on dispatcher 0 ----------------------------------------
  shards_[0]->reactor->run_after(options_.housekeeping_interval,
                                 [this] { housekeeping(); });

  // --- SPED event-loop-lag samplers (adaptive O9) ---------------------------
  // Inline processors never queue, so the admission signal is how late each
  // shard's loop runs its timers.  Sample at least twice per CoDel window so
  // the sliding min always has fresh readings to work with.
  if (overload_mgr_ && processor_->inline_mode()) {
    Duration probe_interval =
        std::min(options_.housekeeping_interval, options_.overload_interval / 2);
    if (probe_interval < std::chrono::milliseconds(1)) {
      probe_interval = std::chrono::milliseconds(1);
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      schedule_loop_lag_probe(i, probe_interval);
    }
  }

  // S7 io_backend: route the socket shims (sys_read/sys_send/sys_writev)
  // through per-thread rings while this io_uring-backed instance runs.
  // Process-wide refcounted switch; sim fds are exempt by construction.
  if (io_backend_effective_ == IoBackend::kIoUring) {
    net::enable_uring_ops();
    uring_ops_on_ = true;
  }

  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->reactor->start_thread("dispatch-" + std::to_string(i));
  }
  launched_.store(true);
  if (options_.logging) {
    COPS_INFO("N-Server listening on " << options_.listen_host << ":"
                                       << port_ << " with "
                                       << shards_.size() << " dispatcher(s)");
  }
  return Status::ok();
}

void Server::stop() {
  // A failed start() never launched the dispatchers; posting to them and
  // waiting on the future would deadlock.
  if (!launched_.load() || stopping_.exchange(true)) return;

  // Close acceptor + every connection on each shard's own thread.
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto& shard = *shards_[i];
    std::promise<void> done;
    auto fut = done.get_future();
    shard.reactor->post([this, i, &shard, &done] {
      if (i < acceptors_.size() && acceptors_[i]) acceptors_[i]->close();
      if (i == 0 && admin_) admin_->close();
      // close() mutates the map via remove_connection; copy first.
      std::vector<std::shared_ptr<Connection>> conns;
      conns.reserve(shard.connections.size());
      for (auto& [id, conn] : shard.connections) conns.push_back(conn);
      for (auto& conn : conns) conn->close("server-stop");
      done.set_value();
    });
    fut.wait();
  }
  for (auto& shard : shards_) {
    shard->reactor->stop();
    shard->reactor->join();
  }
  processor_->stop();
  if (file_service_) file_service_->stop();
  if (uring_ops_on_) {
    net::disable_uring_ops();
    uring_ops_on_ = false;
  }
  if (tracer_) tracer_->dump();
}

size_t Server::count_active_pipelines() {
  size_t total = 0;
  for (auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::promise<size_t> count;
    auto fut = count.get_future();
    shard.reactor->post([&shard, &count] {
      size_t active = 0;
      for (const auto& [id, conn] : shard.connections) {
        if (conn->pipeline_active()) ++active;
      }
      count.set_value(active);
    });
    total += fut.get();
  }
  return total;
}

bool Server::drain(std::chrono::milliseconds timeout) {
  if (!launched_.load() || stopping_.load()) return true;
  // Visible to the admin endpoint immediately: /healthz flips to 503 so
  // upstream health checks stop routing here while we finish in-flight work.
  draining_.store(true, std::memory_order_relaxed);
  // Step 1: no new connections — close every acceptor on its own shard.
  for (size_t i = 0; i < acceptors_.size(); ++i) {
    std::promise<void> done;
    auto fut = done.get_future();
    shards_[i]->reactor->post([this, i, &done] {
      if (acceptors_[i]) acceptors_[i]->close();
      done.set_value();
    });
    fut.wait();
  }
  // Step 2: wait for in-flight work to resolve.
  const auto deadline = now() + timeout;
  bool idle = false;
  while (now() < deadline) {
    const bool queues_empty =
        processor_->queue_depth() == 0 &&
        (!file_service_ || file_service_->pending() == 0);
    if (queues_empty && count_active_pipelines() == 0) {
      idle = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop();
  return idle;
}

// ---- accept path -----------------------------------------------------------

void Server::on_accept(size_t acceptor_shard, net::TcpSocket socket) {
  if (options_.max_connections != 0) {
    // Overload mechanism 1: bounded simultaneous connections.  Under
    // kReuseport accepts race on every shard, so the check must be a
    // reservation — increment first, roll back past the cap — rather than
    // a load that several shards could pass simultaneously.
    const size_t prev =
        num_connections_.fetch_add(1, std::memory_order_relaxed);
    if (prev >= options_.max_connections) {
      num_connections_.fetch_sub(1, std::memory_order_relaxed);
      if (options_.profiling) profiler_.count_reject();
      note_event(EventKind::kAccept, 0, "rejected-max-connections");
      return;  // socket destructor sends RST/close
    }
  }
  std::string ip_key;
  if (options_.max_connections_per_ip != 0) {
    if (auto addr = socket.peer_address(); addr.is_ok()) {
      ip_key = addr.value().host();
      std::lock_guard lock(ip_counts_mutex_);
      auto& count = ip_counts_[ip_key];
      if (count >= options_.max_connections_per_ip) {
        if (options_.max_connections != 0) {
          num_connections_.fetch_sub(1, std::memory_order_relaxed);
        }
        if (options_.profiling) profiler_.count_per_ip_reject();
        note_event(EventKind::kAccept, 0, "rejected-per-ip-cap");
        return;  // socket destructor sends RST/close
      }
      ++count;
    }
  }
  // kReuseport: the kernel already picked this shard's listener — the
  // connection stays local and the cross-thread dispatch hop disappears.
  // kDispatch: classic round-robin from the single shard-0 listener.
  const size_t shard_index =
      options_.accept_path == AcceptPath::kReuseport
          ? acceptor_shard
          : next_shard_.fetch_add(1, std::memory_order_relaxed) %
                shards_.size();
  shards_[shard_index]->accepts.fetch_add(1, std::memory_order_relaxed);
  if (options_.profiling) profiler_.count_accept();
  const bool counted = options_.max_connections != 0;
  if (shard_index == acceptor_shard) {
    add_connection(shard_index, std::move(socket), std::move(ip_key), counted);
  } else {
    // Hand the socket to its shard's dispatcher thread.
    auto* raw = new net::TcpSocket(std::move(socket));
    shards_[shard_index]->reactor->post(
        [this, shard_index, raw, counted,
         ip_key = std::move(ip_key)]() mutable {
          net::TcpSocket sock(std::move(*raw));
          delete raw;
          add_connection(shard_index, std::move(sock), std::move(ip_key),
                         counted);
        });
  }
}

uint64_t Server::add_connection(size_t shard_index, net::TcpSocket socket,
                                std::string ip_key, bool counted) {
  const uint64_t id = next_conn_id_.fetch_add(1);
  auto& shard = *shards_[shard_index];
  auto conn = std::make_shared<Connection>(*this, *shard.reactor,
                                           std::move(socket), id, shard_index);
  conn->ip_key_ = std::move(ip_key);
  shard.connections.emplace(id, conn);
  if (options_.stats_export != StatsExport::kNone) {
    std::lock_guard lock(conn_registry_mutex_);
    conn_registry_.emplace(id, conn);
  }
  if (!counted) num_connections_.fetch_add(1);
  shard.open_connections.fetch_add(1, std::memory_order_relaxed);
  note_event(EventKind::kAccept, id, "accepted");
  if (options_.logging) {
    COPS_INFO("accepted connection " << id << " from " << conn->peer());
  }
  conn->start();
  return id;
}

void Server::connect_peer(const net::InetAddress& peer,
                          ConnectCallback on_done) {
  if (!launched_.load() || stopping_.load()) {
    on_done(Status::unavailable("server not running"));
    return;
  }
  // The Connector lives on dispatcher 0; hop there to initiate.
  shards_[0]->reactor->post([this, peer,
                             on_done = std::move(on_done)]() mutable {
    auto status = connector_->connect(
        peer,
        [this, on_done = std::move(on_done)](
            Result<net::TcpSocket> socket) mutable {
          if (!socket.is_ok()) {
            on_done(socket.status());
            return;
          }
          const size_t shard_index =
              next_shard_.fetch_add(1, std::memory_order_relaxed) %
              shards_.size();
          if (options_.profiling) profiler_.count_accept();
          if (shard_index == 0) {
            on_done(add_connection(0, std::move(socket).take()));
            return;
          }
          auto* raw = new net::TcpSocket(std::move(socket).take());
          shards_[shard_index]->reactor->post(
              [this, shard_index, raw, on_done = std::move(on_done)] {
                net::TcpSocket sock(std::move(*raw));
                delete raw;
                on_done(add_connection(shard_index, std::move(sock)));
              });
        });
    if (!status.is_ok()) on_done(status);
  });
}

void Server::set_accept_suspended(bool on) {
  // Acceptors are reactor-confined; this runs on the shard-0 housekeeping
  // thread, so shard 0's acceptor is adjusted inline and the others (one
  // per shard under kReuseport) get the flip posted to their own loops.
  for (size_t i = 0; i < acceptors_.size(); ++i) {
    auto* acceptor = acceptors_[i].get();
    if (i == 0) {
      if (on) {
        acceptor->suspend();
      } else {
        acceptor->resume();
      }
    } else {
      shards_[i]->reactor->post([acceptor, on] {
        if (on) {
          acceptor->suspend();
        } else {
          acceptor->resume();
        }
      });
    }
  }
  accept_suspended_ = on;
}

void Server::remove_connection(Connection& conn) {
  auto& shard = *shards_[conn.shard_index()];
  if (options_.stats_export != StatsExport::kNone) {
    std::lock_guard lock(conn_registry_mutex_);
    conn_registry_.erase(conn.id());
  }
  if (shard.connections.erase(conn.id()) > 0) {
    num_connections_.fetch_sub(1);
    shard.open_connections.fetch_sub(1, std::memory_order_relaxed);
    if (!conn.ip_key_.empty()) {
      std::lock_guard lock(ip_counts_mutex_);
      auto it = ip_counts_.find(conn.ip_key_);
      if (it != ip_counts_.end() && --it->second == 0) ip_counts_.erase(it);
    }
    if (options_.profiling) profiler_.count_close();
    if (options_.logging) {
      COPS_INFO("closed connection " << conn.id());
    }
    hooks_->on_close(conn.id());
  }
}

// ---- pipeline ---------------------------------------------------------------

RequestContextPtr Server::make_context(
    const std::shared_ptr<Connection>& conn) {
  if (options_.buffer_mgmt == BufferMgmt::kPooled) {
    const auto& pool = shards_[conn->shard_index()]->ctx_pool;
    if (pool) {
      // Object + control block in one slab block: the per-request context
      // allocation becomes a free-list pop.
      return std::allocate_shared<RequestContext>(
          PoolAllocator<RequestContext>(pool), *this, conn);
    }
  }
  return std::make_shared<RequestContext>(*this, conn);
}

void Server::submit_decode(const std::shared_ptr<Connection>& conn) {
  note_event(EventKind::kDecode, conn->id(), "queued");
  Event event;
  event.kind = EventKind::kDecode;
  event.priority = conn->priority();
  event.token = {conn->id(), conn->generation()};
  event.action = [this, conn] { run_decode(conn); };
  processor_->submit(std::move(event));
}

void Server::run_decode(const std::shared_ptr<Connection>& conn) {
  if (conn->closed()) return;
  DecodeResult result;
  RequestContextPtr ctx;
  if (options_.encode_decode) {
    ctx = make_context(conn);
    try {
      result = hooks_->decode(*ctx, conn->in_buffer());
    } catch (const std::exception& e) {
      COPS_WARN("decode hook threw: " << e.what());
      result = DecodeResult::error();
    }
  } else {
    // Fig. 2 variant: no Decode step — raw chunks go straight to Handle.
    if (conn->in_buffer().empty()) {
      result = DecodeResult::need_more();
    } else {
      result = DecodeResult::request_ready(conn->in_buffer().take_string());
    }
  }

  switch (result.status) {
    case DecodeStatus::kNeedMore:
      conn->reactor().post([conn] { conn->resume_reading(); });
      return;
    case DecodeStatus::kError:
      if (options_.profiling) profiler_.count_decode_error();
      conn->reactor().post([conn] { conn->close("decode-error"); });
      return;
    case DecodeStatus::kReject:
      // Protocol-level rejection (400/413/501, ...): the carried response
      // goes through the normal Encode + Send path, then the connection
      // closes — deterministic for the peer, no parser desync for us.
      if (options_.profiling) profiler_.count_decode_error();
      note_event(EventKind::kEncode, conn->id(), "decode-reject");
      ctx->close_after_reply();
      ctx->reply(std::move(result.request));
      return;
    case DecodeStatus::kRequest:
      break;
  }

  if (options_.profiling) {
    profiler_.count_request();
    auto& trace = conn->trace();
    const int64_t now_us = trace_now_us();
    trace.decode_done_us.store(now_us, TraceContext::kRelaxed);
    profiler_.record_stage(Stage::kDecode,
                           TraceContext::elapsed(trace.read_done_us, now_us));
  }
  conn->note_request();
  conn->set_priority(result.priority);
  if (options_.event_scheduling) {
    // Scheduling generates a distinct Compute event so the priority queue
    // can reorder requests between Decode and Handle.
    note_event(EventKind::kCompute, conn->id(), "queued");
    Event event;
    event.kind = EventKind::kCompute;
    event.priority = result.priority;
    event.token = {conn->id(), conn->generation()};
    auto request = std::make_shared<std::any>(std::move(result.request));
    const int priority = result.priority;
    event.action = [this, conn, request, priority] {
      run_handle(conn, std::move(*request), priority);
    };
    processor_->submit(std::move(event));
  } else {
    run_handle(conn, std::move(result.request), result.priority);
  }
}

void Server::run_handle(const std::shared_ptr<Connection>& conn,
                        std::any request, int priority) {
  if (conn->closed()) return;
  note_event(EventKind::kCompute, conn->id(), "handle");
  if (options_.profiling) {
    conn->trace().handle_start_us.store(trace_now_us(),
                                        TraceContext::kRelaxed);
  }
  auto ctx = make_context(conn);
  ctx->priority_ = priority;
  try {
    hooks_->handle(*ctx, std::move(request));
  } catch (const std::exception& e) {
    COPS_WARN("handle hook threw: " << e.what());
    ctx->close();
  }
}

void Server::resolve_with_reply(RequestContext& ctx, std::any response) {
  if (!ctx.mark_resolved()) return;
  if (options_.profiling) {
    auto& trace = ctx.conn_->trace();
    const int64_t now_us = trace_now_us();
    trace.resolve_us.store(now_us, TraceContext::kRelaxed);
    profiler_.record_stage(
        Stage::kHandle, TraceContext::elapsed(trace.handle_start_us, now_us));
  }
  EncodedReply reply;
  if (options_.encode_decode) {
    note_event(EventKind::kEncode, ctx.conn_->id(), "encode");
    try {
      reply = hooks_->encode_reply(ctx, std::move(response));
    } catch (const std::exception& e) {
      COPS_WARN("encode hook threw: " << e.what());
      auto conn = ctx.conn_;
      conn->reactor().post([conn] { conn->close("encode-error"); });
      return;
    }
  } else {
    reply = EncodedReply::from_string(
        std::any_cast<std::string>(std::move(response)));
  }
  if (options_.profiling) {
    auto& trace = ctx.conn_->trace();
    const int64_t now_us = trace_now_us();
    trace.encode_done_us.store(now_us, TraceContext::kRelaxed);
    profiler_.record_stage(Stage::kEncode,
                           TraceContext::elapsed(trace.resolve_us, now_us));
  }
  auto conn = ctx.conn_;
  conn->reactor().post([conn, reply = std::move(reply)]() mutable {
    conn->queue_send(std::move(reply), /*completes_request=*/true);
  });
}

// ---- services ---------------------------------------------------------------

void Server::fetch_file(RequestContextPtr ctx, std::string path,
                        RequestContext::FetchCallback done) {
  // Two-tier lookup: the requesting connection's shard L1 first (lock-free,
  // allocation-free), then the shared policy L2.  An L2 hit is promoted
  // into this shard's L1, so after one shard's miss has filled the L2 every
  // shard warms its own L1 without cross-shard writes.
  L1FileCache* l1 = nullptr;
  if (cache_) {
    l1 = shards_[ctx->conn_->shard_index()]->l1_cache.get();
    if (l1) {
      if (auto hit = l1->lookup(path, cache_->invalidation_epoch())) {
        done(*ctx, std::move(hit));
        return;
      }
    }
    if (auto hit = cache_->lookup(path)) {
      if (l1) l1->promote(path, hit, cache_->invalidation_epoch());
      done(*ctx, std::move(hit));
      return;
    }
  }
  // send_path = sendfile: large cache misses come back as open descriptors
  // (drained by the connection with sendfile) instead of in-memory bytes;
  // they bypass the cache, which keeps holding the small, hot files.
  FileLoadOptions load;
  load.open_for_sendfile = options_.send_path == SendPath::kSendfile;
  load.sendfile_min_bytes = options_.sendfile_min_bytes;
  if (options_.completion == CompletionMode::kAsynchronous && file_service_) {
    CompletionToken token{ctx->conn_->id(), ctx->conn_->generation()};
    const int priority = ctx->priority();
    auto executor = [this, priority, token](std::function<void()> fn) {
      note_event(EventKind::kCompletion, token.connection_id, "file");
      Event event;
      event.kind = EventKind::kCompletion;
      event.priority = priority;
      event.token = token;
      event.action = std::move(fn);
      processor_->submit(std::move(event));
    };
    file_service_->async_load(
        path, load, token,
        [this, ctx, l1, path,
         done = std::move(done)](Result<FileDataPtr> result) {
          if (result.is_ok() && cache_ && result.value()->fd < 0) {
            cache_->insert(result.value()->path, result.value());
            if (l1) {
              l1->promote(path, result.value(),
                          cache_->invalidation_epoch());
            }
          }
          if (ctx->connection_closed()) return;  // stale completion token
          done(*ctx, std::move(result));
        },
        std::move(executor));
  } else {
    // Synchronous completions (O4): block this processor thread.
    auto result = FileIoService::load_file(path, load);
    if (result.is_ok() && cache_ && result.value()->fd < 0) {
      cache_->insert(path, result.value());
      if (l1) {
        l1->promote(path, result.value(), cache_->invalidation_epoch());
      }
    }
    done(*ctx, std::move(result));
  }
}

// ---- overload manager (adaptive O9) ------------------------------------------

void Server::build_overload_manager() {
  OverloadManagerConfig cfg;
  cfg.target_delay = options_.overload_target_delay;
  cfg.interval = options_.overload_interval;
  cfg.ewma_alpha = options_.overload_ewma_alpha;
  cfg.hysteresis = options_.overload_hysteresis;
  cfg.retry_after_min = options_.overload_retry_after;
  cfg.retry_after_max = options_.overload_retry_after_max;
  overload_mgr_ = std::make_unique<OverloadManager>(cfg);

  // Queue-delay monitors (the CoDel admission signal).  With a separate
  // processor pool the probe rides the event queue itself; in SPED mode
  // nothing is ever queued (submit runs inline), so each shard measures
  // event-loop lag instead — how late the loop fires a periodic timer
  // (see schedule_loop_lag_probe), which is exactly the delay a newly
  // ready request experiences.
  if (!processor_->inline_mode()) {
    delay_monitors_.push_back(
        overload_mgr_->add_queue_delay_monitor("queue_delay"));
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      auto* monitor = overload_mgr_->add_queue_delay_monitor(
          "loop_delay_" + std::to_string(i));
      // A long pass starves the probe timer itself, so fold the pending
      // probe's overdue-ness into the window — the standing lag is visible
      // before the timer manages to fire.
      auto* shard = shards_[i].get();
      monitor->set_overdue_hint([shard] {
        const int64_t expected =
            shard->lag_probe_expected_ns.load(std::memory_order_relaxed);
        if (expected == 0) return 0.0;
        const int64_t now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now().time_since_epoch())
                .count();
        return now_ns > expected ? static_cast<double>(now_ns - expected) *
                                       1e-9
                                 : 0.0;
      });
      delay_monitors_.push_back(monitor);
    }
  }

  if (options_.max_connections > 0) {
    overload_mgr_->add_monitor(std::make_unique<GaugeMonitor>(
        "connections",
        [this] { return static_cast<double>(num_connections_.load()); },
        static_cast<double>(options_.max_connections)));
  }
  if (options_.buffer_mgmt == BufferMgmt::kPooled) {
    // A rising pool-miss fraction means the recyclers are growing — the
    // request path left its zero-allocation steady state.  50% misses in a
    // tick window maps to pressure 1.0.
    auto misses = [this] {
      uint64_t n = 0;
      for (const auto& shard : shards_) {
        if (shard->ctx_pool) n += shard->ctx_pool->misses();
        if (shard->read_buffer_pool) n += shard->read_buffer_pool->misses();
      }
      return n;
    };
    auto requests = [this] {
      uint64_t n = 0;
      for (const auto& shard : shards_) {
        if (shard->ctx_pool) {
          n += shard->ctx_pool->hits() + shard->ctx_pool->misses();
        }
        if (shard->read_buffer_pool) {
          n += shard->read_buffer_pool->hits() +
               shard->read_buffer_pool->misses();
        }
      }
      return n;
    };
    overload_mgr_->add_monitor(std::make_unique<RateMonitor>(
        "pool_miss_rate", std::move(misses), std::move(requests), 0.5));
  }
  if (options_.overload_max_heap_bytes > 0) {
    overload_mgr_->add_monitor(std::make_unique<GaugeMonitor>(
        "heap_bytes",
        [this] {
          uint64_t n = 0;
          for (const auto& shard : shards_) {
            if (shard->ctx_pool) n += shard->ctx_pool->heap_bytes();
            if (shard->read_buffer_pool) {
              n += shard->read_buffer_pool->heap_bytes();
            }
          }
          return static_cast<double>(n);
        },
        static_cast<double>(options_.overload_max_heap_bytes)));
  }

  // Graduated actions.  tick() runs from housekeeping on the reactor-0
  // thread, where the acceptor lives — suspend/resume need no hop.
  OverloadActions actions;
  actions.conserve = [this](bool on) {
    conserve_idle_.store(on, std::memory_order_relaxed);
    note_event(EventKind::kUser, 0,
               on ? "overload-conserve" : "overload-conserve-release");
  };
  actions.pause_low_priority = [this](bool on) {
    processor_->pause_low_priority(on);
    note_event(EventKind::kUser, 0,
               on ? "overload-pause-low-prio" : "overload-resume-low-prio");
  };
  actions.shed = [this](bool on) {
    shedding_.store(on, std::memory_order_relaxed);
    note_event(EventKind::kUser, 0,
               on ? "overload-shed" : "overload-shed-release");
  };
  actions.stop_accept = [this](bool on) {
    if (acceptors_.empty()) return;
    set_accept_suspended(on);
    if (on && options_.profiling) profiler_.count_overload_suspension();
    note_event(EventKind::kUser, 0,
               on ? "overload-suspend" : "overload-resume");
  };
  overload_mgr_->set_actions(std::move(actions));
}

void Server::launch_overload_probes() {
  if (processor_->inline_mode()) return;  // lag samplers self-schedule
  const auto t0 = now();
  Event probe;
  probe.kind = EventKind::kUser;
  probe.priority = 0;  // probes must not be parked by the tier-2 pause
  auto* monitor = delay_monitors_[0];
  probe.action = [monitor, t0] { monitor->record_delay(now() - t0); };
  processor_->submit(std::move(probe));
}

void Server::schedule_loop_lag_probe(size_t shard_index, Duration interval) {
  // A timer due at `expected` fires on the first poll pass after that
  // instant; every pass spent grinding through ready sockets pushes the
  // fire time out, so the lateness is exactly the standing loop lag.  A
  // one-off busy pass records one late sample that the sliding window's
  // min forgives; only sustained lag drives pressure up.
  auto* monitor = delay_monitors_[shard_index];
  const TimePoint expected = now() + interval;
  shards_[shard_index]->lag_probe_expected_ns.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          expected.time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  shards_[shard_index]->reactor->run_after(
      interval, [this, shard_index, interval, monitor, expected] {
        if (stopping_.load()) return;
        monitor->record_delay(now() - expected);
        schedule_loop_lag_probe(shard_index, interval);
      });
}

// ---- housekeeping ------------------------------------------------------------

void Server::housekeeping() {
  if (stopping_.load()) return;

  if (overload_mgr_) {
    // Launch this tick's sentinel probes first (they record on a later
    // loop pass), then fold whatever has arrived into the control loop.
    launch_overload_probes();
    overload_mgr_->tick(now());
  }

  if (overload_ && !acceptors_.empty()) {
    switch (overload_->evaluate()) {
      case OverloadController::Decision::kSuspend:
        set_accept_suspended(true);
        if (options_.profiling) profiler_.count_overload_suspension();
        note_event(EventKind::kUser, 0, "overload-suspend");
        break;
      case OverloadController::Decision::kResume:
        set_accept_suspended(false);
        note_event(EventKind::kUser, 0, "overload-resume");
        break;
      case OverloadController::Decision::kNoChange:
        break;
    }
    // Shed tier (O9): mirror the controller's decision into the atomic the
    // worker threads read through RequestContext::should_shed().
    shedding_.store(overload_->should_shed(), std::memory_order_relaxed);
  }

  if (controller_) controller_->tick();

  if (options_.shutdown_long_idle || options_.header_read_timeout.count() > 0 ||
      conserve_idle_.load(std::memory_order_relaxed)) {
    reap_idle(*shards_[0]);
    for (size_t i = 1; i < shards_.size(); ++i) {
      auto* shard = shards_[i].get();
      shard->reactor->post([this, shard] { reap_idle(*shard); });
    }
  }

  shards_[0]->reactor->run_after(options_.housekeeping_interval,
                                 [this] { housekeeping(); });
}

void Server::reap_idle(Shard& shard) {
  // Adaptive O9 tier-1 action: under pressure, keep-alive connections are
  // a luxury — shrink the idle window to a quarter (floor 10ms) and reap
  // even when O7 is off.
  const bool conserve = conserve_idle_.load(std::memory_order_relaxed);
  auto idle_timeout = options_.idle_timeout;
  if (conserve) {
    idle_timeout = std::max(idle_timeout / 4,
                            std::chrono::milliseconds(10));
  }
  const bool reap_long_idle = options_.shutdown_long_idle || conserve;
  const auto idle_deadline = now() - idle_timeout;
  const bool slowloris = options_.header_read_timeout.count() > 0;
  const auto partial_deadline = now() - options_.header_read_timeout;
  std::vector<std::shared_ptr<Connection>> idle;
  std::vector<std::shared_ptr<Connection>> stalled;
  for (auto& [id, conn] : shard.connections) {
    if (conn->pipeline_active()) continue;
    // Slowloris defense: a connection stuck mid-request is judged against
    // the (shorter) header_read_timeout from the moment the partial request
    // began — last_activity() is irrelevant, since drip-feeding refreshes it.
    if (slowloris && conn->partial_since() != TimePoint{} &&
        conn->partial_since() < partial_deadline) {
      stalled.push_back(conn);
      continue;
    }
    if (reap_long_idle && conn->last_activity() < idle_deadline) {
      idle.push_back(conn);
    }
  }
  for (auto& conn : stalled) {
    if (options_.profiling) profiler_.count_header_timeout();
    conn->close("header-timeout");
  }
  for (auto& conn : idle) {
    if (options_.profiling) profiler_.count_idle_shutdown();
    conn->close("idle-timeout");
  }
}

// ---- misc ---------------------------------------------------------------------

void Server::note_event(EventKind kind, uint64_t conn_id, const char* detail) {
  if (tracer_) tracer_->record(kind, conn_id, detail);
}

ProfilerSnapshot Server::profile() const {
  auto snapshot = profiler_.snapshot(processor_ ? processor_->processed() : 0,
                                     cache_ ? cache_->hit_rate() : 0.0,
                                     cache_ ? cache_->invalidations() : 0);
  // buffer_mgmt=pooled recycler totals, summed over the per-shard pools.
  for (const auto& shard : shards_) {
    if (shard->ctx_pool) {
      snapshot.pool_hits += shard->ctx_pool->hits();
      snapshot.pool_misses += shard->ctx_pool->misses();
      snapshot.pool_alloc_bytes += shard->ctx_pool->heap_bytes();
    }
    if (shard->read_buffer_pool) {
      snapshot.pool_hits += shard->read_buffer_pool->hits();
      snapshot.pool_misses += shard->read_buffer_pool->misses();
      snapshot.pool_alloc_bytes += shard->read_buffer_pool->heap_bytes();
    }
    // Two-tier cache: sum the per-shard L1 tiers (zero with the L1 off).
    if (shard->l1_cache) {
      snapshot.l1_hits += shard->l1_cache->hits();
      snapshot.l1_misses += shard->l1_cache->misses();
      snapshot.l1_promotions += shard->l1_cache->promotions();
    }
  }
  if (const uint64_t total = snapshot.l1_hits + snapshot.l1_misses) {
    snapshot.l1_hit_rate =
        static_cast<double>(snapshot.l1_hits) / static_cast<double>(total);
  }
  return snapshot;
}

StatsSnapshot Server::stats_snapshot() const {
  StatsSnapshot s;
  s.counters = profile();
  s.connections_open = num_connections_.load();
  s.queue_depth = processor_ ? processor_->queue_depth() : 0;
  s.processor_threads = processor_ ? processor_->num_threads() : 0;
  s.file_io_pending = file_service_ ? file_service_->pending() : 0;
  if (overload_mgr_) {
    s.has_overload = true;
    s.overload = overload_mgr_->snapshot();
  }
  if (cache_) {
    s.has_cache = true;
    s.cache_hits = cache_->hits();
    s.cache_misses = cache_->misses();
    s.cache_evictions = cache_->evictions();
    s.cache_invalidations = cache_->invalidations();
    s.cache_bytes = cache_->size_bytes();
    s.cache_capacity_bytes = cache_->capacity_bytes();
    s.cache_entries = cache_->entry_count();
  }
  s.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto& shard = *shards_[i];
    ShardStats row;
    row.shard = i;
    row.accepts = shard.accepts.load(std::memory_order_relaxed);
    row.connections_open =
        shard.open_connections.load(std::memory_order_relaxed);
    if (shard.l1_cache) {
      row.l1_hits = shard.l1_cache->hits();
      row.l1_misses = shard.l1_cache->misses();
      row.l1_promotions = shard.l1_cache->promotions();
      row.l1_hit_rate = shard.l1_cache->hit_rate();
    }
    s.shards.push_back(row);
  }
  {
    std::lock_guard lock(conn_registry_mutex_);
    s.connections.reserve(conn_registry_.size());
    for (const auto& [id, weak] : conn_registry_) {
      auto conn = weak.lock();
      if (!conn || conn->closed()) continue;
      s.connections.push_back({id, conn->peer(), conn->bytes_read_total(),
                               conn->bytes_sent_total(),
                               conn->requests_total()});
    }
  }
  std::sort(s.connections.begin(), s.connections.end(),
            [](const ConnectionStats& a, const ConnectionStats& b) {
              return a.id < b.id;
            });
  return s;
}

}  // namespace cops::nserver
