// Profiler — performance profiling (option O11).
//
// "Important statistical information of the server application can be
// automatically gathered ... the number of connections accepted, the number
// of bytes read, the number of bytes sent, the file cache hit rate, etc."
// (paper, Section IV).  Counters are relaxed atomics: profiling must not
// serialize the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace cops::nserver {

struct ProfilerSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  // max-connections limiter (O9)
  uint64_t bytes_read = 0;
  uint64_t bytes_sent = 0;
  uint64_t requests_decoded = 0;
  uint64_t replies_sent = 0;
  uint64_t decode_errors = 0;
  uint64_t events_processed = 0;
  uint64_t idle_shutdowns = 0;        // O7 reaper
  uint64_t overload_suspensions = 0;  // O9 watermark trips
  double cache_hit_rate = 0.0;

  [[nodiscard]] std::string to_string() const;
};

class Profiler {
 public:
  void count_accept() { accepts_.fetch_add(1, kRelaxed); }
  void count_close() { closes_.fetch_add(1, kRelaxed); }
  void count_reject() { rejects_.fetch_add(1, kRelaxed); }
  void count_bytes_read(uint64_t n) { bytes_read_.fetch_add(n, kRelaxed); }
  void count_bytes_sent(uint64_t n) { bytes_sent_.fetch_add(n, kRelaxed); }
  void count_request() { requests_.fetch_add(1, kRelaxed); }
  void count_reply() { replies_.fetch_add(1, kRelaxed); }
  void count_decode_error() { decode_errors_.fetch_add(1, kRelaxed); }
  void count_idle_shutdown() { idle_shutdowns_.fetch_add(1, kRelaxed); }
  void count_overload_suspension() { suspensions_.fetch_add(1, kRelaxed); }

  [[nodiscard]] ProfilerSnapshot snapshot(uint64_t events_processed = 0,
                                          double cache_hit_rate = 0.0) const;
  void reset();

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> closes_{0};
  std::atomic<uint64_t> rejects_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> replies_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> idle_shutdowns_{0};
  std::atomic<uint64_t> suspensions_{0};
};

}  // namespace cops::nserver
