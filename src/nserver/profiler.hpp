// Profiler — performance profiling (option O11).
//
// "Important statistical information of the server application can be
// automatically gathered ... the number of connections accepted, the number
// of bytes read, the number of bytes sent, the file cache hit rate, etc."
// (paper, Section IV).  Counters are relaxed atomics: profiling must not
// serialize the hot path.
//
// Beyond the paper's counters, the profiler keeps per-stage latency
// histograms over the five-step request cycle (queue wait, Decode, Handle,
// Encode, reply Write, plus end-to-end).  Recording goes to a thread-local
// shard — one histogram set per recording thread — so concurrent processor
// threads never contend on the same cache lines; shards are merged only
// when a scrape (admin /stats, snapshot) asks for them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace cops::nserver {

// Stages of the request cycle with recorded latency distributions.
enum class Stage : uint8_t {
  kQueueWait,  // submit → a processor thread picks the event up
  kDecode,     // pipeline start → Decode produced a request
  kHandle,     // Handle invoked → resolved (includes awaited file I/O)
  kEncode,     // resolve → Encode produced wire bytes
  kWrite,      // wire bytes queued → reply fully drained to the socket
  kTotal,      // pipeline start → reply drained (end-to-end)
};
inline constexpr size_t kStageCount = 6;

[[nodiscard]] constexpr const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kDecode: return "decode";
    case Stage::kHandle: return "handle";
    case Stage::kEncode: return "encode";
    case Stage::kWrite: return "write";
    case Stage::kTotal: return "total";
  }
  return "?";
}

struct ProfilerSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  // max-connections limiter (O9)
  uint64_t bytes_read = 0;
  uint64_t bytes_sent = 0;
  uint64_t requests_decoded = 0;
  uint64_t replies_sent = 0;
  uint64_t decode_errors = 0;
  uint64_t events_processed = 0;
  uint64_t idle_shutdowns = 0;         // O7 reaper
  uint64_t header_timeouts = 0;        // O7+ slowloris reaper
  uint64_t overload_suspensions = 0;   // O9 watermark trips
  uint64_t requests_shed = 0;          // O9 shed tier (503 replies)
  uint64_t per_ip_rejections = 0;      // per-IP connection cap
  uint64_t cache_invalidations = 0;    // O6 stale entries dropped
  uint64_t send_writev_calls = 0;      // send path: completed writev gathers
  uint64_t send_bytes_copied = 0;      // bytes materialised per reply path
  uint64_t send_sendfile_bytes = 0;    // bytes moved by sendfile(2)
  uint64_t send_chunked_replies = 0;   // replies framed with chunked coding
  // buffer_mgmt=pooled recycler totals, aggregated over every shard's
  // context slab + read-buffer pool by Server::profile() (all three stay 0
  // under per_request).
  uint64_t pool_hits = 0;        // allocations served from a free-list
  uint64_t pool_misses = 0;      // pool had to grow (or oversize fallback)
  uint64_t pool_alloc_bytes = 0; // heap bytes the pools pulled in total
  double cache_hit_rate = 0.0;
  // Two-tier cache (cache_l1_entries > 0): per-shard L1 totals, aggregated
  // over every shard by Server::profile(); all stay 0 with the L1 off.
  // cache_hit_rate above remains the L2's own rate.
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l1_promotions = 0;    // entries copied up from the shared L2
  double l1_hit_rate = 0.0;

  // Merged per-stage latency distributions (index by Stage).
  std::array<Histogram, kStageCount> stages;

  [[nodiscard]] std::string to_string() const;
};

class Profiler {
 public:
  void count_accept() { accepts_.fetch_add(1, kRelaxed); }
  void count_close() { closes_.fetch_add(1, kRelaxed); }
  void count_reject() { rejects_.fetch_add(1, kRelaxed); }
  void count_bytes_read(uint64_t n) { bytes_read_.fetch_add(n, kRelaxed); }
  void count_bytes_sent(uint64_t n) { bytes_sent_.fetch_add(n, kRelaxed); }
  void count_request() { requests_.fetch_add(1, kRelaxed); }
  void count_reply() { replies_.fetch_add(1, kRelaxed); }
  void count_decode_error() { decode_errors_.fetch_add(1, kRelaxed); }
  void count_idle_shutdown() { idle_shutdowns_.fetch_add(1, kRelaxed); }
  void count_header_timeout() { header_timeouts_.fetch_add(1, kRelaxed); }
  void count_overload_suspension() { suspensions_.fetch_add(1, kRelaxed); }
  void count_shed() { sheds_.fetch_add(1, kRelaxed); }
  void count_per_ip_reject() { per_ip_rejects_.fetch_add(1, kRelaxed); }
  void count_send_writev() { send_writevs_.fetch_add(1, kRelaxed); }
  void count_send_copied(uint64_t n) {
    send_copied_.fetch_add(n, kRelaxed);
  }
  void count_send_sendfile(uint64_t n) {
    send_sendfile_.fetch_add(n, kRelaxed);
  }
  void count_send_chunked() { send_chunked_.fetch_add(1, kRelaxed); }

  // Records a stage latency into this thread's shard.  Negative durations
  // (missing stamp — the stage was skipped) are dropped.
  void record_stage(Stage stage, int64_t micros);

  // Merges every thread's shard into one histogram set (scrape path only).
  [[nodiscard]] std::array<Histogram, kStageCount> merged_stages() const;

  [[nodiscard]] ProfilerSnapshot snapshot(uint64_t events_processed = 0,
                                          double cache_hit_rate = 0.0,
                                          uint64_t cache_invalidations = 0)
      const;
  void reset();

 private:
  struct StageShard {
    std::array<Histogram, kStageCount> histograms;
  };

  // This thread's shard, created and registered on first use.
  StageShard& local_shard();

  static constexpr auto kRelaxed = std::memory_order_relaxed;
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> closes_{0};
  std::atomic<uint64_t> rejects_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> replies_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> idle_shutdowns_{0};
  std::atomic<uint64_t> header_timeouts_{0};
  std::atomic<uint64_t> suspensions_{0};
  std::atomic<uint64_t> sheds_{0};
  std::atomic<uint64_t> per_ip_rejects_{0};
  std::atomic<uint64_t> send_writevs_{0};
  std::atomic<uint64_t> send_copied_{0};
  std::atomic<uint64_t> send_sendfile_{0};
  std::atomic<uint64_t> send_chunked_{0};

  // Profilers are identified by a never-recycled id so the thread-local
  // shard cache can never alias a new profiler with a destroyed one that
  // happened to share an address.
  const uint64_t instance_id_ = next_instance_id();
  static uint64_t next_instance_id();

  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<StageShard>> shards_;
};

}  // namespace cops::nserver
