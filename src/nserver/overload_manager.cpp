#include "nserver/overload_manager.hpp"

#include <algorithm>

namespace cops::nserver {

namespace {

[[nodiscard]] double clamp01(double v) {
  return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
}

}  // namespace

const char* to_string(OverloadTier tier) {
  switch (tier) {
    case OverloadTier::kNone: return "none";
    case OverloadTier::kConserve: return "conserve";
    case OverloadTier::kPauseLowPriority: return "pause-low-priority";
    case OverloadTier::kShed: return "shed";
    case OverloadTier::kStopAccept: return "stop-accept";
  }
  return "?";
}

// ---- QueueDelayMonitor -------------------------------------------------------

QueueDelayMonitor::QueueDelayMonitor(std::string name, Duration target,
                                     Duration interval)
    : name_(std::move(name)),
      target_seconds_(to_seconds(target)),
      interval_(interval) {}

void QueueDelayMonitor::record_delay(Duration delay) {
  const double seconds = std::max(0.0, to_seconds(delay));
  std::lock_guard lock(mutex_);
  samples_.emplace_back(now(), seconds);
}

void QueueDelayMonitor::set_overdue_hint(std::function<double()> hint) {
  std::lock_guard lock(mutex_);
  overdue_hint_ = std::move(hint);
}

MonitorReading QueueDelayMonitor::sample(TimePoint now) {
  std::lock_guard lock(mutex_);
  if (overdue_hint_) {
    // A probe that should have run by now but hasn't is itself a delay
    // observation — without it, a saturated loop would look *idle* here
    // (it is too busy to deliver any samples).
    const double overdue = overdue_hint_();
    if (overdue > 0.0) samples_.emplace_back(now, overdue);
  }
  const TimePoint cutoff = now - interval_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
  }
  MonitorReading reading;
  if (samples_.empty()) return reading;  // idle: no standing queue
  double min_delay = samples_.front().second;
  for (const auto& [when, delay] : samples_) {
    min_delay = std::min(min_delay, delay);
  }
  reading.raw = min_delay;
  // delay == target → 0.5 (tier-1 threshold); delay == 2×target → 1.0.
  reading.pressure =
      target_seconds_ > 0.0 ? clamp01(min_delay / (2.0 * target_seconds_))
                            : (min_delay > 0.0 ? 1.0 : 0.0);
  return reading;
}

// ---- GaugeMonitor ------------------------------------------------------------

GaugeMonitor::GaugeMonitor(std::string name, std::function<double()> value,
                           double capacity)
    : name_(std::move(name)), value_(std::move(value)), capacity_(capacity) {}

MonitorReading GaugeMonitor::sample(TimePoint) {
  MonitorReading reading;
  reading.raw = value_();
  reading.pressure = capacity_ > 0.0 ? clamp01(reading.raw / capacity_) : 0.0;
  return reading;
}

// ---- RateMonitor -------------------------------------------------------------

RateMonitor::RateMonitor(std::string name, std::function<uint64_t()> numerator,
                         std::function<uint64_t()> denominator,
                         double full_scale)
    : name_(std::move(name)),
      numerator_(std::move(numerator)),
      denominator_(std::move(denominator)),
      full_scale_(full_scale) {}

MonitorReading RateMonitor::sample(TimePoint) {
  const uint64_t num = numerator_();
  const uint64_t den = denominator_();
  // Counters are monotone; guard against restarts anyway.
  const uint64_t dn = num >= last_numerator_ ? num - last_numerator_ : 0;
  const uint64_t dd = den >= last_denominator_ ? den - last_denominator_ : 0;
  last_numerator_ = num;
  last_denominator_ = den;
  MonitorReading reading;
  reading.raw = dd > 0 ? static_cast<double>(dn) / static_cast<double>(dd)
                       : 0.0;
  reading.pressure =
      full_scale_ > 0.0 ? clamp01(reading.raw / full_scale_) : 0.0;
  return reading;
}

// ---- OverloadManager ---------------------------------------------------------

OverloadManager::OverloadManager(OverloadManagerConfig config)
    : config_(config),
      thresholds_{config.conserve_threshold, config.pause_threshold,
                  config.shed_threshold, config.stop_accept_threshold},
      retry_after_s_(config.retry_after_min.count()) {}

void OverloadManager::add_monitor(std::unique_ptr<ResourceMonitor> monitor) {
  std::lock_guard lock(mutex_);
  monitors_.push_back({std::move(monitor), {}, 0.0});
}

QueueDelayMonitor* OverloadManager::add_queue_delay_monitor(std::string name) {
  auto monitor = std::make_unique<QueueDelayMonitor>(
      std::move(name), config_.target_delay, config_.interval);
  auto* raw = monitor.get();
  add_monitor(std::move(monitor));
  return raw;
}

void OverloadManager::set_actions(OverloadActions actions) {
  std::lock_guard lock(mutex_);
  actions_ = std::move(actions);
}

void OverloadManager::tick(TimePoint now) {
  // Callbacks collected under the lock, fired after release: an action
  // (e.g. acceptor suspend) may re-enter observable state.
  std::vector<std::function<void()>> fire;
  {
    std::lock_guard lock(mutex_);
    double pressure = 0.0;
    for (auto& slot : monitors_) {
      slot.last = slot.monitor->sample(now);
      slot.smoothed +=
          config_.ewma_alpha * (slot.last.pressure - slot.smoothed);
      pressure = std::max(pressure, slot.smoothed);
    }
    pressure_ = pressure;
    ++ticks_;

    // Tier latches: engage at threshold, release at threshold − hysteresis.
    // Thresholds are monotone, so a rising pressure engages tiers in
    // severity order and a falling one releases them in reverse.
    const std::function<void(bool)>* callbacks[4] = {
        &actions_.conserve, &actions_.pause_low_priority, &actions_.shed,
        &actions_.stop_accept};
    for (int i = 0; i < 4; ++i) {
      const bool was = engaged_[i];
      if (!was && pressure >= thresholds_[i]) {
        engaged_[i] = true;
      } else if (was && pressure <= thresholds_[i] - config_.hysteresis) {
        engaged_[i] = false;
      }
      if (engaged_[i] != was) {
        if (i == 3 && engaged_[i]) {
          accept_suspensions_.fetch_add(1, std::memory_order_relaxed);
        }
        if (*callbacks[i]) {
          auto cb = *callbacks[i];
          const bool on = engaged_[i];
          fire.push_back([cb, on] { cb(on); });
        }
      }
    }

    int tier = 0;
    for (int i = 0; i < 4; ++i) {
      if (engaged_[i]) tier = i + 1;
    }
    tier_.store(tier, std::memory_order_relaxed);

    update_retry_after_locked(now, pressure);
    last_tick_ = now;
    last_pressure_ = pressure;
    last_tick_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            now.time_since_epoch())
                            .count(),
                        std::memory_order_relaxed);
  }
  for (auto& fn : fire) fn();
}

bool OverloadManager::maybe_tick(TimePoint now) {
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             now.time_since_epoch())
                             .count();
  const int64_t spacing = std::max<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.interval)
              .count() /
          4,
      1'000'000);
  int64_t last = last_tick_ns_.load(std::memory_order_relaxed);
  if (now_ns - last < spacing) return false;
  // One caller wins the race; tick() re-stores the stamp under the lock.
  if (!last_tick_ns_.compare_exchange_strong(last, now_ns,
                                             std::memory_order_relaxed)) {
    return false;
  }
  tick(now);
  return true;
}

void OverloadManager::update_retry_after_locked(TimePoint now,
                                                double pressure) {
  const double release =
      config_.shed_threshold - config_.hysteresis;  // shed ends here
  const int64_t min_s = config_.retry_after_min.count();
  const int64_t max_s = config_.retry_after_max.count();
  int64_t hint = max_s;
  if (pressure <= release) {
    hint = min_s;
  } else if (last_tick_ != TimePoint{} && now > last_tick_) {
    const double dt = to_seconds(now - last_tick_);
    const double decay = (last_pressure_ - pressure) / dt;  // per second
    if (decay > 0.0) {
      hint = static_cast<int64_t>((pressure - release) / decay + 0.999);
    }
  }
  hint = std::clamp(hint, min_s, max_s);
  retry_after_s_.store(hint, std::memory_order_relaxed);
}

OverloadSnapshot OverloadManager::snapshot() const {
  std::lock_guard lock(mutex_);
  OverloadSnapshot snap;
  snap.monitors.reserve(monitors_.size());
  for (const auto& slot : monitors_) {
    snap.monitors.push_back({slot.monitor->name(), slot.last.raw,
                             slot.last.pressure, slot.smoothed});
  }
  snap.pressure = pressure_;
  snap.tier = static_cast<OverloadTier>(tier_.load(std::memory_order_relaxed));
  snap.conserving = engaged_[0];
  snap.low_priority_paused = engaged_[1];
  snap.shedding = engaged_[2];
  snap.accept_stopped = engaged_[3];
  snap.retry_after =
      std::chrono::seconds(retry_after_s_.load(std::memory_order_relaxed));
  snap.ticks = ticks_;
  return snap;
}

}  // namespace cops::nserver
