#include "proxy/proxy_session.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "http/response.hpp"
#include "net/transport.hpp"
#include "proxy/proxy_server.hpp"

namespace cops::proxy {

namespace {
constexpr int kMaxIovPerRound = 16;
// Interim (1xx) response heads are consumed and dropped at this hop; a
// backend streaming them forever is treated as malformed.
constexpr int kMaxInterimHeads = 4;
}  // namespace

ProxySession::ProxySession(uint64_t id, ProxyServer& server,
                           net::TcpSocket client)
    : id_(id),
      server_(server),
      client_(std::move(client)),
      client_read_gate_(server.config_.low_watermark,
                        server.config_.high_watermark),
      upstream_read_gate_(server.config_.low_watermark,
                          server.config_.high_watermark) {}

ProxySession::~ProxySession() = default;

Status ProxySession::start() {
  return server_.reactor_.register_handler(client_.fd(), this, net::kReadable);
}

void ProxySession::abort(const char* reason) {
  if (closed_) return;
  emit(reason);
  close_session();
}

void ProxySession::handle_event(int fd, uint32_t readiness) {
  // close_session() drops the server's reference mid-dispatch.
  auto self = shared_from_this();
  if (closed_) return;
  if (fd == client_.fd()) {
    if ((readiness & net::kErrored) != 0) {
      abort("proxy-client-error");
      return;
    }
    if ((readiness & net::kWritable) != 0 && !flush_client()) return;
    if ((readiness & net::kReadable) != 0) on_client_readable();
  } else if (upstream_registered_ && fd == upstream_.fd()) {
    if ((readiness & net::kErrored) != 0) {
      upstream_gone(/*reset=*/true);
    } else {
      if ((readiness & net::kWritable) != 0) on_upstream_writable();
      if (!closed_ && upstream_registered_ &&
          (readiness & net::kReadable) != 0) {
        on_upstream_readable();
      }
    }
  }
  if (!closed_) update_interest();
}

// ---- client side ----------------------------------------------------------

void ProxySession::on_client_readable() {
  auto n = client_.read(client_in_);
  if (!n.is_ok()) {
    const auto code = n.status().code();
    if (code == StatusCode::kWouldBlock) return;
    if (code == StatusCode::kClosed) {
      client_eof_ = true;
      if (resp_state_ == RespState::kNone &&
          (req_state_ == ReqState::kIdle || req_state_ == ReqState::kHead)) {
        // Between exchanges (a trailing partial head is the client's
        // problem): orderly close.
        close_session();
      } else if (req_state_ == ReqState::kBody) {
        // The request can never complete; the upstream got a partial
        // message, so neither side survives.
        abort("proxy-client-eof-mid-request");
      } else {
        // Half-close: the request is fully relayed, finish the response.
        client_keep_alive_ = false;
      }
      return;
    }
    abort("proxy-client-reset");
    return;
  }
  process_client();
}

void ProxySession::process_client() {
  while (!closed_) {
    if (req_state_ == ReqState::kIdle) {
      if (client_in_.empty()) break;
      req_state_ = ReqState::kHead;
    }
    if (req_state_ == ReqState::kHead) {
      http::StatusCode reject = http::StatusCode::kBadRequest;
      const auto parsed = http::parse_request_head(
          client_in_, req_head_, server_.config_.limits, &reject);
      if (parsed == http::HeadParseStatus::kNeedMore) break;
      if (parsed == http::HeadParseStatus::kMalformed) {
        send_error(reject);
        return;
      }
      if (!begin_request()) return;
      continue;
    }
    if (req_state_ == ReqState::kBody) {
      relay_request_body();
      break;
    }
    // kSent: pipelined bytes wait for the exchange to complete.
    break;
  }
  if (!closed_) flush_upstream();
}

bool ProxySession::begin_request() {
  server_.counters_.requests.fetch_add(1, std::memory_order_relaxed);
  client_keep_alive_ = req_head_.keep_alive;

  // Adaptive overload (overload_adaptive): at the shed tier new request
  // heads are answered 503 + Retry-After instead of being parked at the
  // pool cap — the queue the waiter-depth monitor watches must not absorb
  // the demand that trips it.
  if (server_.overload_ && server_.overload_->shedding()) {
    server_.counters_.shed.fetch_add(1, std::memory_order_relaxed);
    emit("proxy-shed-503");
    auto resp = http::make_error_response(http::StatusCode::kServiceUnavailable,
                                          /*keep_alive=*/false);
    resp.set_header(
        "Retry-After",
        std::to_string(server_.overload_->retry_after_hint().count()));
    client_out_.push_owned(resp.serialize());
    client_committed_ = true;
    client_keep_alive_ = false;
    closing_after_flush_ = true;
    if (flush_client()) update_interest();
    return false;
  }

  const int backend = server_.select_backend(req_head_.target);
  if (backend < 0) {
    send_error(http::StatusCode::kServiceUnavailable);
    return false;
  }
  backend_ = backend;
  server_.note_request_start(static_cast<size_t>(backend));
  in_flight_counted_ = true;

  // Forward the head: original casing, hop-by-hop stripped, Via appended.
  // Transfer-Encoding counts as hop-by-hop and is re-added by this relay
  // when the body is chunked, so the framing is always ours to assert.
  std::string head;
  head.reserve(256);
  head += req_head_.method;
  head += ' ';
  head += req_head_.target;
  head += " HTTP/1.1\r\n";
  for (const auto& field : req_head_.headers) {
    if (http::is_hop_by_hop(field.lname, req_head_)) continue;
    if (field.lname == "expect") continue;  // answered at this hop
    head += field.name;
    head += ": ";
    head += field.value;
    head += "\r\n";
  }
  if (req_head_.delim == http::BodyDelim::kChunked) {
    head += "Transfer-Encoding: chunked\r\n";
  }
  head += "Via: 1.1 ";
  head += server_.config_.via_pseudonym;
  head += "\r\n\r\n";

  // 100-continue is answered here: the upstream sees no Expect header, the
  // client gets its interim reply as soon as the head lands (only when no
  // body bytes arrived with it — an eager client needs no invitation).
  if (req_head_.expect_continue && client_in_.empty() &&
      req_head_.delim != http::BodyDelim::kNone) {
    client_out_.push_owned("HTTP/1.1 100 Continue\r\n\r\n");
  }

  replay_buffer_.clear();
  replay_armed_ =
      server_.config_.upstream_mode == nserver::UpstreamMode::kPooled &&
      server_.config_.retry_buffer_limit > 0;
  retry_used_ = false;
  response_bytes_seen_ = false;
  interim_heads_ = 0;
  upstream_poisoned_ = false;
  append_upstream(head);

  switch (req_head_.delim) {
    case http::BodyDelim::kContentLength:
      req_body_remaining_ = req_head_.content_length;
      req_state_ =
          req_body_remaining_ > 0 ? ReqState::kBody : ReqState::kSent;
      break;
    case http::BodyDelim::kChunked:
      req_chunks_.reset();
      req_state_ = ReqState::kBody;
      break;
    default:
      req_state_ = ReqState::kSent;
      break;
  }
  resp_state_ = RespState::kHead;

  waiting_for_upstream_ = true;
  server_.request_upstream(shared_from_this(), static_cast<size_t>(backend));
  return !closed_;
}

void ProxySession::relay_request_body() {
  if (req_state_ != ReqState::kBody || client_in_.empty()) return;
  if (req_head_.delim == http::BodyDelim::kContentLength) {
    const size_t take = static_cast<size_t>(std::min<uint64_t>(
        req_body_remaining_, client_in_.readable()));
    if (take > 0) {
      append_upstream(client_in_.view().substr(0, take));
      client_in_.consume(take);
      req_body_remaining_ -= take;
    }
    if (req_body_remaining_ == 0) request_sent();
    return;
  }
  // Chunked: validate framing, forward the raw bytes verbatim.
  size_t consumed = 0;
  const auto status = req_chunks_.feed(client_in_.view(), &consumed);
  if (consumed > 0) {
    append_upstream(client_in_.view().substr(0, consumed));
    client_in_.consume(consumed);
  }
  switch (status) {
    case http::ChunkedDecoder::Status::kNeedMore:
      return;
    case http::ChunkedDecoder::Status::kDone:
      request_sent();
      return;
    default:
      // The client broke its own framing mid-stream; the upstream holds a
      // partial message, so the reply closes both sides.
      send_error(http::StatusCode::kBadRequest);
      return;
  }
}

void ProxySession::request_sent() {
  req_state_ = ReqState::kSent;
  // The header timer arms once the queued bytes actually reach the wire
  // (flush_upstream checks the same condition after every drain).
}

void ProxySession::on_client_writable() { (void)flush_client(); }

// ---- upstream side --------------------------------------------------------

void ProxySession::upstream_ready(net::TcpSocket socket, bool reused) {
  if (closed_) {
    // The session died while the acquisition was in flight; hand the
    // connection straight back so the pool accounting stays balanced.
    if (backend_ >= 0) {
      server_.release_upstream(static_cast<size_t>(backend_),
                               std::move(socket), /*reusable=*/false);
    } else {
      socket.close();
    }
    return;
  }
  waiting_for_upstream_ = false;
  upstream_ = std::move(socket);
  upstream_reused_ = reused;
  auto status = server_.reactor_.register_handler(
      upstream_.fd(), this, net::kReadable | net::kWritable);
  if (!status.is_ok()) {
    if (backend_ >= 0) {
      server_.release_upstream(static_cast<size_t>(backend_),
                               std::move(upstream_), /*reusable=*/false);
    }
    send_error(http::StatusCode::kBadGateway);
    return;
  }
  upstream_registered_ = true;
  flush_upstream();
  if (!closed_) update_interest();
}

void ProxySession::upstream_failed() {
  if (closed_) return;
  waiting_for_upstream_ = false;
  send_error(http::StatusCode::kBadGateway);
}

void ProxySession::on_upstream_readable() {
  auto n = upstream_.read(upstream_in_);
  if (!n.is_ok()) {
    const auto code = n.status().code();
    if (code == StatusCode::kWouldBlock) return;
    upstream_gone(/*reset=*/code != StatusCode::kClosed);
    return;
  }
  if (!response_bytes_seen_ && n.value() > 0) {
    // First response byte: the exchange is no longer replayable.
    response_bytes_seen_ = true;
    replay_armed_ = false;
    replay_buffer_.clear();
  }
  process_upstream();
}

void ProxySession::process_upstream() {
  while (!closed_) {
    if (resp_state_ == RespState::kHead) {
      const auto parsed = http::parse_response_head(
          upstream_in_, resp_head_, server_.config_.limits,
          req_head_.method == "HEAD");
      if (parsed == http::HeadParseStatus::kNeedMore) break;
      if (parsed == http::HeadParseStatus::kMalformed) {
        malformed_upstream();
        return;
      }
      if (resp_head_.status >= 100 && resp_head_.status <= 199) {
        if (++interim_heads_ > kMaxInterimHeads) {
          malformed_upstream();
          return;
        }
        continue;
      }
      if (!begin_response()) return;
      continue;
    }
    if (resp_state_ == RespState::kBody) {
      relay_response_body();
      break;
    }
    break;
  }
  if (!closed_) (void)flush_client();
}

bool ProxySession::begin_response() {
  cancel_header_timer();
  upstream_keep_alive_ = resp_head_.keep_alive &&
                         resp_head_.delim != http::BodyDelim::kToClose;
  // A close-delimited upstream body leaves this hop no way to mark the end
  // towards the client either.
  if (resp_head_.delim == http::BodyDelim::kToClose) {
    client_keep_alive_ = false;
  }

  std::string head;
  head.reserve(256);
  head += resp_head_.status_line;
  head += "\r\n";
  for (const auto& field : resp_head_.headers) {
    if (http::is_hop_by_hop(field.lname, resp_head_)) continue;
    head += field.name;
    head += ": ";
    head += field.value;
    head += "\r\n";
  }
  if (resp_head_.delim == http::BodyDelim::kChunked) {
    head += "Transfer-Encoding: chunked\r\n";
  }
  head += "Via: 1.1 ";
  head += server_.config_.via_pseudonym;
  head += "\r\nConnection: ";
  head += client_keep_alive_ ? "keep-alive" : "close";
  head += "\r\n\r\n";
  client_out_.push_owned(std::move(head));
  client_committed_ = true;

  switch (resp_head_.delim) {
    case http::BodyDelim::kContentLength:
      resp_body_remaining_ = resp_head_.content_length;
      if (resp_body_remaining_ == 0) {
        finish_response();
        return !closed_;
      }
      resp_state_ = RespState::kBody;
      break;
    case http::BodyDelim::kChunked:
      resp_chunks_.reset();
      resp_state_ = RespState::kBody;
      break;
    case http::BodyDelim::kToClose:
      resp_state_ = RespState::kBody;
      break;
    case http::BodyDelim::kNone:
      finish_response();
      return !closed_;
  }
  return true;
}

void ProxySession::relay_response_body() {
  if (upstream_in_.empty()) return;
  const auto view = upstream_in_.view();
  switch (resp_head_.delim) {
    case http::BodyDelim::kContentLength: {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(resp_body_remaining_,
                                                 view.size()));
      client_out_.push_owned(std::string(view.substr(0, take)));
      upstream_in_.consume(take);
      resp_body_remaining_ -= take;
      if (resp_body_remaining_ == 0) finish_response();
      return;
    }
    case http::BodyDelim::kChunked: {
      size_t consumed = 0;
      const auto status = resp_chunks_.feed(view, &consumed);
      if (consumed > 0) {
        client_out_.push_owned(std::string(view.substr(0, consumed)));
        upstream_in_.consume(consumed);
      }
      if (status == http::ChunkedDecoder::Status::kDone) {
        finish_response();
      } else if (status != http::ChunkedDecoder::Status::kNeedMore) {
        malformed_upstream();
      }
      return;
    }
    case http::BodyDelim::kToClose:
      client_out_.push_owned(std::string(view));
      upstream_in_.consume(view.size());
      return;
    default:
      return;
  }
}

void ProxySession::finish_response() {
  resp_state_ = RespState::kDone;
  server_.counters_.responses.fetch_add(1, std::memory_order_relaxed);
  // An early response (the upstream replied before reading the whole
  // request) leaves both connections holding partial messages.
  if (req_state_ != ReqState::kSent) client_keep_alive_ = false;
  const bool reusable = upstream_keep_alive_ && !upstream_poisoned_ &&
                        req_state_ == ReqState::kSent && upstream_in_.empty();
  detach_upstream(reusable);
  if (!closed_ && client_out_.empty()) complete_exchange();
}

void ProxySession::on_upstream_writable() { flush_upstream(); }

void ProxySession::flush_upstream() {
  if (!upstream_registered_ || closed_) return;
  while (!upstream_out_.empty()) {
    struct iovec iov[kMaxIovPerRound];
    const int iovcnt = upstream_out_.fill_iovec(iov, kMaxIovPerRound);
    if (iovcnt == 0) break;  // unreachable: the relay queues no file slices
    auto sent = upstream_.writev(iov, iovcnt);
    if (!sent.is_ok()) {
      if (sent.status().code() == StatusCode::kWouldBlock) break;
      upstream_gone(/*reset=*/true);
      return;
    }
    upstream_out_.consume(sent.value());
  }
  if (req_state_ == ReqState::kSent && upstream_out_.empty()) {
    maybe_arm_header_timer();
  }
}

void ProxySession::upstream_gone(bool reset) {
  if (closed_) return;
  if (resp_state_ == RespState::kNone || resp_state_ == RespState::kDone) {
    // Nothing owed on this connection.
    detach_upstream(/*reusable=*/false);
    if (!closed_) update_interest();
    return;
  }
  if (resp_state_ == RespState::kBody &&
      resp_head_.delim == http::BodyDelim::kToClose && !reset) {
    // Orderly EOF *is* the end of a close-delimited body.
    upstream_keep_alive_ = false;
    finish_response();
    if (!closed_ && flush_client()) update_interest();
    return;
  }
  if (resp_state_ == RespState::kHead && !response_bytes_seen_) {
    // Died before a single response byte.  A *reused* pool connection may
    // have gone stale between exchanges — retried exactly once on a fresh
    // connection with the buffered request bytes replayed.
    if (upstream_reused_ && !retry_used_ && replay_armed_ &&
        try_stale_retry()) {
      return;
    }
    send_error(http::StatusCode::kBadGateway);
    return;
  }
  if (!client_committed_) {
    send_error(http::StatusCode::kBadGateway);
    return;
  }
  // Mid-body death with the head already relayed: never fabricate a clean
  // ending — the client sees incomplete framing and a close.
  abort("proxy-upstream-died-mid-body");
}

void ProxySession::malformed_upstream() {
  server_.counters_.poisoned.fetch_add(1, std::memory_order_relaxed);
  upstream_poisoned_ = true;
  emit("proxy-upstream-poisoned");
  if (client_committed_) {
    abort("proxy-malformed-upstream");
    return;
  }
  send_error(http::StatusCode::kBadGateway);
}

void ProxySession::header_timeout_fired() {
  if (closed_ || resp_state_ != RespState::kHead || response_bytes_seen_) {
    return;
  }
  upstream_poisoned_ = true;  // too slow to trust with another exchange
  send_error(http::StatusCode::kGatewayTimeout);
}

void ProxySession::maybe_arm_header_timer() {
  if (header_timer_armed_ || closed_) return;
  if (resp_state_ != RespState::kHead || response_bytes_seen_) return;
  if (!upstream_registered_) return;
  if (server_.config_.upstream_header_timeout <= Duration::zero()) return;
  auto self = shared_from_this();
  header_timer_ = server_.reactor_.run_after(
      server_.config_.upstream_header_timeout, [self] {
        self->header_timer_armed_ = false;
        self->header_timeout_fired();
      });
  header_timer_armed_ = true;
}

void ProxySession::cancel_header_timer() {
  if (!header_timer_armed_) return;
  server_.reactor_.cancel_timer(header_timer_);
  header_timer_armed_ = false;
}

bool ProxySession::try_stale_retry() {
  if (backend_ < 0 || replay_buffer_.empty()) return false;
  retry_used_ = true;
  emit("proxy-stale-retry");
  detach_upstream(/*reusable=*/false);
  // Replay everything relayed so far; the buffer stays armed so body bytes
  // still streaming in keep accumulating for the fresh connection.
  upstream_out_.push_owned(replay_buffer_);
  resp_state_ = RespState::kHead;
  interim_heads_ = 0;
  waiting_for_upstream_ = true;
  server_.request_upstream_fresh(shared_from_this(),
                                 static_cast<size_t>(backend_));
  return !closed_;
}

void ProxySession::detach_upstream(bool reusable) {
  cancel_header_timer();
  if (upstream_registered_) {
    (void)server_.reactor_.deregister(upstream_.fd());
    upstream_registered_ = false;
  }
  if (upstream_.valid()) {
    if (backend_ >= 0) {
      server_.release_upstream(static_cast<size_t>(backend_),
                               std::move(upstream_), reusable);
    } else {
      upstream_.close();
    }
  }
  upstream_in_.clear();
  upstream_out_.clear();
  upstream_reused_ = false;
}

// ---- exchange lifecycle ---------------------------------------------------

void ProxySession::complete_exchange() {
  if (in_flight_counted_ && backend_ >= 0) {
    server_.note_request_end(static_cast<size_t>(backend_));
    in_flight_counted_ = false;
  }
  if (!client_keep_alive_ || client_eof_) {
    close_session();
    return;
  }
  reset_exchange_state();
  if (!client_in_.empty()) process_client();
}

void ProxySession::reset_exchange_state() {
  req_head_.reset();
  resp_head_.reset();
  req_state_ = ReqState::kIdle;
  resp_state_ = RespState::kNone;
  req_body_remaining_ = 0;
  resp_body_remaining_ = 0;
  backend_ = -1;
  replay_buffer_.clear();
  replay_armed_ = false;
  retry_used_ = false;
  response_bytes_seen_ = false;
  interim_heads_ = 0;
  client_committed_ = false;
  upstream_poisoned_ = false;
  upstream_reused_ = false;
  waiting_for_upstream_ = false;
}

void ProxySession::send_error(http::StatusCode status) {
  if (closed_) return;
  if (client_committed_) {
    // The head is already on the wire; a late error page would smuggle.
    abort("proxy-error-after-commit");
    return;
  }
  waiting_for_upstream_ = false;
  detach_upstream(/*reusable=*/false);
  switch (status) {
    case http::StatusCode::kBadGateway:
      server_.counters_.bad_gateway.fetch_add(1, std::memory_order_relaxed);
      emit("proxy-502");
      break;
    case http::StatusCode::kGatewayTimeout:
      server_.counters_.gateway_timeout.fetch_add(1,
                                                  std::memory_order_relaxed);
      emit("proxy-504");
      break;
    default:
      emit("proxy-reject");
      break;
  }
  if (in_flight_counted_ && backend_ >= 0) {
    server_.note_request_end(static_cast<size_t>(backend_));
    in_flight_counted_ = false;
  }
  client_out_.push_owned(http::make_error_response(status, false).serialize());
  client_committed_ = true;
  client_keep_alive_ = false;
  closing_after_flush_ = true;
  if (flush_client()) update_interest();
}

void ProxySession::close_session() {
  if (closed_) return;
  closed_ = true;
  cancel_header_timer();
  detach_upstream(/*reusable=*/false);
  if (client_.valid()) {
    (void)server_.reactor_.deregister(client_.fd());
    client_.close();
  }
  if (in_flight_counted_ && backend_ >= 0) {
    server_.note_request_end(static_cast<size_t>(backend_));
    in_flight_counted_ = false;
  }
  server_.session_done(id_);
}

// ---- plumbing -------------------------------------------------------------

void ProxySession::append_upstream(std::string_view bytes) {
  if (bytes.empty()) return;
  if (replay_armed_) {
    if (replay_buffer_.size() + bytes.size() >
        server_.config_.retry_buffer_limit) {
      // Past the replay cap the retry disarms; a stale-connection failure
      // now surfaces as 502 rather than replaying a truncated request.
      replay_armed_ = false;
      replay_buffer_.clear();
    } else {
      replay_buffer_.append(bytes);
    }
  }
  upstream_out_.push_owned(std::string(bytes));
}

void ProxySession::update_interest() {
  if (closed_) return;
  if (client_read_gate_.update(upstream_out_.readable()) &&
      client_read_gate_.paused()) {
    server_.counters_.backpressure.fetch_add(1, std::memory_order_relaxed);
    emit("proxy-backpressure dir=request");
  }
  if (upstream_read_gate_.update(client_out_.readable()) &&
      upstream_read_gate_.paused()) {
    server_.counters_.backpressure.fetch_add(1, std::memory_order_relaxed);
    emit("proxy-backpressure dir=response");
  }
  uint32_t client_interest = 0;
  const bool consuming_client = req_state_ == ReqState::kIdle ||
                                req_state_ == ReqState::kHead ||
                                req_state_ == ReqState::kBody;
  if (consuming_client && !client_eof_ && !closing_after_flush_ &&
      !client_read_gate_.paused()) {
    client_interest |= net::kReadable;
  }
  if (!client_out_.empty()) client_interest |= net::kWritable;
  (void)server_.reactor_.update_interest(client_.fd(), client_interest);
  if (upstream_registered_) {
    uint32_t upstream_interest = 0;
    const bool consuming_upstream = resp_state_ == RespState::kHead ||
                                    resp_state_ == RespState::kBody;
    if (consuming_upstream && !upstream_read_gate_.paused()) {
      upstream_interest |= net::kReadable;
    }
    if (!upstream_out_.empty()) upstream_interest |= net::kWritable;
    (void)server_.reactor_.update_interest(upstream_.fd(), upstream_interest);
  }
}

bool ProxySession::flush_client() {
  if (closed_) return false;
  while (!client_out_.empty()) {
    struct iovec iov[kMaxIovPerRound];
    const int iovcnt = client_out_.fill_iovec(iov, kMaxIovPerRound);
    if (iovcnt == 0) break;  // unreachable: the relay queues no file slices
    auto sent = client_.writev(iov, iovcnt);
    if (!sent.is_ok()) {
      if (sent.status().code() == StatusCode::kWouldBlock) break;
      close_session();
      return false;
    }
    client_out_.consume(sent.value());
  }
  if (client_out_.empty()) {
    if (closing_after_flush_) {
      close_session();
      return false;
    }
    if (resp_state_ == RespState::kDone) complete_exchange();
  }
  return !closed_;
}

void ProxySession::emit(const char* what) {
  server_.emit(std::string(what) + " session=" + std::to_string(id_));
}

}  // namespace cops::proxy
