// Configuration for the streaming L7 reverse-proxy data plane (src/proxy).
//
// The proxy is the promotion of examples/http_proxy from a blocking,
// buffer-everything, connection-per-request demo into a production-shaped
// tier on the cluster substrate: one reactor, an Acceptor for the client
// side, a Connector + per-backend keep-alive pools for the upstream side,
// and streamed bodies with watermark backpressure in between.  Most knobs
// mirror an existing subsystem's vocabulary on purpose: the balance policy
// comes from src/cluster, the upstream mode from the generative option
// table (nserver::UpstreamMode, option `proxy_upstream`), and header limits
// from the HTTP parse layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "cluster/load_balancer.hpp"
#include "http/request_parser.hpp"
#include "nserver/options.hpp"
#include "nserver/overload_manager.hpp"

namespace cops::proxy {

struct ProxyConfig {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = kernel-assigned
  int listen_backlog = 512;

  // Generative option `proxy_upstream`: per_request opens a fresh upstream
  // connection per proxied request; pooled keeps completed connections in
  // per-backend keep-alive pools (caps, LIFO idle reuse, one stale retry).
  nserver::UpstreamMode upstream_mode = nserver::UpstreamMode::kPooled;
  // Pooled only: per-backend connection cap (in-flight + idle) and idle
  // list bound.
  size_t pool_max_per_backend = 8;
  size_t pool_max_idle_per_backend = 8;

  // Backend selection.  Ring-hash affinity keys on the request target, so
  // a path consistently lands on the same backend (cache locality).
  cluster::BalancePolicy policy = cluster::BalancePolicy::kRoundRobin;
  uint64_t seed = 0x5eedu;  // P2C candidate PRNG

  // Upstream deadlines: per-attempt connect (0 = none) and time allowed
  // between the request being fully relayed and the response head arriving
  // (504 on expiry).
  Duration connect_timeout = std::chrono::seconds(1);
  Duration upstream_header_timeout = std::chrono::seconds(5);

  // Backpressure watermarks on each direction's send queue: when the
  // consuming side's queue exceeds `high_watermark` the proxy stops reading
  // the producing side, resuming below `low_watermark` — so neither a slow
  // client nor a slow backend can make the proxy buffer a body.
  size_t high_watermark = 256 * 1024;
  size_t low_watermark = 64 * 1024;

  // Stale-connection retry (pooled): request bytes are retained until the
  // first response byte, up to this cap.  A *reused* connection that dies
  // with zero response bytes is retried exactly once on a fresh connection;
  // past the cap the retry disarms and the failure surfaces as 502.
  size_t retry_buffer_limit = 64 * 1024;

  // Header-block bounds, both directions (body limits do not apply to the
  // streamed pass-through; see http::ChunkPassthrough).
  http::ParseLimits limits;

  // Received-by token in the Via headers this proxy adds ("1.1 <pseudonym>").
  std::string via_pseudonym = "cops-proxy";

  // Adaptive overload manager (the same control loop as overload=adaptive
  // in the core server) fed by *upstream* pressure: pool waiter depth and
  // the 502/504 fraction.  Under pressure the proxy answers new request
  // heads 503 + Retry-After instead of queueing them at the pool cap, and
  // at the top tier suspends accept.
  bool overload_adaptive = false;
  nserver::OverloadManagerConfig overload;
  Duration overload_tick_interval = std::chrono::milliseconds(100);

  // Admin/stats endpoint (nserver machinery) on the proxy's reactor.
  bool admin_enabled = false;
  std::string admin_host = "127.0.0.1";
  uint16_t admin_port = 0;

  // Observability hook ("proxy-pool-reuse backend=0", "proxy-502", ...).
  // Runs on the reactor thread; must not block.  The deterministic chaos
  // tests feed these lines into the simnet trace.
  std::function<void(const std::string&)> event_listener;
};

}  // namespace cops::proxy
