// ProxySession — one client connection's streaming relay state machine.
//
// The session is an EventHandler over (up to) two fds — the client socket
// and the current upstream socket — and relays one HTTP/1.x exchange at a
// time, keep-alive on both sides:
//
//   client ──request head──▶ [strip hop-by-hop, add Via] ──▶ upstream
//          ──body bytes────▶ [CL countdown / ChunkPassthrough] ─▶
//          ◀──response head─ [validate untrusted head, 502 on junk]
//          ◀──body bytes──── [raw pass-through, framing validated]
//
// No full-body buffering anywhere: body bytes move read-window by
// read-window through the two SendQueues, and a Watermark on each queue
// stops reading the producing side when the consuming side falls behind
// (resumed below the low mark).  Chunked bodies are forwarded *verbatim* —
// the ChunkPassthrough validates framing and finds the message boundary,
// but the wire bytes are the origin's, which is what makes the proxied
// stream byte-identical to a direct fetch (tests/differential_test.cpp).
//
// Error model (tests/model_proxy_test.cpp):
//   upstream connect failure        → 502, close
//   upstream header timeout         → 504, close
//   malformed upstream response     → 502, upstream poisoned (never pooled)
//   upstream death before any
//     response byte, reused socket  → one retry on a fresh connection
//     (request bytes replayed from a bounded buffer), else 502
//   upstream death mid-body         → abort: the client sees a framing-
//     incomplete stream + close, never a well-formed truncated reply.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/byte_buffer.hpp"
#include "common/send_queue.hpp"
#include "http/response_parser.hpp"
#include "net/event_handler.hpp"
#include "net/socket.hpp"

namespace cops::proxy {

class ProxyServer;

class ProxySession : public net::EventHandler,
                     public std::enable_shared_from_this<ProxySession> {
 public:
  ProxySession(uint64_t id, ProxyServer& server, net::TcpSocket client);
  ~ProxySession() override;

  Status start();
  // Hard teardown (server stop): close both sides, no reply owed.
  void abort(const char* reason);

  // ProxyServer callbacks (reactor thread; may run synchronously from
  // request_upstream):
  void upstream_ready(net::TcpSocket socket, bool reused);
  void upstream_failed();

  void handle_event(int fd, uint32_t readiness) override;

  [[nodiscard]] uint64_t id() const { return id_; }

 private:
  enum class ReqState {
    kIdle,  // between exchanges (keep-alive) / before the first head
    kHead,  // head bytes accumulating
    kBody,  // streaming body towards upstream
    kSent,  // request fully queued upstream
  };
  enum class RespState {
    kNone,  // no upstream yet / between exchanges
    kHead,  // awaiting or accumulating the response head
    kBody,  // streaming body towards the client
    kDone,  // response fully queued to the client
  };

  // --- client side -------------------------------------------------------
  void on_client_readable();
  void process_client();
  bool begin_request();             // request head parsed
  void relay_request_body();
  void request_sent();
  void on_client_writable();

  // --- upstream side -----------------------------------------------------
  void on_upstream_readable();
  void process_upstream();
  bool begin_response();            // final response head parsed
  void relay_response_body();
  void finish_response();
  void on_upstream_writable();
  void flush_upstream();
  void upstream_gone(bool reset);   // EOF or RST from upstream
  void malformed_upstream();
  void header_timeout_fired();
  void maybe_arm_header_timer();
  void cancel_header_timer();
  bool try_stale_retry();
  void detach_upstream(bool reusable);  // release/close + deregister

  // --- exchange lifecycle ------------------------------------------------
  void complete_exchange();
  void reset_exchange_state();
  void send_error(http::StatusCode status);
  void close_session();

  // --- plumbing ----------------------------------------------------------
  void append_upstream(std::string_view bytes);  // + replay buffer capture
  void update_interest();
  bool flush_client();  // false: session closed
  void emit(const char* what);

  uint64_t id_;
  ProxyServer& server_;
  net::TcpSocket client_;
  net::TcpSocket upstream_;

  ByteBuffer client_in_;
  ByteBuffer upstream_in_;
  SendQueue client_out_;    // towards the client
  SendQueue upstream_out_;  // towards the upstream

  // Watermarks: reading the client pauses on upstream_out_'s depth, reading
  // the upstream pauses on client_out_'s depth.
  Watermark client_read_gate_;
  Watermark upstream_read_gate_;

  http::MessageHead req_head_;
  http::MessageHead resp_head_;
  http::ChunkPassthrough req_chunks_;
  http::ChunkPassthrough resp_chunks_;

  ReqState req_state_ = ReqState::kIdle;
  RespState resp_state_ = RespState::kNone;
  uint64_t req_body_remaining_ = 0;   // CL mode
  uint64_t resp_body_remaining_ = 0;  // CL mode

  int backend_ = -1;
  bool in_flight_counted_ = false;
  bool upstream_registered_ = false;
  bool upstream_reused_ = false;
  bool upstream_poisoned_ = false;
  bool waiting_for_upstream_ = false;  // acquisition in flight / parked

  // Stale retry: exact request bytes sent so far, retained until the first
  // response byte (bounded by retry_buffer_limit).
  std::string replay_buffer_;
  bool replay_armed_ = false;
  bool retry_used_ = false;
  bool response_bytes_seen_ = false;
  int interim_heads_ = 0;  // 1xx responses skipped (bounded)

  bool client_committed_ = false;  // response head already sent clientward
  bool client_keep_alive_ = false;
  bool upstream_keep_alive_ = false;
  bool client_eof_ = false;
  bool closing_after_flush_ = false;
  bool closed_ = false;

  uint64_t header_timer_ = 0;
  bool header_timer_armed_ = false;
};

}  // namespace cops::proxy
