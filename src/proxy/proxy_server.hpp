// ProxyServer — the streaming L7 reverse-proxy data plane.
//
// One reactor hosts everything: the client-side Acceptor, every
// ProxySession (a per-client-connection state machine relaying streamed
// HTTP/1.x both directions), the upstream Connector, and the admin
// endpoint.  The server owns what spans sessions:
//
//   * backend set + pluggable selection (round-robin / least-loaded / P2C /
//     ring-hash over the request target, via cluster/lb_policy);
//   * the UpstreamPool (generative option proxy_upstream=pooled) plus the
//     per-backend waiter queues that park sessions at the connection cap;
//   * drain lifecycle: drain_backend() stops selection and empties the
//     pool's idle side without killing in-flight streams (PR-3 shape);
//   * counters (`cops_proxy_*`) and per-backend in-flight gauges, served
//     over the nserver admin machinery and mirrored into relaxed atomics
//     for test inspection.
//
// Determinism: with one reactor and the seeded P2C PRNG, a simnet run of
// the proxy replays bit-identically per seed (tests/model_proxy_test.cpp).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/acceptor.hpp"
#include "net/connector.hpp"
#include "net/reactor.hpp"
#include "nserver/overload_manager.hpp"
#include "proxy/proxy_config.hpp"
#include "proxy/upstream_pool.hpp"

namespace cops::nserver {
class AdminServer;
}  // namespace cops::nserver

namespace cops::proxy {

class ProxySession;

// Cross-thread-readable snapshot counters (relaxed atomics).
struct ProxyCounters {
  std::atomic<uint64_t> requests{0};         // request heads accepted
  std::atomic<uint64_t> responses{0};        // upstream responses relayed
  std::atomic<uint64_t> bad_gateway{0};      // 502s issued
  std::atomic<uint64_t> gateway_timeout{0};  // 504s issued
  std::atomic<uint64_t> poisoned{0};         // upstream connections poisoned
  std::atomic<uint64_t> backpressure{0};     // watermark pause transitions
  std::atomic<uint64_t> shed{0};             // 503s from the overload manager
};

class ProxyServer {
 public:
  explicit ProxyServer(ProxyConfig config);
  ~ProxyServer();

  // Must be called before start().
  void add_backend(const net::InetAddress& addr);

  Status start();
  void stop();

  // Lifecycle: stop (or resume) selecting backend `index` and drain its
  // pool's idle connections; in-flight streams finish normally.
  // Thread-safe; applied on the reactor.
  void drain_backend(size_t index, bool draining = true);

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] uint16_t admin_port() const { return admin_port_; }

  [[nodiscard]] const ProxyCounters& counters() const { return counters_; }
  [[nodiscard]] uint64_t pool_reuse_total() const {
    return pool_ ? pool_->reuse_total() : 0;
  }
  [[nodiscard]] uint64_t pool_miss_total() const {
    return pool_ ? pool_->miss_total() : 0;
  }
  [[nodiscard]] uint64_t pool_stale_retry_total() const {
    return pool_ ? pool_->stale_retry_total() : 0;
  }
  [[nodiscard]] size_t backend_in_flight(size_t index) const {
    return in_flight_.at(index).load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t backend_count() const { return backends_.size(); }

  // Adaptive overload manager over upstream pressure (overload_adaptive);
  // null when disabled.
  [[nodiscard]] nserver::OverloadManager* overload_manager() {
    return overload_.get();
  }

 private:
  friend class ProxySession;

  struct Backend {
    net::InetAddress addr;
    bool draining = false;
  };

  // All on the reactor thread:
  void on_accept(net::TcpSocket client);
  // Backend for one request under the configured policy; -1 when every
  // backend is draining or the set is empty.
  [[nodiscard]] int select_backend(std::string_view affinity_key);
  // Upstream acquisition for `session` (pool or direct connect); calls the
  // session's upstream_ready/upstream_failed, possibly synchronously.
  void request_upstream(const std::shared_ptr<ProxySession>& session,
                        size_t backend);
  // The stale-retry path: always a brand-new connection.
  void request_upstream_fresh(const std::shared_ptr<ProxySession>& session,
                              size_t backend);
  void start_connect(const std::shared_ptr<ProxySession>& session,
                     size_t backend);
  // Connection ownership returns; wakes the first waiter at the cap.
  void release_upstream(size_t backend, net::TcpSocket socket, bool reusable);
  void abandon_upstream(size_t backend);
  void wake_waiter(size_t backend);

  // Adaptive overload: monitor/action wiring and the periodic reactor-side
  // control-loop tick (reschedules itself).
  void build_overload_manager();
  void overload_tick();

  void note_request_start(size_t backend);
  void note_request_end(size_t backend);
  void session_done(uint64_t id);
  void emit(const std::string& event);

  [[nodiscard]] std::string admin_respond(const std::string& method,
                                          const std::string& path) const;
  [[nodiscard]] std::string render_stats_prometheus() const;
  [[nodiscard]] std::string render_stats_json() const;

  ProxyConfig config_;
  std::vector<Backend> backends_;
  net::Reactor reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unique_ptr<net::Connector> connector_;
  std::unique_ptr<nserver::AdminServer> admin_;
  std::unique_ptr<UpstreamPool> pool_;
  std::unique_ptr<nserver::OverloadManager> overload_;
  cluster::HashRing ring_;
  std::mt19937_64 rng_;  // reactor thread only (P2C)
  std::unordered_map<uint64_t, std::shared_ptr<ProxySession>> sessions_;
  // Sessions parked at a backend's connection cap, FIFO per backend.
  std::vector<std::deque<uint64_t>> waiters_;
  // Per-backend in-flight request gauges (sized at start()).
  std::vector<std::atomic<size_t>> in_flight_;
  ProxyCounters counters_;
  uint64_t next_session_id_ = 1;
  uint64_t round_robin_next_ = 0;  // free-running; modulo-guarded at pick
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> launched_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace cops::proxy
