#include "proxy/upstream_pool.hpp"

namespace cops::proxy {

UpstreamPool::UpstreamPool(size_t backend_count, Config config)
    : config_(config), slots_(backend_count) {}

UpstreamPool::Acquire UpstreamPool::acquire(size_t backend,
                                            net::TcpSocket* out) {
  Slot& slot = slots_.at(backend);
  if (!slot.idle.empty()) {
    *out = std::move(slot.idle.back());
    slot.idle.pop_back();
    slot.in_use += 1;
    reuse_.fetch_add(1, std::memory_order_relaxed);
    return Acquire::kReused;
  }
  if (slot.in_use >= config_.max_per_backend) return Acquire::kAtCapacity;
  slot.in_use += 1;
  miss_.fetch_add(1, std::memory_order_relaxed);
  return Acquire::kConnect;
}

UpstreamPool::Acquire UpstreamPool::acquire_fresh(size_t backend) {
  Slot& slot = slots_.at(backend);
  // Total cap counts the idle sockets too: a fresh admission at the cap
  // evicts the oldest idle connection rather than failing the retry.
  if (slot.in_use + slot.idle.size() >= config_.max_per_backend &&
      !slot.idle.empty()) {
    slot.idle.front().close();
    slot.idle.pop_front();
  }
  if (slot.in_use >= config_.max_per_backend) return Acquire::kAtCapacity;
  slot.in_use += 1;
  stale_retry_.fetch_add(1, std::memory_order_relaxed);
  return Acquire::kConnect;
}

void UpstreamPool::release(size_t backend, net::TcpSocket socket,
                           bool reusable) {
  Slot& slot = slots_.at(backend);
  if (slot.in_use > 0) slot.in_use -= 1;
  if (reusable && socket.valid() && !slot.draining &&
      slot.idle.size() < config_.max_idle_per_backend &&
      slot.in_use + slot.idle.size() < config_.max_per_backend) {
    slot.idle.push_back(std::move(socket));
    return;
  }
  socket.close();
}

void UpstreamPool::abandon(size_t backend) {
  Slot& slot = slots_.at(backend);
  if (slot.in_use > 0) slot.in_use -= 1;
}

void UpstreamPool::drain(size_t backend, bool draining) {
  Slot& slot = slots_.at(backend);
  slot.draining = draining;
  if (draining) {
    for (auto& socket : slot.idle) socket.close();
    slot.idle.clear();
  }
}

bool UpstreamPool::draining(size_t backend) const {
  return slots_.at(backend).draining;
}

size_t UpstreamPool::in_use(size_t backend) const {
  return slots_.at(backend).in_use;
}

size_t UpstreamPool::idle(size_t backend) const {
  return slots_.at(backend).idle.size();
}

void UpstreamPool::close_all() {
  for (auto& slot : slots_) {
    for (auto& socket : slot.idle) socket.close();
    slot.idle.clear();
  }
}

}  // namespace cops::proxy
