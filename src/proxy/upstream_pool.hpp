// Per-backend keep-alive pools for the proxy's upstream connections.
//
// The pool is deliberately passive — no reactor, no timers, no I/O — so its
// lifecycle invariants (cap enforcement, LIFO idle reuse, drain semantics)
// are unit-testable in isolation (tests/proxy_pool_test.cpp), and the
// ProxyServer composes it with the Connector for the active half:
//
//   acquire()        idle socket available → kReused (pop the most recently
//                    parked one: LIFO keeps the hottest keep-alive socket in
//                    rotation and lets the coldest age out);
//                    under the cap → kConnect (the caller owes a connect);
//                    at the cap → kAtCapacity (the caller queues).
//   acquire_fresh()  the stale-retry path: a reused socket that died before
//                    any response byte is retried exactly once on a brand
//                    new connection — idle reuse is bypassed so the retry
//                    cannot land on another stale socket from the same era.
//   release()        returns a connection; it is re-parked only when the
//                    exchange left it reusable, the backend is not
//                    draining, and both the idle and total caps allow.
//   drain()          empties the idle list immediately and stops re-parking;
//                    in-flight connections are untouched (their streams
//                    finish normally and release() then closes them).
//
// Counters are relaxed atomics so tests and the admin endpoint can read
// them from other threads without a reactor hop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "net/socket.hpp"

namespace cops::proxy {

class UpstreamPool {
 public:
  struct Config {
    size_t max_per_backend = 8;       // in-flight + idle connections
    size_t max_idle_per_backend = 8;  // parked connections
  };

  enum class Acquire {
    kReused,      // *out holds a parked keep-alive socket
    kConnect,     // admitted under the cap; the caller owes a connect
    kAtCapacity,  // cap reached; the caller must wait for a release
  };

  UpstreamPool(size_t backend_count, Config config);

  // All accounting methods are reactor-thread-only (tests drive them from
  // one thread); the counters alone are cross-thread readable.
  Acquire acquire(size_t backend, net::TcpSocket* out);
  Acquire acquire_fresh(size_t backend);

  // Returns connection ownership for `backend`.  `reusable` means the
  // exchange ended cleanly on a keep-alive response with no trailing bytes;
  // anything else (poisoned, close-delimited, errored) closes the socket.
  void release(size_t backend, net::TcpSocket socket, bool reusable);
  // A connect admitted via acquire()/acquire_fresh() that never produced a
  // socket (connect failure): frees the cap slot.
  void abandon(size_t backend);

  // Drain lifecycle (PR-3 shape): close every idle connection now and stop
  // re-parking; releases during a drain close instead.  In-flight streams
  // are not touched.
  void drain(size_t backend, bool draining = true);
  [[nodiscard]] bool draining(size_t backend) const;

  [[nodiscard]] size_t in_use(size_t backend) const;
  [[nodiscard]] size_t idle(size_t backend) const;
  [[nodiscard]] size_t backend_count() const { return slots_.size(); }

  [[nodiscard]] uint64_t reuse_total() const {
    return reuse_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t miss_total() const {
    return miss_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t stale_retry_total() const {
    return stale_retry_.load(std::memory_order_relaxed);
  }

  // Closes every idle connection (server stop).
  void close_all();

 private:
  struct Slot {
    std::deque<net::TcpSocket> idle;  // back = most recently parked
    size_t in_use = 0;
    bool draining = false;
  };

  Config config_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> reuse_{0};
  std::atomic<uint64_t> miss_{0};
  std::atomic<uint64_t> stale_retry_{0};
};

}  // namespace cops::proxy
