#include "proxy/proxy_server.hpp"

#include <cstdio>
#include <future>
#include <utility>

#include "cluster/lb_policy.hpp"
#include "common/clock.hpp"
#include "nserver/admin_server.hpp"
#include "proxy/proxy_session.hpp"

namespace cops::proxy {

ProxyServer::ProxyServer(ProxyConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::add_backend(const net::InetAddress& addr) {
  backends_.push_back(Backend{addr, false});
}

Status ProxyServer::start() {
  if (started_.exchange(true)) {
    return Status::invalid_argument("already started");
  }
  if (backends_.empty()) {
    return Status::invalid_argument("proxy: no backends configured");
  }
  if (config_.low_watermark >= config_.high_watermark) {
    return Status::invalid_argument(
        "proxy: low_watermark must be below high_watermark");
  }
  in_flight_ = std::vector<std::atomic<size_t>>(backends_.size());
  waiters_.assign(backends_.size(), {});
  if (config_.upstream_mode == nserver::UpstreamMode::kPooled) {
    if (config_.pool_max_per_backend == 0) {
      return Status::invalid_argument(
          "proxy: pooled upstream_mode needs a positive pool cap");
    }
    UpstreamPool::Config pool_config;
    pool_config.max_per_backend = config_.pool_max_per_backend;
    pool_config.max_idle_per_backend = config_.pool_max_idle_per_backend;
    pool_ = std::make_unique<UpstreamPool>(backends_.size(), pool_config);
  }
  if (config_.policy == cluster::BalancePolicy::kRingHash) {
    ring_.build(backends_.size());
  }
  connector_ = std::make_unique<net::Connector>(reactor_);
  acceptor_ = std::make_unique<net::Acceptor>(
      reactor_, [this](net::TcpSocket client) { on_accept(std::move(client)); });
  auto addr = net::InetAddress::parse(config_.listen_host, config_.listen_port);
  if (!addr.is_ok()) return addr.status();
  auto status = acceptor_->open(addr.value(), config_.listen_backlog);
  if (!status.is_ok()) return status;
  auto bound = acceptor_->local_address();
  if (!bound.is_ok()) return bound.status();
  port_ = bound.value().port();
  if (config_.admin_enabled) {
    admin_ = std::make_unique<nserver::AdminServer>(
        reactor_, [this](const std::string& method, const std::string& path) {
          return admin_respond(method, path);
        });
    auto admin_addr =
        net::InetAddress::parse(config_.admin_host, config_.admin_port);
    if (!admin_addr.is_ok()) return admin_addr.status();
    auto admin_status = admin_->open(admin_addr.value());
    if (!admin_status.is_ok()) return admin_status;
    admin_port_ = admin_->port();
  }
  if (config_.overload_adaptive) {
    build_overload_manager();
    reactor_.run_after(config_.overload_tick_interval,
                       [this] { overload_tick(); });
  }
  reactor_.start_thread("proxy");
  launched_.store(true);
  return Status::ok();
}

// ---- adaptive overload ----------------------------------------------------

void ProxyServer::build_overload_manager() {
  overload_ = std::make_unique<nserver::OverloadManager>(config_.overload);
  // Pool waiter depth: sessions parked at per-backend connection caps are
  // exactly the demand the upstreams cannot absorb.  The lambda runs inside
  // tick(), which only ever executes on the reactor thread — the same
  // thread that mutates waiters_ — so no lock is needed.
  if (pool_) {
    const double capacity =
        static_cast<double>(backends_.size()) *
        static_cast<double>(config_.pool_max_per_backend);
    overload_->add_monitor(std::make_unique<nserver::GaugeMonitor>(
        "pool_waiters",
        [this] {
          size_t total = 0;
          for (const auto& queue : waiters_) total += queue.size();
          return static_cast<double>(total);
        },
        capacity));
  }
  // Upstream failure fraction over the tick window: 502s + 504s per request
  // head.  A quarter of traffic failing upstream reads as full pressure.
  overload_->add_monitor(std::make_unique<nserver::RateMonitor>(
      "upstream_5xx",
      [this] {
        return counters_.bad_gateway.load(std::memory_order_relaxed) +
               counters_.gateway_timeout.load(std::memory_order_relaxed);
      },
      [this] { return counters_.requests.load(std::memory_order_relaxed); },
      /*full_scale=*/0.25));
  nserver::OverloadActions actions;
  // Shed is read directly by sessions via overload_->shedding(); the action
  // only narrates the transition.
  actions.shed = [this](bool engaged) {
    emit(engaged ? "proxy-shed-on" : "proxy-shed-off");
  };
  actions.stop_accept = [this](bool engaged) {
    if (!acceptor_) return;
    if (engaged) {
      acceptor_->suspend();
    } else {
      acceptor_->resume();
    }
    emit(engaged ? "proxy-accept-suspend" : "proxy-accept-resume");
  };
  overload_->set_actions(std::move(actions));
}

void ProxyServer::overload_tick() {
  if (stopping_.load() || !overload_) return;
  overload_->tick(now());
  reactor_.run_after(config_.overload_tick_interval,
                     [this] { overload_tick(); });
}

void ProxyServer::stop() {
  // A failed start() never launched the reactor thread; posting to it and
  // waiting would deadlock.
  if (!launched_.load() || stopping_.exchange(true)) return;
  std::promise<void> done;
  auto fut = done.get_future();
  reactor_.post([this, &done] {
    if (acceptor_) acceptor_->close();
    if (admin_) admin_->close();
    // Abort active sessions (copy: abort mutates the map via session_done).
    std::vector<std::shared_ptr<ProxySession>> sessions;
    sessions.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) sessions.push_back(session);
    for (auto& session : sessions) session->abort("proxy-stop");
    if (pool_) pool_->close_all();
    done.set_value();
  });
  fut.wait();
  reactor_.stop();
  reactor_.join();
}

void ProxyServer::drain_backend(size_t index, bool draining) {
  auto apply = [this, index, draining] {
    if (index >= backends_.size()) return;
    if (backends_[index].draining == draining) return;
    backends_[index].draining = draining;
    if (pool_) pool_->drain(index, draining);
    emit(std::string(draining ? "proxy-drain" : "proxy-undrain") +
         " backend=" + std::to_string(index));
  };
  if (!launched_.load()) {
    apply();
    return;
  }
  reactor_.post(apply);
}

// ---- accept / selection ---------------------------------------------------

void ProxyServer::on_accept(net::TcpSocket client) {
  if (stopping_.load()) {
    client.close();
    return;
  }
  const uint64_t id = next_session_id_++;
  auto session = std::make_shared<ProxySession>(id, *this, std::move(client));
  if (!session->start().is_ok()) return;  // socket closes via RAII
  sessions_.emplace(id, std::move(session));
}

int ProxyServer::select_backend(std::string_view affinity_key) {
  const size_t count = backends_.size();
  if (count == 0) return -1;
  auto eligible = [this](size_t index) { return !backends_[index].draining; };
  auto least_loaded_eligible = [&]() -> int {
    int best = -1;
    for (size_t i = 0; i < count; ++i) {
      if (!eligible(i)) continue;
      if (best < 0 ||
          in_flight_[i].load(std::memory_order_relaxed) <
              in_flight_[static_cast<size_t>(best)].load(
                  std::memory_order_relaxed)) {
        best = static_cast<int>(i);
      }
    }
    return best;
  };
  switch (config_.policy) {
    case cluster::BalancePolicy::kRoundRobin: {
      // Free-running cursor, reduced modulo the *live* count at pick time
      // (the shrink-safety contract shared with the LoadBalancer).
      const uint64_t cursor = round_robin_next_++;
      for (size_t step = 0; step < count; ++step) {
        const size_t index = cluster::pick_round_robin(cursor + step, count);
        if (eligible(index)) return static_cast<int>(index);
      }
      return -1;
    }
    case cluster::BalancePolicy::kLeastConnections:
      return least_loaded_eligible();
    case cluster::BalancePolicy::kPowerOfTwoChoices: {
      std::vector<size_t> loads(count);
      for (size_t i = 0; i < count; ++i) {
        loads[i] = in_flight_[i].load(std::memory_order_relaxed);
      }
      const size_t pick = cluster::pick_p2c(rng_, loads);
      if (eligible(pick)) return static_cast<int>(pick);
      return least_loaded_eligible();
    }
    case cluster::BalancePolicy::kRingHash: {
      for (size_t index : ring_.pick_order(affinity_key)) {
        if (eligible(index)) return static_cast<int>(index);
      }
      return -1;
    }
  }
  return -1;
}

// ---- upstream acquisition -------------------------------------------------

void ProxyServer::request_upstream(const std::shared_ptr<ProxySession>& session,
                                   size_t backend) {
  if (!pool_) {
    start_connect(session, backend);
    return;
  }
  net::TcpSocket socket;
  switch (pool_->acquire(backend, &socket)) {
    case UpstreamPool::Acquire::kReused:
      emit("proxy-pool-reuse backend=" + std::to_string(backend));
      session->upstream_ready(std::move(socket), /*reused=*/true);
      return;
    case UpstreamPool::Acquire::kConnect:
      emit("proxy-pool-miss backend=" + std::to_string(backend));
      start_connect(session, backend);
      return;
    case UpstreamPool::Acquire::kAtCapacity:
      emit("proxy-pool-wait backend=" + std::to_string(backend));
      waiters_[backend].push_back(session->id());
      return;
  }
}

void ProxyServer::request_upstream_fresh(
    const std::shared_ptr<ProxySession>& session, size_t backend) {
  if (!pool_) {
    start_connect(session, backend);
    return;
  }
  switch (pool_->acquire_fresh(backend)) {
    case UpstreamPool::Acquire::kConnect:
      start_connect(session, backend);
      return;
    case UpstreamPool::Acquire::kAtCapacity:
      // The retry jumps the queue: its client already waited one full
      // upstream lifetime.
      waiters_[backend].push_front(session->id());
      return;
    default:
      return;  // kReused is impossible on the fresh path
  }
}

void ProxyServer::start_connect(const std::shared_ptr<ProxySession>& session,
                                size_t backend) {
  auto on_done = [this, session, backend](Result<net::TcpSocket> result) {
    if (!result.is_ok()) {
      abandon_upstream(backend);
      emit("proxy-connect-fail backend=" + std::to_string(backend));
      session->upstream_failed();
      wake_waiter(backend);
      return;
    }
    session->upstream_ready(std::move(result).take(), /*reused=*/false);
  };
  const auto& addr = backends_[backend].addr;
  Status status =
      config_.connect_timeout > Duration::zero()
          ? connector_->connect(addr, config_.connect_timeout,
                                std::move(on_done))
          : connector_->connect(addr, std::move(on_done));
  // A synchronous refusal (no listener / simnet killed port) returns here
  // without invoking the callback.
  if (!status.is_ok()) {
    abandon_upstream(backend);
    emit("proxy-connect-fail backend=" + std::to_string(backend));
    session->upstream_failed();
    wake_waiter(backend);
  }
}

void ProxyServer::release_upstream(size_t backend, net::TcpSocket socket,
                                   bool reusable) {
  if (!pool_ || stopping_.load()) {
    socket.close();
    return;
  }
  pool_->release(backend, std::move(socket), reusable);
  wake_waiter(backend);
}

void ProxyServer::abandon_upstream(size_t backend) {
  if (pool_) pool_->abandon(backend);
}

void ProxyServer::wake_waiter(size_t backend) {
  if (!pool_ || backend >= waiters_.size() || stopping_.load()) return;
  auto& queue = waiters_[backend];
  while (!queue.empty()) {
    const uint64_t id = queue.front();
    queue.pop_front();
    auto it = sessions_.find(id);
    if (it == sessions_.end()) continue;  // waiter died while parked
    request_upstream(it->second, backend);
    return;
  }
}

// ---- bookkeeping ----------------------------------------------------------

void ProxyServer::note_request_start(size_t backend) {
  in_flight_[backend].fetch_add(1, std::memory_order_relaxed);
}

void ProxyServer::note_request_end(size_t backend) {
  auto& gauge = in_flight_[backend];
  if (gauge.load(std::memory_order_relaxed) > 0) {
    gauge.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ProxyServer::session_done(uint64_t id) {
  for (auto& queue : waiters_) {
    for (auto it = queue.begin(); it != queue.end();) {
      it = (*it == id) ? queue.erase(it) : std::next(it);
    }
  }
  // Deleting the session inside its own callback would free the object
  // mid-call; defer the erase to the next loop turn.
  reactor_.post([this, id] { sessions_.erase(id); });
}

void ProxyServer::emit(const std::string& event) {
  if (config_.event_listener) config_.event_listener(event);
}

// ---- admin endpoint -------------------------------------------------------

namespace {

void append_metric(std::string& out, const char* name, const char* type,
                   uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

std::string format_fraction(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

}  // namespace

std::string ProxyServer::render_stats_prometheus() const {
  std::string out;
  out.reserve(1024);
  append_metric(out, "cops_proxy_requests_total", "counter",
                counters_.requests.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_responses_total", "counter",
                counters_.responses.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_bad_gateway_total", "counter",
                counters_.bad_gateway.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_gateway_timeout_total", "counter",
                counters_.gateway_timeout.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_poisoned_upstreams_total", "counter",
                counters_.poisoned.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_backpressure_events_total", "counter",
                counters_.backpressure.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_shed_total", "counter",
                counters_.shed.load(std::memory_order_relaxed));
  append_metric(out, "cops_proxy_pool_reuse_total", "counter",
                pool_reuse_total());
  append_metric(out, "cops_proxy_pool_miss_total", "counter",
                pool_miss_total());
  append_metric(out, "cops_proxy_pool_stale_retry_total", "counter",
                pool_stale_retry_total());
  out += "# TYPE cops_proxy_backend_in_flight gauge\n";
  for (size_t i = 0; i < backends_.size(); ++i) {
    out += "cops_proxy_backend_in_flight{backend=\"";
    out += std::to_string(i);
    out += "\"} ";
    out += std::to_string(in_flight_[i].load(std::memory_order_relaxed));
    out += '\n';
  }
  out += "# TYPE cops_proxy_backend_draining gauge\n";
  for (size_t i = 0; i < backends_.size(); ++i) {
    out += "cops_proxy_backend_draining{backend=\"";
    out += std::to_string(i);
    out += "\"} ";
    out += backends_[i].draining ? '1' : '0';
    out += '\n';
  }
  if (overload_) {
    const auto snap = overload_->snapshot();
    out += "# TYPE cops_proxy_overload_pressure gauge\n";
    for (const auto& monitor : snap.monitors) {
      out += "cops_proxy_overload_pressure{monitor=\"";
      out += monitor.name;
      out += "\"} ";
      out += format_fraction(monitor.smoothed);
      out += '\n';
    }
    out += "cops_proxy_overload_pressure{monitor=\"overall\"} ";
    out += format_fraction(snap.pressure);
    out += '\n';
    append_metric(out, "cops_proxy_overload_tier", "gauge",
                  static_cast<uint64_t>(snap.tier));
    append_metric(out, "cops_proxy_overload_retry_after_seconds", "gauge",
                  static_cast<uint64_t>(snap.retry_after.count()));
    append_metric(out, "cops_proxy_overload_accept_stopped", "gauge",
                  snap.accept_stopped ? 1 : 0);
  }
  return out;
}

std::string ProxyServer::render_stats_json() const {
  std::string out = "{";
  out += "\"requests\":" +
         std::to_string(counters_.requests.load(std::memory_order_relaxed));
  out += ",\"responses\":" +
         std::to_string(counters_.responses.load(std::memory_order_relaxed));
  out += ",\"bad_gateway\":" +
         std::to_string(counters_.bad_gateway.load(std::memory_order_relaxed));
  out += ",\"gateway_timeout\":" +
         std::to_string(
             counters_.gateway_timeout.load(std::memory_order_relaxed));
  out += ",\"poisoned_upstreams\":" +
         std::to_string(counters_.poisoned.load(std::memory_order_relaxed));
  out += ",\"backpressure_events\":" +
         std::to_string(
             counters_.backpressure.load(std::memory_order_relaxed));
  out += ",\"shed\":" +
         std::to_string(counters_.shed.load(std::memory_order_relaxed));
  if (overload_) {
    const auto snap = overload_->snapshot();
    out += ",\"overload\":{\"pressure\":" + format_fraction(snap.pressure);
    out += ",\"tier\":" + std::to_string(static_cast<int>(snap.tier));
    out += ",\"tier_name\":\"";
    out += nserver::to_string(snap.tier);
    out += "\",\"retry_after_s\":" + std::to_string(snap.retry_after.count());
    out += std::string(",\"shedding\":") + (snap.shedding ? "true" : "false");
    out += std::string(",\"accept_stopped\":") +
           (snap.accept_stopped ? "true" : "false");
    out += ",\"monitors\":[";
    for (size_t i = 0; i < snap.monitors.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"name\":\"" + snap.monitors[i].name + "\"";
      out += ",\"raw\":" + format_fraction(snap.monitors[i].raw);
      out += ",\"pressure\":" + format_fraction(snap.monitors[i].pressure);
      out += ",\"smoothed\":" + format_fraction(snap.monitors[i].smoothed);
      out += "}";
    }
    out += "]}";
  }
  out += ",\"pool\":{\"reuse\":" + std::to_string(pool_reuse_total());
  out += ",\"miss\":" + std::to_string(pool_miss_total());
  out += ",\"stale_retry\":" + std::to_string(pool_stale_retry_total());
  out += "},\"backends\":[";
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(i);
    out += ",\"address\":\"" + backends_[i].addr.to_string() + "\"";
    out += std::string(",\"draining\":") +
           (backends_[i].draining ? "true" : "false");
    out += ",\"in_flight\":" +
           std::to_string(in_flight_[i].load(std::memory_order_relaxed));
    if (pool_) {
      out += ",\"pool_in_use\":" + std::to_string(pool_->in_use(i));
      out += ",\"pool_idle\":" + std::to_string(pool_->idle(i));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ProxyServer::admin_respond(const std::string& method,
                                       const std::string& path) const {
  (void)method;  // AdminServer already rejected non-GET/HEAD
  if (path == "/healthz") {
    if (stopping_.load()) {
      return nserver::admin_response(503, "Service Unavailable",
                                     "text/plain; charset=utf-8",
                                     "stopping\n");
    }
    return nserver::admin_response(200, "OK", "text/plain; charset=utf-8",
                                   "ok\n");
  }
  if (path == "/stats") {
    return nserver::admin_response(200, "OK",
                                   "text/plain; version=0.0.4; charset=utf-8",
                                   render_stats_prometheus());
  }
  if (path == "/stats.json") {
    return nserver::admin_response(200, "OK", "application/json",
                                   render_stats_json());
  }
  if (path == "/") {
    return nserver::admin_response(200, "OK", "text/plain; charset=utf-8",
                                   "cops-proxy admin\n"
                                   "  /healthz     liveness\n"
                                   "  /stats       Prometheus text format\n"
                                   "  /stats.json  JSON\n");
  }
  return nserver::admin_response(404, "Not Found", "text/plain; charset=utf-8",
                                 "not found\n");
}

}  // namespace cops::proxy
