#include "cluster/lb_policy.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace cops::cluster {

size_t pick_round_robin(uint64_t cursor, size_t backend_count) {
  if (backend_count == 0) return 0;
  return static_cast<size_t>(cursor % backend_count);
}

size_t pick_least_loaded(const std::vector<size_t>& loads) {
  size_t best = 0;
  for (size_t i = 1; i < loads.size(); ++i) {
    if (loads[i] < loads[best]) best = i;
  }
  return best;
}

size_t pick_p2c(std::mt19937_64& rng, const std::vector<size_t>& loads) {
  const size_t n = loads.size();
  if (n <= 1) return 0;
  const auto a = static_cast<size_t>(rng() % n);
  auto b = static_cast<size_t>(rng() % (n - 1));
  if (b >= a) ++b;  // distinct second choice, uniform over the rest
  return loads[b] < loads[a] ? b : a;
}

uint64_t fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void HashRing::build(size_t backend_count, size_t vnodes) {
  ring_.clear();
  backend_count_ = backend_count;
  ring_.reserve(backend_count * vnodes);
  for (size_t backend = 0; backend < backend_count; ++backend) {
    for (size_t v = 0; v < vnodes; ++v) {
      const std::string label =
          "backend-" + std::to_string(backend) + "#" + std::to_string(v);
      ring_.emplace_back(fnv1a64(label), backend);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t HashRing::pick(std::string_view key) const {
  if (ring_.empty()) return std::numeric_limits<size_t>::max();
  const uint64_t point = fnv1a64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, uint64_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<size_t> HashRing::pick_order(std::string_view key) const {
  std::vector<size_t> order;
  if (ring_.empty()) return order;
  order.reserve(backend_count_);
  std::vector<bool> seen(backend_count_, false);
  const uint64_t point = fnv1a64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, uint64_t value) { return entry.first < value; });
  for (size_t walked = 0; walked < ring_.size() && order.size() < backend_count_;
       ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->second]) {
      seen[it->second] = true;
      order.push_back(it->second);
    }
  }
  return order;
}

}  // namespace cops::cluster
