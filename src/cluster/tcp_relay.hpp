// Bidirectional TCP relay session — the data plane of the distributed
// N-Server front end (the paper's future work, Section VI: "the generation
// of distributed N-servers that will serve from a network of workstations").
//
// A RelaySession pipes bytes between a client socket and a backend socket
// on one Reactor, with per-direction buffering, write backpressure (read
// interest drops while the peer's buffer is full), and half-close
// propagation (EOF on one side shuts down the write side of the other once
// buffered bytes drain).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/byte_buffer.hpp"
#include "net/event_handler.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace cops::cluster {

class RelaySession : public net::EventHandler,
                     public std::enable_shared_from_this<RelaySession> {
 public:
  using DoneCallback = std::function<void(uint64_t session_id)>;

  RelaySession(uint64_t id, net::Reactor& reactor, net::TcpSocket client,
               net::TcpSocket backend, DoneCallback on_done,
               size_t buffer_cap = 256 * 1024);
  ~RelaySession() override;

  // Registers both sockets; reactor thread only.
  Status start();

  void handle_event(int fd, uint32_t readiness) override;

  [[nodiscard]] uint64_t id() const { return id_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] uint64_t bytes_client_to_backend() const {
    return to_backend_bytes_;
  }
  [[nodiscard]] uint64_t bytes_backend_to_client() const {
    return to_client_bytes_;
  }

  // Tears down both sockets immediately.
  void abort(const char* reason);

 private:
  // One direction of the pipe: src --(buffer)--> dst.
  struct Direction {
    net::TcpSocket* src = nullptr;
    net::TcpSocket* dst = nullptr;
    ByteBuffer buffer;
    bool src_eof = false;        // no more reads from src
    bool dst_shutdown = false;   // write side of dst closed
    uint64_t* counter = nullptr;
  };

  void pump(Direction& dir);
  void update_interest();
  void finish();

  uint64_t id_;
  net::Reactor& reactor_;
  net::TcpSocket client_;
  net::TcpSocket backend_;
  DoneCallback on_done_;
  size_t buffer_cap_;

  Direction inbound_;   // client → backend
  Direction outbound_;  // backend → client
  uint64_t to_backend_bytes_ = 0;
  uint64_t to_client_bytes_ = 0;
  bool registered_ = false;
  bool finished_ = false;
};

}  // namespace cops::cluster
