// Pluggable load-balancing selection policies for the cluster front end.
//
// The LoadBalancer (relay data plane) and the ProxyServer (streaming L7
// data plane, src/proxy) share these helpers so a policy behaves the same
// whichever front end hosts it:
//
//   * round-robin     — a monotonically increasing cursor, *always reduced
//                       modulo the live backend count at selection time*.
//                       The cursor survives backend-set changes; the modulo
//                       guard (not the cursor) keeps it in range, so a
//                       shrink can never index past the end (regression:
//                       proxy_pool_test RoundRobinSurvivesBackendShrink).
//   * least-loaded    — smallest current load, ties by lowest index
//                       (deterministic).
//   * P2C             — power-of-two-choices: two distinct candidates from
//                       the caller's seeded PRNG, keep the less loaded one.
//                       Near-least-loaded balance at O(1) cost and without
//                       the herding a global argmin causes.
//   * ring hash       — consistent hashing over `vnodes` virtual nodes per
//                       backend; a key (e.g. the request path) maps to the
//                       first vnode clockwise, so key→backend affinity is
//                       stable under backend-set changes except for the
//                       keys owned by the departed backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace cops::cluster {

// Round-robin selection guarded against a shrunk backend set: the cursor is
// free-running (callers just increment it per admission) and reduction
// happens here, against the count that is live *now*.
[[nodiscard]] size_t pick_round_robin(uint64_t cursor, size_t backend_count);

// Index of the smallest load; ties broken by the lower index.  `loads` must
// be non-empty.
[[nodiscard]] size_t pick_least_loaded(const std::vector<size_t>& loads);

// Power of two choices: draws two distinct indices from `rng` and returns
// the one with the smaller load (ties: the first drawn).  With one backend
// it degenerates to index 0.  `loads` must be non-empty.
[[nodiscard]] size_t pick_p2c(std::mt19937_64& rng,
                              const std::vector<size_t>& loads);

// Consistent-hash ring (Karger-style, FNV-1a hashed vnodes).
class HashRing {
 public:
  // Builds a ring over backends [0, backend_count) with `vnodes` virtual
  // nodes each.  Deterministic: same inputs, same ring.
  void build(size_t backend_count, size_t vnodes = 64);

  // First backend clockwise from hash(key).  Returns SIZE_MAX on an empty
  // ring.
  [[nodiscard]] size_t pick(std::string_view key) const;

  // Preference order for `key`: the owner first, then each subsequent
  // distinct backend clockwise — the retry order that preserves affinity.
  [[nodiscard]] std::vector<size_t> pick_order(std::string_view key) const;

  [[nodiscard]] bool empty() const { return ring_.empty(); }

 private:
  // (point on the ring, backend index), sorted by point.
  std::vector<std::pair<uint64_t, size_t>> ring_;
  size_t backend_count_ = 0;
};

[[nodiscard]] uint64_t fnv1a64(std::string_view bytes);

}  // namespace cops::cluster
