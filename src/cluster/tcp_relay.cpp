#include "cluster/tcp_relay.hpp"

#include "common/logging.hpp"

namespace cops::cluster {

RelaySession::RelaySession(uint64_t id, net::Reactor& reactor,
                           net::TcpSocket client, net::TcpSocket backend,
                           DoneCallback on_done, size_t buffer_cap)
    : id_(id),
      reactor_(reactor),
      client_(std::move(client)),
      backend_(std::move(backend)),
      on_done_(std::move(on_done)),
      buffer_cap_(buffer_cap) {
  client_.set_nodelay(true);
  backend_.set_nodelay(true);
  inbound_ = {&client_, &backend_, {}, false, false, &to_backend_bytes_};
  outbound_ = {&backend_, &client_, {}, false, false, &to_client_bytes_};
}

RelaySession::~RelaySession() = default;

Status RelaySession::start() {
  auto status = reactor_.register_handler(client_.fd(), this, net::kReadable);
  if (!status.is_ok()) return status;
  status = reactor_.register_handler(backend_.fd(), this, net::kReadable);
  if (!status.is_ok()) {
    reactor_.deregister(client_.fd());
    return status;
  }
  registered_ = true;
  return Status::ok();
}

void RelaySession::handle_event(int fd, uint32_t readiness) {
  auto self = shared_from_this();
  if (finished_) return;
  if ((readiness & net::kErrored) != 0) {
    abort("socket-error");
    return;
  }
  // Either socket's event may unblock both directions (a writable dst
  // drains its buffer, which re-enables reads on the matching src).
  (void)fd;
  pump(inbound_);
  if (finished_) return;
  pump(outbound_);
  if (finished_) return;
  update_interest();

  // Both directions complete → done.
  const bool inbound_done = inbound_.src_eof && inbound_.buffer.empty();
  const bool outbound_done = outbound_.src_eof && outbound_.buffer.empty();
  if (inbound_done && outbound_done) finish();
}

void RelaySession::pump(Direction& dir) {
  // Read while there is buffer room.
  while (!dir.src_eof && dir.buffer.readable() < buffer_cap_) {
    auto n = dir.src->read(dir.buffer);
    if (!n.is_ok()) {
      if (n.status().code() == StatusCode::kWouldBlock) break;
      // EOF or reset: stop reading this direction.
      dir.src_eof = true;
      break;
    }
    *dir.counter += n.value();
  }
  // Write whatever is buffered.
  if (dir.buffer.readable() > 0) {
    auto n = dir.dst->write(dir.buffer);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      abort("relay-write-error");
      return;
    }
  }
  // Propagate half-close once drained.
  if (dir.src_eof && dir.buffer.empty() && !dir.dst_shutdown) {
    dir.dst->shutdown_write();
    dir.dst_shutdown = true;
  }
}

void RelaySession::update_interest() {
  auto interest_for = [&](Direction& read_dir, Direction& write_dir) {
    uint32_t interest = 0;
    if (!read_dir.src_eof && read_dir.buffer.readable() < buffer_cap_) {
      interest |= net::kReadable;
    }
    if (write_dir.buffer.readable() > 0) interest |= net::kWritable;
    return interest;
  };
  // client fd: reads feed inbound, writes drain outbound.
  reactor_.update_interest(client_.fd(), interest_for(inbound_, outbound_));
  // backend fd: reads feed outbound, writes drain inbound.
  reactor_.update_interest(backend_.fd(), interest_for(outbound_, inbound_));
}

void RelaySession::abort(const char* reason) {
  (void)reason;
  finish();
}

void RelaySession::finish() {
  if (finished_) return;
  finished_ = true;
  if (registered_) {
    reactor_.deregister(client_.fd());
    reactor_.deregister(backend_.fd());
    registered_ = false;
  }
  client_.close();
  backend_.close();
  if (on_done_) on_done_(id_);
}

}  // namespace cops::cluster
