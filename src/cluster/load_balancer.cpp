#include "cluster/load_balancer.hpp"

#include <algorithm>
#include <future>
#include <numeric>

#include "common/logging.hpp"
#include "nserver/admin_server.hpp"

namespace cops::cluster {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

const char* to_string(BalancePolicy policy) {
  switch (policy) {
    case BalancePolicy::kRoundRobin:
      return "round_robin";
    case BalancePolicy::kLeastConnections:
      return "least_connections";
    case BalancePolicy::kPowerOfTwoChoices:
      return "p2c";
    case BalancePolicy::kRingHash:
      return "ring_hash";
  }
  return "?";
}

// One in-flight HTTP health probe: send GET /healthz, read the status line,
// report 200 as success.  Lives on the balancer's reactor thread; bounded
// by its own deadline timer.
class HealthProbe : public net::EventHandler,
                    public std::enable_shared_from_this<HealthProbe> {
 public:
  HealthProbe(LoadBalancer& owner, size_t index, net::TcpSocket socket)
      : owner_(owner), index_(index), socket_(std::move(socket)) {}

  void start() {
    out_.append(
        "GET /healthz HTTP/1.1\r\nHost: backend\r\nConnection: close\r\n\r\n");
    auto status = owner_.reactor_.register_handler(
        socket_.fd(), this, net::kReadable | net::kWritable);
    if (!status.is_ok()) {
      finish(false);
      return;
    }
    registered_ = true;
    timer_ = owner_.reactor_.run_after(
        owner_.config_.resilience.health_timeout, [this] { finish(false); });
    has_timer_ = true;
  }

  // Teardown without reporting a result (balancer stop).
  void cancel() {
    if (done_) return;
    done_ = true;
    cleanup();
  }

  void handle_event(int /*fd*/, uint32_t readiness) override {
    auto self = shared_from_this();  // finish() drops the owner's reference
    if (done_) return;
    if ((readiness & net::kErrored) != 0) {
      finish(false);
      return;
    }
    if ((readiness & net::kWritable) != 0) flush();
    if (done_) return;
    if ((readiness & net::kReadable) != 0) on_readable();
  }

 private:
  void flush() {
    if (out_.empty()) return;
    auto n = socket_.write(out_);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      finish(false);
    }
  }

  void on_readable() {
    auto n = socket_.read(in_);
    if (!n.is_ok() && n.status().code() != StatusCode::kWouldBlock) {
      finish(false);
      return;
    }
    const size_t line_end = in_.find("\r\n");
    if (line_end == std::string::npos) {
      if (n.is_ok() && n.value() == 0) finish(false);  // EOF before status
      return;
    }
    // "HTTP/1.x NNN ..." — success is exactly 200.
    std::string_view line = in_.view().substr(0, line_end);
    const size_t sp = line.find(' ');
    const bool ok = sp != std::string_view::npos && line.size() >= sp + 4 &&
                    line.substr(sp + 1, 3) == "200";
    finish(ok);
  }

  void finish(bool ok) {
    if (done_) return;
    done_ = true;
    auto self = shared_from_this();
    cleanup();
    owner_.finish_probe(index_, ok);
  }

  void cleanup() {
    if (has_timer_) {
      owner_.reactor_.cancel_timer(timer_);
      has_timer_ = false;
    }
    if (registered_) {
      (void)owner_.reactor_.deregister(socket_.fd());
      registered_ = false;
    }
    socket_.close();
  }

  LoadBalancer& owner_;
  size_t index_;
  net::TcpSocket socket_;
  ByteBuffer in_;
  ByteBuffer out_;
  net::TimerQueue::TimerId timer_ = 0;
  bool has_timer_ = false;
  bool registered_ = false;
  bool done_ = false;
};

LoadBalancer::LoadBalancer(LoadBalancerConfig config)
    : config_(std::move(config)), rng_(config_.resilience.seed) {}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::add_backend(const net::InetAddress& addr) {
  add_backend(addr, addr);
}

void LoadBalancer::add_backend(const net::InetAddress& addr,
                               const net::InetAddress& health_addr) {
  Backend backend;
  backend.addr = addr;
  backend.health_addr = health_addr;
  backends_.push_back(std::move(backend));
}

Status LoadBalancer::start() {
  if (started_.exchange(true)) {
    return Status::invalid_argument("already started");
  }
  if (backends_.empty()) {
    return Status::invalid_argument("no backends configured");
  }
  if (config_.policy == BalancePolicy::kRingHash) {
    ring_.build(backends_.size());
  }
  connector_ = std::make_unique<net::Connector>(reactor_);
  acceptor_ = std::make_unique<net::Acceptor>(
      reactor_, [this](net::TcpSocket client) { on_accept(std::move(client)); });
  auto addr =
      net::InetAddress::parse(config_.listen_host, config_.listen_port);
  if (!addr.is_ok()) return addr.status();
  auto status = acceptor_->open(addr.value(), config_.listen_backlog);
  if (!status.is_ok()) return status;
  auto bound = acceptor_->local_address();
  if (!bound.is_ok()) return bound.status();
  port_ = bound.value().port();
  if (config_.admin_enabled) {
    admin_ = std::make_unique<nserver::AdminServer>(
        reactor_, [this](const std::string& method, const std::string& path) {
          return admin_respond(method, path);
        });
    auto admin_addr =
        net::InetAddress::parse(config_.admin_host, config_.admin_port);
    if (!admin_addr.is_ok()) return admin_addr.status();
    auto admin_status = admin_->open(admin_addr.value());
    if (!admin_status.is_ok()) return admin_status;
    admin_port_ = admin_->port();
  }
  if (config_.resilience.enabled && config_.resilience.health_checks) {
    // Same convention as the N-Server's housekeeping timer: armed before the
    // reactor thread starts, rescheduled from the reactor thread after.
    health_timer_ =
        reactor_.run_after(config_.resilience.health_interval,
                           [this] { health_tick(); });
    health_timer_armed_ = true;
  }
  reactor_.start_thread("balancer");
  launched_.store(true);
  return Status::ok();
}

void LoadBalancer::stop() {
  // A failed start() never launched the reactor thread; posting to it and
  // waiting would deadlock.
  if (!launched_.load() || stopping_.exchange(true)) return;
  std::promise<void> done;
  auto fut = done.get_future();
  reactor_.post([this, &done] {
    if (acceptor_) acceptor_->close();
    if (admin_) admin_->close();
    if (health_timer_armed_) {
      reactor_.cancel_timer(health_timer_);
      health_timer_armed_ = false;
    }
    auto probes = std::move(probes_);
    probes_.clear();
    for (auto& [index, probe] : probes) probe->cancel();
    // Abort active relays (copy: abort mutates the map via session_done).
    std::vector<std::shared_ptr<RelaySession>> sessions;
    sessions.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) sessions.push_back(session);
    for (auto& session : sessions) session->abort("balancer-stop");
    done.set_value();
  });
  fut.wait();
  reactor_.stop();
  reactor_.join();
}

void LoadBalancer::drain_backend(size_t index, bool draining) {
  if (!launched_.load()) {
    if (index < backends_.size()) backends_[index].stats.draining = draining;
    return;
  }
  reactor_.post([this, index, draining] {
    if (index >= backends_.size()) return;
    if (backends_[index].stats.draining == draining) return;
    backends_[index].stats.draining = draining;
    emit(std::string(draining ? "drain" : "undrain") +
         " backend=" + std::to_string(index));
  });
}

void LoadBalancer::remove_backend(size_t index) {
  auto apply = [this, index] {
    if (index >= backends_.size()) return;
    // A probe in flight holds its backend index by value; cancel everything
    // from the removed slot up so no probe can report against a shifted
    // index (probes for the earlier, unshifted slots keep running and the
    // health tick re-arms the rest).
    for (auto it = probes_.begin(); it != probes_.end();) {
      if (it->first >= index) {
        it->second->cancel();
        it = probes_.erase(it);
      } else {
        ++it;
      }
    }
    backends_.erase(backends_.begin() + static_cast<long>(index));
    // Relays to the removed backend keep running but their stats slot is
    // gone; sessions bound to later backends shift down with the vector.
    for (auto it = session_backend_.begin(); it != session_backend_.end();) {
      if (it->second == index) {
        it = session_backend_.erase(it);
      } else {
        if (it->second > index) it->second -= 1;
        ++it;
      }
    }
    if (config_.policy == BalancePolicy::kRingHash) {
      ring_.build(backends_.size());
    }
    emit("remove backend=" + std::to_string(index));
  };
  if (!launched_.load()) {
    apply();
    return;
  }
  reactor_.post(std::move(apply));
}

void LoadBalancer::emit(const std::string& event) {
  if (config_.event_listener) config_.event_listener(event);
}

// ---- admission ---------------------------------------------------------------

void LoadBalancer::on_accept(net::TcpSocket client) {
  auto admission = std::make_shared<Admission>();
  admission->client = std::make_shared<net::TcpSocket>(std::move(client));
  admission->tried.assign(backends_.size(), false);
  if (config_.policy == BalancePolicy::kRingHash) {
    // Affinity by client IP: reconnects from the same host land on the same
    // backend for as long as it is in the set.
    auto peer = admission->client->peer_address();
    if (peer.is_ok()) admission->affinity_key = peer.value().host();
  }
  ++round_robin_next_;
  if (!attempt_next(admission)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    admission->client->close();
  }
}

bool LoadBalancer::backend_eligible(size_t index) {
  auto& backend = backends_[index];
  if (backend.stats.draining) return false;
  if (!config_.resilience.enabled) return true;
  if (config_.resilience.health_checks && !backend.stats.healthy) return false;
  switch (backend.stats.breaker) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now() >= backend.open_until) {
        // Backoff expired: probation — the next connect is the trial.
        backend.stats.breaker = BreakerState::kHalfOpen;
        emit("breaker-halfopen backend=" + std::to_string(index));
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      return !backend.half_open_inflight;
  }
  return true;
}

bool LoadBalancer::passes_slow_start(size_t index) {
  const auto window = config_.resilience.slow_start_window;
  if (!config_.resilience.enabled || window <= Duration::zero()) return true;
  auto& backend = backends_[index];
  if (backend.recovered_at == TimePoint{}) return true;
  const auto elapsed = now() - backend.recovered_at;
  if (elapsed >= window) return true;
  // Linear ramp: admit with probability elapsed/window, so a recovered
  // backend takes load gradually instead of absorbing a thundering herd.
  const double weight = to_seconds(elapsed) / to_seconds(window);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_) < weight;
}

std::vector<size_t> LoadBalancer::candidate_order(const Admission& admission) {
  const size_t n = backends_.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  switch (config_.policy) {
    case BalancePolicy::kLeastConnections:
      std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
        return backends_[a].stats.active < backends_[b].stats.active;
      });
      break;
    case BalancePolicy::kPowerOfTwoChoices: {
      std::vector<size_t> loads(n);
      for (size_t i = 0; i < n; ++i) loads[i] = backends_[i].stats.active;
      const size_t winner = pick_p2c(rng_, loads);
      std::rotate(order.begin(), order.begin() + static_cast<long>(winner),
                  order.end());
      break;
    }
    case BalancePolicy::kRingHash: {
      auto ring_order = ring_.pick_order(admission.affinity_key);
      if (!ring_order.empty()) order = std::move(ring_order);
      break;
    }
    case BalancePolicy::kRoundRobin: {
      // The cursor free-runs; the modulo guard against the *live* count is
      // what keeps a shrunk backend set in range (see lb_policy.hpp).
      const size_t hint = pick_round_robin(round_robin_next_ - 1, n);
      std::rotate(order.begin(), order.begin() + static_cast<long>(hint),
                  order.end());
      break;
    }
  }
  return order;
}

int LoadBalancer::choose_candidate(const Admission& admission) {
  if (backends_.empty()) return -1;
  const std::vector<size_t> order = candidate_order(admission);
  // Pass 1: eligible, honouring slow-start weighting.
  for (size_t index : order) {
    if (admission.was_tried(index) || !backend_eligible(index)) continue;
    if (passes_slow_start(index)) return static_cast<int>(index);
  }
  // Pass 2: eligible (the slow-start gate deferred everyone).
  for (size_t index : order) {
    if (!admission.was_tried(index) && backend_eligible(index)) {
      return static_cast<int>(index);
    }
  }
  // Last resort: any untried, non-draining backend — a fast failure there
  // beats dropping the client without trying.
  for (size_t index : order) {
    if (!admission.was_tried(index) && !backends_[index].stats.draining) {
      return static_cast<int>(index);
    }
  }
  return -1;
}

bool LoadBalancer::attempt_next(const std::shared_ptr<Admission>& admission) {
  if (stopping_.load()) return false;
  const size_t budget = config_.resilience.enabled
                            ? config_.resilience.retry_budget
                            : backends_.size();
  if (admission->attempts >= budget) return false;
  const int choice = choose_candidate(*admission);
  if (choice < 0) return false;
  const auto index = static_cast<size_t>(choice);
  if (index >= admission->tried.size()) {
    admission->tried.resize(index + 1, false);
  }
  admission->tried[index] = true;
  admission->attempts += 1;
  if (backends_[index].stats.breaker == BreakerState::kHalfOpen) {
    backends_[index].half_open_inflight = true;
  }
  auto on_result = [this, admission, index](Result<net::TcpSocket> backend_sock) {
    if (stopping_.load()) return;
    if (!backend_sock.is_ok()) {
      note_backend_failure(index);
      if (attempt_next(admission)) {
        backends_[index].stats.retries += 1;
        retries_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        admission->client->close();
      }
      return;
    }
    note_backend_success(index);
    const uint64_t id = next_session_id_++;
    auto session = std::make_shared<RelaySession>(
        id, reactor_, std::move(*admission->client),
        std::move(backend_sock).take(),
        [this](uint64_t done_id) { session_done(done_id); },
        config_.relay_buffer_bytes);
    auto start_status = session->start();
    if (!start_status.is_ok()) {
      COPS_WARN("relay start failed: " << start_status.to_string());
      return;
    }
    sessions_.emplace(id, std::move(session));
    session_backend_.emplace(id, index);
    backends_[index].stats.connections += 1;
    backends_[index].stats.active += 1;
    active_.fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  };
  Status status;
  const auto timeout = config_.resilience.connect_timeout;
  if (config_.resilience.enabled && timeout > Duration::zero()) {
    status = connector_->connect(backends_[index].addr, timeout,
                                 std::move(on_result));
  } else {
    status = connector_->connect(backends_[index].addr, std::move(on_result));
  }
  if (!status.is_ok()) {
    // Synchronous refusal (dead local port): count it and keep going.
    note_backend_failure(index);
    if (attempt_next(admission)) {
      backends_[index].stats.retries += 1;
      retries_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return true;
}

// ---- circuit breaker ----------------------------------------------------------

Duration LoadBalancer::breaker_backoff(int exponent) {
  const auto& resilience = config_.resilience;
  const int shift = std::min(exponent, 20);
  Duration backoff = resilience.breaker_base_backoff * (1LL << shift);
  if (backoff > resilience.breaker_max_backoff) {
    backoff = resilience.breaker_max_backoff;
  }
  if (resilience.breaker_jitter > 0.0) {
    std::uniform_real_distribution<double> dist(-resilience.breaker_jitter,
                                                resilience.breaker_jitter);
    backoff = std::chrono::duration_cast<Duration>(backoff * (1.0 + dist(rng_)));
  }
  return backoff;
}

void LoadBalancer::open_breaker(size_t index) {
  auto& backend = backends_[index];
  backend.stats.breaker = BreakerState::kOpen;
  backend.stats.ejections += 1;
  backend.open_until = now() + breaker_backoff(backend.backoff_exponent);
  emit("breaker-open backend=" + std::to_string(index));
}

void LoadBalancer::note_backend_failure(size_t index) {
  auto& backend = backends_[index];
  backend.stats.connect_failures += 1;
  backend.consecutive_failures += 1;
  if (!config_.resilience.enabled) return;
  if (backend.stats.breaker == BreakerState::kHalfOpen) {
    // Probation connect failed: back to open with a longer backoff.
    backend.half_open_inflight = false;
    backend.backoff_exponent += 1;
    open_breaker(index);
    return;
  }
  if (backend.stats.breaker == BreakerState::kClosed &&
      backend.consecutive_failures >=
          config_.resilience.breaker_failure_threshold) {
    open_breaker(index);
  }
}

void LoadBalancer::note_backend_success(size_t index) {
  auto& backend = backends_[index];
  backend.consecutive_failures = 0;
  if (!config_.resilience.enabled) return;
  if (backend.stats.breaker == BreakerState::kHalfOpen) {
    backend.half_open_inflight = false;
    backend.stats.breaker = BreakerState::kClosed;
    backend.backoff_exponent = 0;
    backend.recovered_at = now();
    emit("breaker-close backend=" + std::to_string(index));
  }
}

// ---- active health checks ------------------------------------------------------

void LoadBalancer::health_tick() {
  if (stopping_.load()) return;
  for (size_t index = 0; index < backends_.size(); ++index) {
    start_probe(index);
  }
  health_timer_ = reactor_.run_after(config_.resilience.health_interval,
                                     [this] { health_tick(); });
  health_timer_armed_ = true;
}

void LoadBalancer::start_probe(size_t index) {
  auto& backend = backends_[index];
  if (backend.probe_inflight || backend.stats.draining) return;
  backend.probe_inflight = true;
  backend.stats.probes += 1;
  auto status = connector_->connect(
      backend.health_addr, config_.resilience.health_timeout,
      [this, index](Result<net::TcpSocket> sock) {
        if (stopping_.load()) return;
        if (!sock.is_ok()) {
          finish_probe(index, false);
          return;
        }
        if (!config_.resilience.health_http) {
          // TCP mode: a completed connect is the health signal.
          auto socket = std::move(sock).take();
          socket.close();
          finish_probe(index, true);
          return;
        }
        auto probe = std::make_shared<HealthProbe>(*this, index,
                                                   std::move(sock).take());
        probes_[index] = probe;
        probe->start();
      });
  if (!status.is_ok()) finish_probe(index, false);
}

void LoadBalancer::finish_probe(size_t index, bool ok) {
  auto& backend = backends_[index];
  backend.probe_inflight = false;
  probes_.erase(index);
  if (ok) {
    backend.probe_failure_streak = 0;
    backend.probe_success_streak += 1;
    if (!backend.stats.healthy &&
        backend.probe_success_streak >= config_.resilience.health_rise) {
      backend.stats.healthy = true;
      backend.recovered_at = now();
      emit("health-up backend=" + std::to_string(index));
    }
  } else {
    backend.stats.probe_failures += 1;
    backend.probe_success_streak = 0;
    backend.probe_failure_streak += 1;
    if (backend.stats.healthy &&
        backend.probe_failure_streak >= config_.resilience.health_fall) {
      backend.stats.healthy = false;
      emit("health-down backend=" + std::to_string(index));
    }
  }
}

// ---- sessions -----------------------------------------------------------------

void LoadBalancer::session_done(uint64_t id) {
  auto backend_it = session_backend_.find(id);
  if (backend_it != session_backend_.end()) {
    auto& stats = backends_[backend_it->second].stats;
    if (stats.active > 0) stats.active -= 1;
    session_backend_.erase(backend_it);
  }
  // Deleting the session inside its own callback would free the object
  // mid-call; defer the erase to the next loop turn.
  reactor_.post([this, id] { sessions_.erase(id); });
  if (active_.load() > 0) active_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<BackendStats> LoadBalancer::backend_stats() {
  std::promise<std::vector<BackendStats>> result;
  auto fut = result.get_future();
  reactor_.post([this, &result] {
    std::vector<BackendStats> stats;
    stats.reserve(backends_.size());
    for (const auto& backend : backends_) stats.push_back(backend.stats);
    result.set_value(std::move(stats));
  });
  return fut.get();
}

// ---- admin endpoint -------------------------------------------------------------

namespace {

void append_metric(std::string& out, const std::string& name, const char* type,
                   uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void append_labeled(std::string& out, const std::string& name, size_t backend,
                    uint64_t value) {
  out += name;
  out += "{backend=\"";
  out += std::to_string(backend);
  out += "\"} ";
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string LoadBalancer::render_stats_prometheus() const {
  std::string out;
  out.reserve(1024);
  append_metric(out, "cops_cluster_sessions_total", "counter", total_.load());
  append_metric(out, "cops_cluster_sessions_active", "gauge", active_.load());
  append_metric(out, "cops_cluster_dropped_clients_total", "counter",
                dropped_.load());
  append_metric(out, "cops_cluster_retries_total", "counter", retries_.load());
  const struct {
    const char* name;
    const char* type;
    std::function<uint64_t(const BackendStats&)> get;
  } kSeries[] = {
      {"cops_cluster_backend_healthy", "gauge",
       [](const BackendStats& s) { return s.healthy ? 1u : 0u; }},
      {"cops_cluster_backend_draining", "gauge",
       [](const BackendStats& s) { return s.draining ? 1u : 0u; }},
      {"cops_cluster_backend_breaker_state", "gauge",
       [](const BackendStats& s) { return static_cast<uint64_t>(s.breaker); }},
      {"cops_cluster_backend_active", "gauge",
       [](const BackendStats& s) { return s.active; }},
      {"cops_cluster_backend_connections_total", "counter",
       [](const BackendStats& s) { return s.connections; }},
      {"cops_cluster_backend_connect_failures_total", "counter",
       [](const BackendStats& s) { return s.connect_failures; }},
      {"cops_cluster_backend_ejections_total", "counter",
       [](const BackendStats& s) { return s.ejections; }},
      {"cops_cluster_backend_retries_total", "counter",
       [](const BackendStats& s) { return s.retries; }},
      {"cops_cluster_backend_probes_total", "counter",
       [](const BackendStats& s) { return s.probes; }},
      {"cops_cluster_backend_probe_failures_total", "counter",
       [](const BackendStats& s) { return s.probe_failures; }},
  };
  for (const auto& series : kSeries) {
    out += "# TYPE ";
    out += series.name;
    out += ' ';
    out += series.type;
    out += '\n';
    for (size_t i = 0; i < backends_.size(); ++i) {
      append_labeled(out, series.name, i, series.get(backends_[i].stats));
    }
  }
  return out;
}

std::string LoadBalancer::render_stats_json() const {
  std::string out = "{";
  out += "\"sessions_total\":" + std::to_string(total_.load());
  out += ",\"sessions_active\":" + std::to_string(active_.load());
  out += ",\"dropped_clients\":" + std::to_string(dropped_.load());
  out += ",\"retries_total\":" + std::to_string(retries_.load());
  out += ",\"backends\":[";
  for (size_t i = 0; i < backends_.size(); ++i) {
    const auto& s = backends_[i].stats;
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(i);
    out += ",\"address\":\"" + backends_[i].addr.to_string() + "\"";
    out += std::string(",\"healthy\":") + (s.healthy ? "true" : "false");
    out += std::string(",\"draining\":") + (s.draining ? "true" : "false");
    out += std::string(",\"breaker\":\"") + to_string(s.breaker) + "\"";
    out += ",\"active\":" + std::to_string(s.active);
    out += ",\"connections\":" + std::to_string(s.connections);
    out += ",\"connect_failures\":" + std::to_string(s.connect_failures);
    out += ",\"ejections\":" + std::to_string(s.ejections);
    out += ",\"retries\":" + std::to_string(s.retries);
    out += ",\"probes\":" + std::to_string(s.probes);
    out += ",\"probe_failures\":" + std::to_string(s.probe_failures);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string LoadBalancer::admin_respond(const std::string& method,
                                        const std::string& path) const {
  (void)method;  // AdminServer already rejected non-GET/HEAD
  if (path == "/healthz") {
    if (stopping_.load()) {
      return nserver::admin_response(503, "Service Unavailable",
                                     "text/plain; charset=utf-8",
                                     "stopping\n");
    }
    return nserver::admin_response(200, "OK", "text/plain; charset=utf-8",
                                   "ok\n");
  }
  if (path == "/stats") {
    return nserver::admin_response(200, "OK",
                                   "text/plain; version=0.0.4; charset=utf-8",
                                   render_stats_prometheus());
  }
  if (path == "/stats.json") {
    return nserver::admin_response(200, "OK", "application/json",
                                   render_stats_json());
  }
  if (path == "/") {
    return nserver::admin_response(200, "OK", "text/plain; charset=utf-8",
                                   "cops-cluster admin\n"
                                   "  /healthz     liveness\n"
                                   "  /stats       Prometheus text format\n"
                                   "  /stats.json  JSON\n");
  }
  return nserver::admin_response(404, "Not Found", "text/plain; charset=utf-8",
                                 "not found\n");
}

}  // namespace cops::cluster
