#include "cluster/load_balancer.hpp"

#include <future>

#include "common/logging.hpp"

namespace cops::cluster {

void LoadBalancer::add_backend(const net::InetAddress& addr) {
  backends_.push_back({addr, {}});
}

Status LoadBalancer::start() {
  if (started_.exchange(true)) {
    return Status::invalid_argument("already started");
  }
  if (backends_.empty()) {
    return Status::invalid_argument("no backends configured");
  }
  connector_ = std::make_unique<net::Connector>(reactor_);
  acceptor_ = std::make_unique<net::Acceptor>(
      reactor_, [this](net::TcpSocket client) { on_accept(std::move(client)); });
  auto addr =
      net::InetAddress::parse(config_.listen_host, config_.listen_port);
  if (!addr.is_ok()) return addr.status();
  auto status = acceptor_->open(addr.value(), config_.listen_backlog);
  if (!status.is_ok()) return status;
  auto bound = acceptor_->local_address();
  if (!bound.is_ok()) return bound.status();
  port_ = bound.value().port();
  reactor_.start_thread("balancer");
  launched_.store(true);
  return Status::ok();
}

void LoadBalancer::stop() {
  // A failed start() never launched the reactor thread; posting to it and
  // waiting would deadlock.
  if (!launched_.load() || stopping_.exchange(true)) return;
  std::promise<void> done;
  auto fut = done.get_future();
  reactor_.post([this, &done] {
    if (acceptor_) acceptor_->close();
    // Abort active relays (copy: abort mutates the map via session_done).
    std::vector<std::shared_ptr<RelaySession>> sessions;
    sessions.reserve(sessions_.size());
    for (auto& [id, session] : sessions_) sessions.push_back(session);
    for (auto& session : sessions) session->abort("balancer-stop");
    done.set_value();
  });
  fut.wait();
  reactor_.stop();
  reactor_.join();
}

size_t LoadBalancer::pick_backend_locked() const {
  if (config_.policy == BalancePolicy::kLeastConnections) {
    size_t best = 0;
    for (size_t i = 1; i < backends_.size(); ++i) {
      if (backends_[i].stats.active < backends_[best].stats.active) best = i;
    }
    return best;
  }
  return round_robin_next_ % backends_.size();
}

void LoadBalancer::on_accept(net::TcpSocket client) {
  const size_t start = pick_backend_locked();
  ++round_robin_next_;
  try_backend(std::make_shared<net::TcpSocket>(std::move(client)), 0, start);
}

void LoadBalancer::try_backend(std::shared_ptr<net::TcpSocket> client,
                               size_t attempt, size_t start_index) {
  if (attempt >= backends_.size()) {
    // Every backend refused: drop the client.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    client->close();
    return;
  }
  const size_t index = (start_index + attempt) % backends_.size();
  auto status = connector_->connect(
      backends_[index].addr,
      [this, client, attempt, start_index,
       index](Result<net::TcpSocket> backend_sock) {
        if (stopping_.load()) return;
        if (!backend_sock.is_ok()) {
          backends_[index].stats.connect_failures += 1;
          try_backend(client, attempt + 1, start_index);
          return;
        }
        const uint64_t id = next_session_id_++;
        auto session = std::make_shared<RelaySession>(
            id, reactor_, std::move(*client),
            std::move(backend_sock).take(),
            [this](uint64_t done_id) { session_done(done_id); },
            config_.relay_buffer_bytes);
        auto start_status = session->start();
        if (!start_status.is_ok()) {
          COPS_WARN("relay start failed: " << start_status.to_string());
          return;
        }
        sessions_.emplace(id, std::move(session));
        session_backend_.emplace(id, index);
        backends_[index].stats.connections += 1;
        backends_[index].stats.active += 1;
        active_.fetch_add(1, std::memory_order_relaxed);
        total_.fetch_add(1, std::memory_order_relaxed);
      });
  if (!status.is_ok()) {
    backends_[index].stats.connect_failures += 1;
    try_backend(client, attempt + 1, start_index);
  }
}

void LoadBalancer::session_done(uint64_t id) {
  auto backend_it = session_backend_.find(id);
  if (backend_it != session_backend_.end()) {
    auto& stats = backends_[backend_it->second].stats;
    if (stats.active > 0) stats.active -= 1;
    session_backend_.erase(backend_it);
  }
  // Deleting the session inside its own callback would free the object
  // mid-call; defer the erase to the next loop turn.
  reactor_.post([this, id] { sessions_.erase(id); });
  if (active_.load() > 0) active_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<BackendStats> LoadBalancer::backend_stats() {
  std::promise<std::vector<BackendStats>> result;
  auto fut = result.get_future();
  reactor_.post([this, &result] {
    std::vector<BackendStats> stats;
    stats.reserve(backends_.size());
    for (const auto& backend : backends_) stats.push_back(backend.stats);
    result.set_value(std::move(stats));
  });
  return fut.get();
}

}  // namespace cops::cluster
