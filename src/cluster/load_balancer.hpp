// LoadBalancer — the control plane of the distributed N-Server front end
// (paper, Section VI future work).
//
// An event-driven TCP load balancer assembled from the same substrate as
// the N-Server itself: a Reactor, an Acceptor for the client side, a
// Connector for the backend side, and RelaySessions as the data plane.
// Connections are spread over the backend pool round-robin or by least
// active sessions; a backend that refuses a connection is skipped (the
// next candidates are tried) and its failure count recorded.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/tcp_relay.hpp"
#include "net/acceptor.hpp"
#include "net/connector.hpp"
#include "net/reactor.hpp"

namespace cops::cluster {

enum class BalancePolicy {
  kRoundRobin,
  kLeastConnections,
};

struct LoadBalancerConfig {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = kernel-assigned
  int listen_backlog = 512;
  BalancePolicy policy = BalancePolicy::kRoundRobin;
  size_t relay_buffer_bytes = 256 * 1024;
};

struct BackendStats {
  uint64_t connections = 0;      // relays ever opened
  uint64_t connect_failures = 0;
  size_t active = 0;             // currently open relays
};

class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalancerConfig config)
      : config_(std::move(config)) {}
  ~LoadBalancer() { stop(); }

  // Must be called before start().
  void add_backend(const net::InetAddress& addr);

  Status start();
  void stop();

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] size_t active_sessions() const { return active_.load(); }
  [[nodiscard]] uint64_t total_sessions() const { return total_.load(); }
  [[nodiscard]] uint64_t dropped_clients() const { return dropped_.load(); }
  // Snapshot of per-backend stats (thread-safe; hops to the reactor).
  [[nodiscard]] std::vector<BackendStats> backend_stats();

 private:
  struct Backend {
    net::InetAddress addr;
    BackendStats stats;
  };

  // All on the reactor thread:
  void on_accept(net::TcpSocket client);
  void try_backend(std::shared_ptr<net::TcpSocket> client, size_t attempt,
                   size_t start_index);
  size_t pick_backend_locked() const;
  void session_done(uint64_t id);

  LoadBalancerConfig config_;
  std::vector<Backend> backends_;
  net::Reactor reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unique_ptr<net::Connector> connector_;
  std::unordered_map<uint64_t, std::shared_ptr<RelaySession>> sessions_;
  std::unordered_map<uint64_t, size_t> session_backend_;
  uint64_t next_session_id_ = 1;
  size_t round_robin_next_ = 0;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> launched_{false};  // reactor thread is running
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace cops::cluster
