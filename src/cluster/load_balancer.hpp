// LoadBalancer — the control plane of the distributed N-Server front end
// (paper, Section VI future work).
//
// An event-driven TCP load balancer assembled from the same substrate as
// the N-Server itself: a Reactor, an Acceptor for the client side, a
// Connector for the backend side, and RelaySessions as the data plane.
// Connections are spread over the backend pool round-robin or by least
// active sessions.
//
// The resilience layer (opt-in via ResilienceConfig::enabled) keeps the
// cluster serving through backend failure:
//
//   * active health checks — a periodic reactor-timer probe per backend
//     (TCP connect, or HTTP GET /healthz against the backend's admin port)
//     with rise/fall thresholds;
//   * passive outlier ejection — a per-backend circuit breaker: closed →
//     open after `breaker_failure_threshold` consecutive connect failures,
//     half-open after an exponential backoff with jitter from the seeded
//     PRNG, closed again once a trial connect succeeds;
//   * bounded retry — a failed backend connect retries the next healthy
//     candidate under `retry_budget` total attempts, each guarded by a
//     per-attempt connect deadline (net::Connector's timeout path);
//   * lifecycle — drain_backend() stops new sessions while active relays
//     finish; a backend returning to service is reintroduced gradually
//     (slow-start weighting over `slow_start_window`).
//
// All of it is observable: per-backend health/breaker/counter state is
// served over the nserver admin machinery (/stats, /stats.json) when
// admin_enabled is set, and every state transition is reported through
// `event_listener` (the deterministic chaos tests feed these lines into
// the simnet trace).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/lb_policy.hpp"
#include "cluster/tcp_relay.hpp"
#include "net/acceptor.hpp"
#include "net/connector.hpp"
#include "net/reactor.hpp"

namespace cops::nserver {
class AdminServer;
}  // namespace cops::nserver

namespace cops::cluster {

enum class BalancePolicy {
  kRoundRobin,
  kLeastConnections,
  // Power of two choices: two seeded-PRNG candidates, keep the less loaded
  // (near-least-loaded balance without global-argmin herding).
  kPowerOfTwoChoices,
  // Consistent-hash affinity: a per-admission key (client IP here; request
  // path in the L7 proxy) owns a stable backend via lb_policy's HashRing.
  kRingHash,
};

[[nodiscard]] const char* to_string(BalancePolicy policy);

enum class BreakerState {
  kClosed,    // healthy: requests flow
  kOpen,      // ejected: no requests until the backoff expires
  kHalfOpen,  // probation: one trial connect decides open vs closed
};

[[nodiscard]] const char* to_string(BreakerState state);

// Tuning for the cluster resilience layer; `enabled = false` preserves the
// original skip-on-refusal behaviour exactly.
struct ResilienceConfig {
  bool enabled = false;

  // --- active health checking (off unless health_checks) -----------------
  bool health_checks = false;
  // Probe via HTTP GET /healthz (against the backend's health address,
  // typically its admin port) instead of a bare TCP connect.
  bool health_http = false;
  Duration health_interval = std::chrono::seconds(2);
  Duration health_timeout = std::chrono::milliseconds(500);
  int health_rise = 2;  // consecutive successes to mark a backend up
  int health_fall = 2;  // consecutive failures to mark it down

  // --- circuit breaker ----------------------------------------------------
  int breaker_failure_threshold = 3;  // consecutive connect failures → open
  Duration breaker_base_backoff = std::chrono::milliseconds(500);
  Duration breaker_max_backoff = std::chrono::seconds(30);
  double breaker_jitter = 0.2;  // ± fraction of the backoff, seeded PRNG

  // --- bounded retry --------------------------------------------------------
  size_t retry_budget = 3;  // max connect attempts per client session
  Duration connect_timeout = std::chrono::seconds(1);  // 0 = no deadline

  // --- slow start -----------------------------------------------------------
  // After recovery a backend's admission weight ramps linearly from 0 to 1
  // over this window (0 = disabled).
  Duration slow_start_window = std::chrono::seconds(0);

  uint64_t seed = 0x5eedu;  // jitter + slow-start PRNG
};

struct LoadBalancerConfig {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = kernel-assigned
  int listen_backlog = 512;
  BalancePolicy policy = BalancePolicy::kRoundRobin;
  size_t relay_buffer_bytes = 256 * 1024;
  ResilienceConfig resilience;
  // Admin/stats endpoint (nserver machinery) on the balancer's reactor.
  bool admin_enabled = false;
  std::string admin_host = "127.0.0.1";
  uint16_t admin_port = 0;  // 0 = kernel-assigned
  // Observability hook for resilience state transitions ("breaker-open
  // backend=1", "health-down backend=2", ...).  Runs on the reactor thread;
  // must not block.
  std::function<void(const std::string&)> event_listener;
};

struct BackendStats {
  uint64_t connections = 0;  // relays ever opened
  uint64_t connect_failures = 0;
  size_t active = 0;  // currently open relays
  // --- resilience ---------------------------------------------------------
  bool healthy = true;      // active-health verdict (true when checks off)
  bool draining = false;    // drain_backend(): no new sessions
  BreakerState breaker = BreakerState::kClosed;
  uint64_t ejections = 0;       // closed → open transitions
  uint64_t retries = 0;         // failures here that were retried elsewhere
  uint64_t probes = 0;          // health probes sent
  uint64_t probe_failures = 0;  // health probes failed
};

class LoadBalancer {
 public:
  explicit LoadBalancer(LoadBalancerConfig config);
  ~LoadBalancer();

  // Must be called before start().  `health_addr` is where active health
  // probes go (e.g. the backend's admin endpoint); defaults to `addr`.
  void add_backend(const net::InetAddress& addr);
  void add_backend(const net::InetAddress& addr,
                   const net::InetAddress& health_addr);

  Status start();
  void stop();

  // Lifecycle: stop (or resume) routing new sessions to backend `index`
  // while active relays finish.  Thread-safe; applied on the reactor.
  void drain_backend(size_t index, bool draining = true);

  // Removes backend `index` from the set entirely (a decommission, not a
  // drain): in-flight relays to it keep running, but no new admission can
  // pick it and its stats slot disappears.  Selection state is re-anchored
  // against the shrunk set — the round-robin cursor keeps free-running and
  // is reduced modulo the live count at pick time (see lb_policy.hpp), the
  // hash ring is rebuilt, and admissions whose `tried` vector was sized
  // before the shrink are index-guarded.  Thread-safe; applied on the
  // reactor.
  void remove_backend(size_t index);

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] uint16_t admin_port() const { return admin_port_; }
  [[nodiscard]] size_t active_sessions() const { return active_.load(); }
  [[nodiscard]] uint64_t total_sessions() const { return total_.load(); }
  [[nodiscard]] uint64_t dropped_clients() const { return dropped_.load(); }
  [[nodiscard]] uint64_t total_retries() const { return retries_.load(); }
  // Snapshot of per-backend stats (thread-safe; hops to the reactor).
  [[nodiscard]] std::vector<BackendStats> backend_stats();

 private:
  friend class HealthProbe;

  struct Backend {
    net::InetAddress addr;
    net::InetAddress health_addr;
    BackendStats stats;
    // Breaker + health runtime (reactor thread only).
    int consecutive_failures = 0;
    int probe_success_streak = 0;
    int probe_failure_streak = 0;
    int backoff_exponent = 0;
    TimePoint open_until{};
    bool half_open_inflight = false;  // one probation connect at a time
    bool probe_inflight = false;
    TimePoint recovered_at{};  // slow-start ramp origin
  };

  // One client admission: which backends were tried, under what budget.
  // `tried` is sized at accept time; the backend set may shrink while the
  // admission is in flight, so every read goes through was_tried() and the
  // write in attempt_next() resizes on demand.
  struct Admission {
    std::shared_ptr<net::TcpSocket> client;
    std::vector<bool> tried;
    size_t attempts = 0;
    std::string affinity_key;  // ring-hash input (client IP)

    [[nodiscard]] bool was_tried(size_t index) const {
      return index < tried.size() && tried[index];
    }
  };

  // All on the reactor thread:
  void on_accept(net::TcpSocket client);
  // Launches the next connect attempt; returns false when the admission is
  // out of candidates or budget (client dropped).
  bool attempt_next(const std::shared_ptr<Admission>& admission);
  [[nodiscard]] int choose_candidate(const Admission& admission);
  // Candidate visit order for the active policy (all live backends).
  [[nodiscard]] std::vector<size_t> candidate_order(const Admission& admission);
  [[nodiscard]] bool backend_eligible(size_t index);
  [[nodiscard]] bool passes_slow_start(size_t index);
  void note_backend_failure(size_t index);
  void note_backend_success(size_t index);
  void open_breaker(size_t index);
  [[nodiscard]] Duration breaker_backoff(int exponent);
  void session_done(uint64_t id);
  void emit(const std::string& event);
  // Active health checking.
  void schedule_health_tick();
  void health_tick();
  void start_probe(size_t index);
  void finish_probe(size_t index, bool ok);
  // Admin endpoint rendering.
  [[nodiscard]] std::string admin_respond(const std::string& method,
                                          const std::string& path) const;
  [[nodiscard]] std::string render_stats_prometheus() const;
  [[nodiscard]] std::string render_stats_json() const;

  LoadBalancerConfig config_;
  std::vector<Backend> backends_;
  net::Reactor reactor_;
  std::unique_ptr<net::Acceptor> acceptor_;
  std::unique_ptr<net::Connector> connector_;
  std::unique_ptr<nserver::AdminServer> admin_;
  std::unordered_map<uint64_t, std::shared_ptr<RelaySession>> sessions_;
  std::unordered_map<uint64_t, size_t> session_backend_;
  std::unordered_map<size_t, std::shared_ptr<class HealthProbe>> probes_;
  std::mt19937_64 rng_;  // reactor thread only
  HashRing ring_;        // kRingHash: rebuilt when the backend set changes
  uint64_t next_session_id_ = 1;
  // Free-running admission counter; reduced modulo the *live* backend count
  // at selection time (pick_round_robin), never stored reduced — so a
  // backend-set shrink cannot leave it pointing past the end.
  uint64_t round_robin_next_ = 0;
  uint64_t health_timer_ = 0;
  bool health_timer_armed_ = false;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> launched_{false};  // reactor thread is running
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace cops::cluster
