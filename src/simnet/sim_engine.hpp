// SimEngine — a deterministic in-process network simulator.
//
// The engine implements net::SimBackend, the syscall-level seam under
// TcpSocket/TcpListener/Poller, plus the simclock seam under cops::now().
// While installed, the *full* generated server stack (Acceptor, Reactor,
// EventProcessor, Connection, hooks) runs unmodified on top of simulated
// channels and a virtual clock:
//
//   * no real sockets, no real sleeps — a 60-second idle-timeout scenario
//     finishes in milliseconds of wall time;
//   * every byte delivery, fault injection, and clock advance is driven by
//     one seeded PRNG and a time-ordered script, so a given seed replays
//     bit-identically (the `trace()` of two runs compares equal);
//   * a FaultPlan injects partial reads/writes, EINTR/EAGAIN storms,
//     RST-on-write, slow-peer stalls, and accept bursts *underneath* the
//     production retry logic, which is exactly the code being tested.
//
// Determinism contract: configure each server with one dispatcher and no
// separate processor pool (see deterministic_options() in sim_harness.hpp).
// Everything then executes on reactor threads, which enter the engine
// through Poller::wait; scripted client actions and deliveries run inside
// that call.  Several reactors (e.g. a load balancer plus N backend
// servers) may share one engine: sim_poll_wait parks every reactor and a
// cooperative scheduler grants exactly one at a time, in registration
// order, so multi-process cluster scenarios replay bit-identically too.
// The test thread only sets up the script, calls run(), and inspects
// results afterwards.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/transport.hpp"
#include "simnet/fault_plan.hpp"

namespace cops::simnet {

class SimEngine;

// The client endpoint of a simulated TCP connection.  All methods must be
// called on the sim thread: from script callbacks, from on_data/on_close,
// or from the test thread before run() / after run() returns.
class SimClient {
 public:
  // Bytes the server sent us (invoked during delivery, sim thread).
  std::function<void(std::string_view)> on_data;
  // The server closed (or reset) its side.
  std::function<void()> on_close;

  // Connects to a simulated listener; fails the engine run if the port is
  // not listening (accept-queue overflow behaves like a SYN drop instead).
  void connect(uint16_t port);
  void send(std::string bytes);
  void shutdown_write();  // FIN: the server reads EOF after the drain
  void reset();           // RST: server I/O sees ECONNRESET
  void close();           // orderly close of our side
  // Slow-peer stall: while paused the engine delivers nothing to this
  // client, so server writes back up against the channel capacity.
  void pause_reading(bool paused);

  [[nodiscard]] bool connected() const { return channel_ >= 0 && !closed_; }
  [[nodiscard]] bool peer_closed() const { return peer_closed_; }
  [[nodiscard]] const std::string& received() const { return received_; }

 private:
  friend class SimEngine;
  SimEngine* engine_ = nullptr;
  int channel_ = -1;
  bool closed_ = false;
  bool peer_closed_ = false;
  bool paused_ = false;
  std::string received_;  // all bytes ever delivered (also fed to on_data)
};

class SimEngine : public net::SimBackend {
 public:
  explicit SimEngine(uint64_t seed, FaultPlan plan = FaultPlan::none());
  ~SimEngine() override;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // ---- script (test thread, before run()) -------------------------------
  // Schedules `fn` at virtual time `at` (relative to the engine epoch).
  void at(Duration when, std::function<void()> fn);
  // Creates an inert client; connect it from a script callback.
  SimClient* new_client();

  // ---- per-endpoint fault targeting (scripts or test thread) -------------
  // Kills one backend at the network level: every established channel to
  // `port` is reset (both ends see ECONNRESET) and new connects are refused
  // until revive_port().  The listener process keeps running — exactly a
  // machine dropping off the network, which is the failure the cluster
  // resilience layer must survive without stopping the server object (a
  // Server::stop() mid-run would join threads parked inside this engine).
  void kill_port(uint16_t port);
  void revive_port(uint16_t port);
  // Arms a byte-count trigger for mid-body kills: after the server side of
  // channels accepted on `port` has written `bytes` more bytes, the port is
  // killed exactly as by kill_port() — every channel reset, connects
  // refused until revive_port().  The write that crosses the threshold
  // still reports success (the RST "arrives" just after), so a relaying
  // proxy observes a stream truncated mid-body, which is the case the
  // truncated-200 differential gate exists for.
  void kill_port_after_bytes(uint16_t port, uint64_t bytes);
  // SYN-blackhole: connects to `port` return an fd but never become
  // established (never writable), which is what exercises the Connector's
  // connect deadline rather than its refusal path.
  void stall_connects(uint16_t port, bool stalled);

  // ---- execution (test thread) ------------------------------------------
  // Unpauses the simulation and blocks until it goes quiescent (script
  // drained and every client closed) or `virtual_deadline` of simulated
  // time passes.  Returns true when quiescent, false on deadline.
  bool run(Duration virtual_deadline);
  // Fires due script events and deliveries inline (for harness-less unit
  // tests that drive sim fds directly from the test thread).
  void pump();
  // Advances the virtual clock directly (unit tests).
  void advance(Duration delta);

  // ---- results ------------------------------------------------------------
  [[nodiscard]] uint64_t seed() const { return seed_; }
  // The deterministic event trace: one line per connect/accept/IO/fault.
  [[nodiscard]] std::vector<std::string> trace() const;
  [[nodiscard]] std::string trace_text() const;
  // Scenario failures recorded by model checkers via fail().
  [[nodiscard]] std::vector<std::string> failures() const;
  void fail(std::string message);
  void record(std::string line);

  // ---- net::SimBackend ----------------------------------------------------
  net::SysResult sim_read(int fd, void* buf, size_t len) override;
  net::SysResult sim_write(int fd, const void* buf, size_t len) override;
  net::SysResult sim_writev(int fd, const struct iovec* iov,
                            int iovcnt) override;
  net::SysResult sim_sendfile(int out_fd, int in_fd, uint64_t offset,
                              size_t count) override;
  net::SysResult sim_accept(int listen_fd) override;
  void sim_shutdown_write(int fd) override;
  void sim_close(int fd) override;
  Result<net::InetAddress> sim_local_address(int fd) override;
  Result<net::InetAddress> sim_peer_address(int fd) override;
  Result<int> sim_listen(const net::InetAddress& addr, int backlog,
                         bool reuseport) override;
  Result<int> sim_connect(const net::InetAddress& peer) override;
  Status sim_poll_add(const void* poller, int fd, uint32_t interest) override;
  Status sim_poll_modify(const void* poller, int fd,
                         uint32_t interest) override;
  Status sim_poll_remove(const void* poller, int fd) override;
  size_t sim_poll_wait(const void* poller, std::vector<net::ReadyFd>& out,
                       int timeout_ms) override;
  void sim_notify(const void* poller) override;

 private:
  friend class SimClient;

  struct Pipe {
    std::string buf;     // bytes in flight
    bool eof = false;    // writer sent FIN
    bool reset = false;  // RST: reader sees ECONNRESET
  };

  struct Channel {
    int id = -1;
    Pipe c2s;  // client/initiator -> server
    Pipe s2c;  // server -> client/initiator
    int server_fd = -1;  // -1 until accepted
    uint16_t listen_port = 0;
    uint16_t client_port = 0;
    // Exactly one of these identifies the active end: a scripted SimClient,
    // or an in-process initiator fd from sim_connect (client == nullptr).
    SimClient* client = nullptr;
    int initiator_fd = -1;
    bool initiator_closed = false;
    // False only for stalled connects (SYN blackhole): the initiator side
    // never becomes writable, so connect deadlines fire.
    bool established = true;
    bool server_closed = false;
    bool client_notified_close = false;
  };

  // One listening port.  Normally a single member; with SO_REUSEPORT every
  // shard's listener joins the same port as another member and incoming
  // connections are spread across open members by deterministic round-robin
  // (the stand-in for the kernel's 4-tuple hash).  Each member owns its own
  // accept queue, like a real per-socket backlog.
  struct Listener {
    uint16_t port = 0;
    int backlog = 0;          // per-member accept-queue bound
    bool killed = false;      // kill_port(): refuse connects until revived
    bool reuseport = false;   // every member was opened with SO_REUSEPORT
    struct Member {
      int fd = -1;
      bool closed = false;
      std::deque<int> pending;  // channel ids awaiting accept on this fd
    };
    std::vector<Member> members;
    size_t rr_next = 0;  // round-robin cursor over open members

    [[nodiscard]] bool all_closed() const {
      for (const auto& m : members) {
        if (!m.closed) return false;
      }
      return true;
    }
  };

  struct FdEntry {
    bool is_listener = false;
    bool initiator = false;  // active end of an internal sim_connect channel
    int channel = -1;   // socket fds
    uint16_t port = 0;  // listener fds
  };

  // One registered poller (reactor thread) parked in sim_poll_wait.
  struct PollerSlot {
    bool waiting = false;
    bool granted = false;
    bool notified = false;    // sim_notify pending: grant at current instant
    int64_t deadline_ns = 0;  // virtual instant its poll timeout expires
  };

  using Lock = std::unique_lock<std::recursive_mutex>;

  [[nodiscard]] int64_t now_ns_locked() const;
  void advance_to_locked(int64_t target_ns);
  bool chance_locked(double probability);
  void fire_due_locked();
  void deliver_locked();
  void collect_ready_locked(const void* poller,
                            std::vector<net::ReadyFd>& out);
  [[nodiscard]] bool has_ready_locked(const void* poller);
  void check_done_locked();
  void record_locked(std::string line);
  // Shared write-fault machinery: sim_write / sim_writev / sim_sendfile all
  // funnel their gathered bytes through here, so one fault plan exercises
  // every send path identically (RST, EPIPE, EINTR, capacity EAGAIN, short
  // writes — including short writes across iovec boundaries).
  net::SysResult sim_write_gather_locked(int fd, const struct iovec* iov,
                                         int iovcnt, const char* op);
  Channel* channel_of_fd_locked(int fd);
  // Routing for a new connection to `port`: picks the accept-queue member.
  // listener == nullptr means refused (not listening / killed / all
  // members closed); member == nullptr with a listener means the chosen
  // member's queue is full (SYN drop).
  struct ConnectRoute {
    Listener* listener = nullptr;
    Listener::Member* member = nullptr;
  };
  ConnectRoute route_connect_locked(uint16_t port);
  void close_server_side_locked(Channel& ch);
  void reset_channel_locked(Channel& ch);
  void kill_port_locked(uint16_t port);
  void note_poller_locked(const void* poller);
  // Grants exactly one parked poller (by rotation over registration order)
  // once every known poller is parked and no poller is active; advances the
  // virtual clock when nothing is ready.  The single-grant discipline is
  // what serialises multiple reactor threads deterministically.
  void schedule_locked();
  void halt_locked();  // running_ = false + wake everything

  const uint64_t seed_;
  const FaultPlan plan_;
  std::mt19937_64 rng_;

  mutable std::recursive_mutex mutex_;
  std::condition_variable_any cv_run_;    // pre-run pollers idle here
  std::condition_variable_any cv_done_;   // run() waits here
  std::condition_variable_any cv_sched_;  // parked pollers await a grant

  bool running_ = false;
  bool done_ = false;
  bool timed_out_ = false;
  bool shutdown_ = false;
  int64_t deadline_ns_ = 0;

  int next_fd_ = net::kSimFdBase;
  int next_channel_ = 0;
  uint16_t next_auto_port_ = 20000;
  uint16_t next_client_port_ = 40000;
  uint64_t next_script_seq_ = 0;

  std::map<int, FdEntry> fds_;
  std::map<int, std::unique_ptr<Channel>> channels_;
  std::map<uint16_t, Listener> listeners_;  // by port
  std::set<uint16_t> stalled_ports_;
  // port -> remaining server-written bytes until the armed kill fires.
  std::map<uint16_t, uint64_t> kill_after_bytes_;
  std::vector<std::unique_ptr<SimClient>> clients_;
  // (virtual ns, insertion seq) -> callback; fired in order.
  std::multimap<std::pair<int64_t, uint64_t>, std::function<void()>> script_;
  // poller instance -> fd -> interest (std::map: deterministic order).
  std::map<const void*, std::map<int, uint32_t>> pollers_;

  // Cooperative multi-reactor scheduling.  poller_order_ is registration
  // order (deterministic construction order of the servers under test) —
  // never iterate pollers_ for scheduling decisions; its key order is heap
  // addresses.  token_holder_ is the one poller allowed to run event
  // handlers right now; it relinquishes the token by re-entering
  // sim_poll_wait.
  std::vector<const void*> poller_order_;
  std::map<const void*, PollerSlot> slots_;
  size_t rr_next_ = 0;
  const void* token_holder_ = nullptr;

  std::vector<std::string> trace_;
  std::vector<std::string> failures_;
};

}  // namespace cops::simnet
