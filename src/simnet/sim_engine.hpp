// SimEngine — a deterministic in-process network simulator.
//
// The engine implements net::SimBackend, the syscall-level seam under
// TcpSocket/TcpListener/Poller, plus the simclock seam under cops::now().
// While installed, the *full* generated server stack (Acceptor, Reactor,
// EventProcessor, Connection, hooks) runs unmodified on top of simulated
// channels and a virtual clock:
//
//   * no real sockets, no real sleeps — a 60-second idle-timeout scenario
//     finishes in milliseconds of wall time;
//   * every byte delivery, fault injection, and clock advance is driven by
//     one seeded PRNG and a time-ordered script, so a given seed replays
//     bit-identically (the `trace()` of two runs compares equal);
//   * a FaultPlan injects partial reads/writes, EINTR/EAGAIN storms,
//     RST-on-write, slow-peer stalls, and accept bursts *underneath* the
//     production retry logic, which is exactly the code being tested.
//
// Determinism contract: configure the server with one dispatcher and no
// separate processor pool (see deterministic_options() in sim_harness.hpp).
// Everything then executes on the single reactor thread, which enters the
// engine through Poller::wait; scripted client actions and deliveries run
// inside that call.  The test thread only sets up the script, calls run(),
// and inspects results afterwards.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/transport.hpp"
#include "simnet/fault_plan.hpp"

namespace cops::simnet {

class SimEngine;

// The client endpoint of a simulated TCP connection.  All methods must be
// called on the sim thread: from script callbacks, from on_data/on_close,
// or from the test thread before run() / after run() returns.
class SimClient {
 public:
  // Bytes the server sent us (invoked during delivery, sim thread).
  std::function<void(std::string_view)> on_data;
  // The server closed (or reset) its side.
  std::function<void()> on_close;

  // Connects to a simulated listener; fails the engine run if the port is
  // not listening (accept-queue overflow behaves like a SYN drop instead).
  void connect(uint16_t port);
  void send(std::string bytes);
  void shutdown_write();  // FIN: the server reads EOF after the drain
  void reset();           // RST: server I/O sees ECONNRESET
  void close();           // orderly close of our side
  // Slow-peer stall: while paused the engine delivers nothing to this
  // client, so server writes back up against the channel capacity.
  void pause_reading(bool paused);

  [[nodiscard]] bool connected() const { return channel_ >= 0 && !closed_; }
  [[nodiscard]] bool peer_closed() const { return peer_closed_; }
  [[nodiscard]] const std::string& received() const { return received_; }

 private:
  friend class SimEngine;
  SimEngine* engine_ = nullptr;
  int channel_ = -1;
  bool closed_ = false;
  bool peer_closed_ = false;
  bool paused_ = false;
  std::string received_;  // all bytes ever delivered (also fed to on_data)
};

class SimEngine : public net::SimBackend {
 public:
  explicit SimEngine(uint64_t seed, FaultPlan plan = FaultPlan::none());
  ~SimEngine() override;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // ---- script (test thread, before run()) -------------------------------
  // Schedules `fn` at virtual time `at` (relative to the engine epoch).
  void at(Duration when, std::function<void()> fn);
  // Creates an inert client; connect it from a script callback.
  SimClient* new_client();

  // ---- execution (test thread) ------------------------------------------
  // Unpauses the simulation and blocks until it goes quiescent (script
  // drained and every client closed) or `virtual_deadline` of simulated
  // time passes.  Returns true when quiescent, false on deadline.
  bool run(Duration virtual_deadline);
  // Fires due script events and deliveries inline (for harness-less unit
  // tests that drive sim fds directly from the test thread).
  void pump();
  // Advances the virtual clock directly (unit tests).
  void advance(Duration delta);

  // ---- results ------------------------------------------------------------
  [[nodiscard]] uint64_t seed() const { return seed_; }
  // The deterministic event trace: one line per connect/accept/IO/fault.
  [[nodiscard]] std::vector<std::string> trace() const;
  [[nodiscard]] std::string trace_text() const;
  // Scenario failures recorded by model checkers via fail().
  [[nodiscard]] std::vector<std::string> failures() const;
  void fail(std::string message);
  void record(std::string line);

  // ---- net::SimBackend ----------------------------------------------------
  net::SysResult sim_read(int fd, void* buf, size_t len) override;
  net::SysResult sim_write(int fd, const void* buf, size_t len) override;
  net::SysResult sim_accept(int listen_fd) override;
  void sim_shutdown_write(int fd) override;
  void sim_close(int fd) override;
  Result<net::InetAddress> sim_local_address(int fd) override;
  Result<net::InetAddress> sim_peer_address(int fd) override;
  Result<int> sim_listen(const net::InetAddress& addr, int backlog) override;
  Result<int> sim_connect(const net::InetAddress& peer) override;
  Status sim_poll_add(const void* poller, int fd, uint32_t interest) override;
  Status sim_poll_modify(const void* poller, int fd,
                         uint32_t interest) override;
  Status sim_poll_remove(const void* poller, int fd) override;
  size_t sim_poll_wait(const void* poller, std::vector<net::ReadyFd>& out,
                       int timeout_ms) override;

 private:
  friend class SimClient;

  struct Pipe {
    std::string buf;     // bytes in flight
    bool eof = false;    // writer sent FIN
    bool reset = false;  // RST: reader sees ECONNRESET
  };

  struct Channel {
    int id = -1;
    Pipe c2s;  // client -> server
    Pipe s2c;  // server -> client
    int server_fd = -1;  // -1 until accepted
    uint16_t listen_port = 0;
    uint16_t client_port = 0;
    SimClient* client = nullptr;
    bool server_closed = false;
    bool client_notified_close = false;
  };

  struct Listener {
    int fd = -1;
    uint16_t port = 0;
    int backlog = 0;
    bool closed = false;
    std::deque<int> pending;  // channel ids awaiting accept
  };

  struct FdEntry {
    bool is_listener = false;
    int channel = -1;   // server-socket fds
    uint16_t port = 0;  // listener fds
  };

  using Lock = std::unique_lock<std::recursive_mutex>;

  [[nodiscard]] int64_t now_ns_locked() const;
  void advance_to_locked(int64_t target_ns);
  bool chance_locked(double probability);
  void fire_due_locked();
  void deliver_locked();
  void collect_ready_locked(const void* poller,
                            std::vector<net::ReadyFd>& out);
  void check_done_locked();
  void record_locked(std::string line);
  Channel* channel_of_fd_locked(int fd);
  void close_server_side_locked(Channel& ch);

  const uint64_t seed_;
  const FaultPlan plan_;
  std::mt19937_64 rng_;

  mutable std::recursive_mutex mutex_;
  std::condition_variable_any cv_run_;   // paused pollers wait here
  std::condition_variable_any cv_done_;  // run() waits here

  bool running_ = false;
  bool done_ = false;
  bool timed_out_ = false;
  bool shutdown_ = false;
  int64_t deadline_ns_ = 0;

  int next_fd_ = net::kSimFdBase;
  int next_channel_ = 0;
  uint16_t next_auto_port_ = 20000;
  uint16_t next_client_port_ = 40000;
  uint64_t next_script_seq_ = 0;

  std::map<int, FdEntry> fds_;
  std::map<int, std::unique_ptr<Channel>> channels_;
  std::map<uint16_t, Listener> listeners_;  // by port
  std::vector<std::unique_ptr<SimClient>> clients_;
  // (virtual ns, insertion seq) -> callback; fired in order.
  std::multimap<std::pair<int64_t, uint64_t>, std::function<void()>> script_;
  // poller instance -> fd -> interest (std::map: deterministic order).
  std::map<const void*, std::map<int, uint32_t>> pollers_;

  std::vector<std::string> trace_;
  std::vector<std::string> failures_;
};

}  // namespace cops::simnet
