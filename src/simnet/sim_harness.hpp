// Harness glue for running generated servers under the SimEngine.
#pragma once

#include "nserver/options.hpp"
#include "simnet/fault_plan.hpp"
#include "simnet/sim_engine.hpp"

namespace cops::simnet {

// Server options that confine the whole pipeline to the single reactor
// thread, which is what makes a simulated run deterministic:
//
//   * one dispatcher, no separate processor pool — events run inline on
//     the reactor thread (classic SPED);
//   * synchronous completion — no file-I/O worker pool injecting
//     nondeterministically-ordered completion events;
//   * static thread allocation — no ProcessorController resizing.
//
// Apply these on top of an application's defaults, e.g.:
//
//   auto opts = http::CopsHttpServer::default_options();
//   simnet::make_deterministic(opts);
inline void make_deterministic(nserver::ServerOptions& options) {
  options.dispatcher_threads = 1;
  options.separate_processor_pool = false;
  options.completion = nserver::CompletionMode::kSynchronous;
  options.allow_blocking_dispatcher = true;  // SPED: see options.hpp
  options.thread_allocation = nserver::ThreadAllocation::kStatic;
  options.logging = false;
  options.stats_export = nserver::StatsExport::kNone;
  options.listen_port = 0;  // the engine assigns deterministic ports
}

[[nodiscard]] inline nserver::ServerOptions deterministic_options() {
  nserver::ServerOptions options;
  make_deterministic(options);
  return options;
}

}  // namespace cops::simnet
