#include "simnet/sim_engine.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace cops::simnet {
namespace {

// Virtual epoch: 1s, so TimePoint{0} never collides with live deadlines.
constexpr int64_t kEpochNs = 1'000'000'000;

// Wall-clock safety net for run(): a simulation that stops making virtual
// progress (e.g. no poller is driving the engine) must not hang the test
// binary forever.
constexpr std::chrono::seconds kRunWallTimeout{120};

}  // namespace

// ---- SimClient --------------------------------------------------------------

void SimClient::connect(uint16_t port) {
  SimEngine::Lock lock(engine_->mutex_);
  auto route = engine_->route_connect_locked(port);
  if (route.listener == nullptr) {
    engine_->record_locked("connect-refused port=" + std::to_string(port));
    engine_->failures_.push_back("connect refused: port " +
                                 std::to_string(port) + " not listening");
    closed_ = true;
    return;
  }
  if (route.member == nullptr) {
    // Accept-queue overflow: the SYN is dropped, the client never connects.
    engine_->record_locked("syn-drop port=" + std::to_string(port));
    return;
  }
  auto channel = std::make_unique<SimEngine::Channel>();
  channel->id = engine_->next_channel_++;
  channel->listen_port = port;
  channel->client_port = engine_->next_client_port_++;
  channel->client = this;
  channel_ = channel->id;
  route.member->pending.push_back(channel->id);
  engine_->record_locked("connect ch=" + std::to_string(channel->id) +
                         " port=" + std::to_string(port));
  engine_->channels_.emplace(channel->id, std::move(channel));
}

void SimClient::send(std::string bytes) {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ < 0 || closed_) {
    engine_->failures_.push_back("send on unconnected client");
    return;
  }
  auto& ch = *engine_->channels_.at(channel_);
  engine_->record_locked("client-send ch=" + std::to_string(channel_) +
                         " n=" + std::to_string(bytes.size()));
  ch.c2s.buf += bytes;
}

void SimClient::shutdown_write() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ < 0) return;
  auto& ch = *engine_->channels_.at(channel_);
  ch.c2s.eof = true;
  engine_->record_locked("client-fin ch=" + std::to_string(channel_));
}

void SimClient::reset() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ >= 0) {
    auto& ch = *engine_->channels_.at(channel_);
    ch.c2s.reset = true;
    ch.s2c.reset = true;
    ch.s2c.buf.clear();  // RST discards undelivered data
    engine_->record_locked("client-rst ch=" + std::to_string(channel_));
  }
  closed_ = true;
}

void SimClient::close() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ >= 0 && !closed_) {
    auto& ch = *engine_->channels_.at(channel_);
    ch.c2s.eof = true;
    engine_->record_locked("client-close ch=" + std::to_string(channel_));
  }
  closed_ = true;
}

void SimClient::pause_reading(bool paused) {
  SimEngine::Lock lock(engine_->mutex_);
  paused_ = paused;
  engine_->record_locked(std::string(paused ? "client-pause" : "client-resume") +
                         " ch=" + std::to_string(channel_));
}

// ---- SimEngine --------------------------------------------------------------

SimEngine::SimEngine(uint64_t seed, FaultPlan plan)
    : seed_(seed), plan_(plan), rng_(seed) {
  simclock::install(kEpochNs);
  net::install_sim_backend(this);
}

SimEngine::~SimEngine() {
  {
    Lock lock(mutex_);
    shutdown_ = true;
    running_ = false;
  }
  cv_run_.notify_all();
  cv_done_.notify_all();
  cv_sched_.notify_all();
  net::uninstall_sim_backend();
  simclock::uninstall();
}

int64_t SimEngine::now_ns_locked() const { return simclock::now_ns(); }

void SimEngine::record_locked(std::string line) {
  std::ostringstream out;
  out << "t=" << (now_ns_locked() - kEpochNs) / 1000 << "us " << line;
  trace_.push_back(out.str());
}

void SimEngine::record(std::string line) {
  Lock lock(mutex_);
  record_locked(std::move(line));
}

void SimEngine::fail(std::string message) {
  Lock lock(mutex_);
  record_locked("FAIL " + message);
  failures_.push_back(std::move(message));
}

std::vector<std::string> SimEngine::trace() const {
  Lock lock(mutex_);
  return trace_;
}

std::string SimEngine::trace_text() const {
  Lock lock(mutex_);
  std::string out;
  for (const auto& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> SimEngine::failures() const {
  Lock lock(mutex_);
  return failures_;
}

bool SimEngine::chance_locked(double probability) {
  if (probability <= 0.0) return false;
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_) < probability;
}

// ---- script & execution -----------------------------------------------------

void SimEngine::at(Duration when, std::function<void()> fn) {
  Lock lock(mutex_);
  const int64_t t =
      kEpochNs +
      std::chrono::duration_cast<std::chrono::nanoseconds>(when).count();
  script_.emplace(std::make_pair(t, next_script_seq_++), std::move(fn));
}

SimClient* SimEngine::new_client() {
  Lock lock(mutex_);
  auto client = std::make_unique<SimClient>();
  client->engine_ = this;
  clients_.push_back(std::move(client));
  return clients_.back().get();
}

void SimEngine::fire_due_locked() {
  while (!script_.empty() && script_.begin()->first.first <= now_ns_locked()) {
    auto node = script_.extract(script_.begin());
    node.mapped()();
  }
}

void SimEngine::deliver_locked() {
  for (auto& [id, ch_ptr] : channels_) {
    Channel& ch = *ch_ptr;
    SimClient* client = ch.client;
    if (client == nullptr || client->closed_ || client->paused_) continue;
    if (!ch.s2c.buf.empty() && !ch.s2c.reset) {
      std::string bytes;
      bytes.swap(ch.s2c.buf);
      record_locked("deliver ch=" + std::to_string(id) +
                    " n=" + std::to_string(bytes.size()));
      client->received_ += bytes;
      if (client->on_data) client->on_data(bytes);
    }
    if ((ch.s2c.eof || ch.s2c.reset) && ch.s2c.buf.empty() &&
        !ch.client_notified_close) {
      ch.client_notified_close = true;
      client->peer_closed_ = true;
      record_locked("client-eof ch=" + std::to_string(id));
      if (client->on_close) client->on_close();
    }
  }
}

void SimEngine::halt_locked() {
  running_ = false;
  cv_done_.notify_all();
  cv_sched_.notify_all();  // wake parked pollers so they can notice
}

void SimEngine::check_done_locked() {
  if (!running_ || done_ || timed_out_) return;
  if (!script_.empty()) return;
  for (const auto& client : clients_) {
    if (client->channel_ >= 0 && !client->closed_ && !client->peer_closed_) {
      return;
    }
  }
  done_ = true;
  halt_locked();
}

void SimEngine::advance_to_locked(int64_t target_ns) {
  if (target_ns <= now_ns_locked()) return;
  simclock::set_ns(target_ns);
  if (running_ && !done_ && target_ns >= deadline_ns_) {
    timed_out_ = true;
    halt_locked();
  }
}

bool SimEngine::run(Duration virtual_deadline) {
  Lock lock(mutex_);
  done_ = false;
  timed_out_ = false;
  deadline_ns_ =
      now_ns_locked() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(virtual_deadline)
          .count();
  running_ = true;
  cv_run_.notify_all();
  const bool finished = cv_done_.wait_for(
      lock, kRunWallTimeout, [this] { return done_ || timed_out_ || shutdown_; });
  if (!finished) {
    record_locked("FAIL run() wall-clock timeout (no virtual progress)");
    failures_.push_back("run() wall-clock timeout (no virtual progress)");
  }
  halt_locked();
  return done_;
}

void SimEngine::pump() {
  Lock lock(mutex_);
  fire_due_locked();
  deliver_locked();
}

void SimEngine::advance(Duration delta) {
  Lock lock(mutex_);
  advance_to_locked(
      now_ns_locked() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

// ---- fd helpers -------------------------------------------------------------

SimEngine::Channel* SimEngine::channel_of_fd_locked(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.is_listener) return nullptr;
  auto ch = channels_.find(it->second.channel);
  return ch == channels_.end() ? nullptr : ch->second.get();
}

void SimEngine::close_server_side_locked(Channel& ch) {
  if (ch.server_closed) return;
  ch.server_closed = true;
  ch.s2c.eof = true;  // FIN towards the client (delivered after drain)
  record_locked("close fd=" + std::to_string(ch.server_fd) +
                " ch=" + std::to_string(ch.id));
}

// ---- SimBackend: endpoint creation -----------------------------------------

Result<int> SimEngine::sim_listen(const net::InetAddress& addr, int backlog,
                                  bool reuseport) {
  Lock lock(mutex_);
  uint16_t port = addr.port();
  if (port == 0) port = next_auto_port_++;
  auto it = listeners_.find(port);
  if (it != listeners_.end() && !it->second.all_closed()) {
    // A live group: joining requires SO_REUSEPORT on both sides, like the
    // kernel's EADDRINUSE rule.
    if (!reuseport || !it->second.reuseport) {
      return Status::invalid_argument("simnet: port already listening");
    }
    const int fd = next_fd_++;
    it->second.members.push_back(Listener::Member{fd, false, {}});
    fds_[fd] = FdEntry{true, false, -1, port};
    record_locked("listen fd=" + std::to_string(fd) +
                  " port=" + std::to_string(port) + " reuseport");
    return fd;
  }
  const int fd = next_fd_++;
  Listener listener;
  listener.port = port;
  listener.backlog = backlog;
  listener.reuseport = reuseport;
  listener.members.push_back(Listener::Member{fd, false, {}});
  listeners_[port] = std::move(listener);
  fds_[fd] = FdEntry{true, false, -1, port};
  record_locked("listen fd=" + std::to_string(fd) +
                " port=" + std::to_string(port) +
                (reuseport ? " reuseport" : ""));
  return fd;
}

SimEngine::ConnectRoute SimEngine::route_connect_locked(uint16_t port) {
  ConnectRoute route;
  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.killed ||
      it->second.all_closed()) {
    return route;
  }
  Listener& listener = it->second;
  route.listener = &listener;
  // Deterministic round-robin over open members — the stand-in for the
  // kernel's SO_REUSEPORT 4-tuple hash.  The chosen member's queue being
  // full is a SYN drop, as with a real per-socket backlog (no failover).
  const size_t n = listener.members.size();
  for (size_t probe = 0; probe < n; ++probe) {
    auto& member = listener.members[listener.rr_next % n];
    listener.rr_next = (listener.rr_next + 1) % n;
    if (member.closed) continue;
    if (member.pending.size() < static_cast<size_t>(listener.backlog)) {
      route.member = &member;
    }
    return route;
  }
  return route;
}

Result<int> SimEngine::sim_connect(const net::InetAddress& peer) {
  Lock lock(mutex_);
  const uint16_t port = peer.port();
  if (stalled_ports_.count(port) != 0) {
    // SYN blackhole: hand out an fd that never becomes writable.
    auto channel = std::make_unique<Channel>();
    channel->id = next_channel_++;
    channel->listen_port = port;
    channel->client_port = next_client_port_++;
    channel->established = false;
    const int fd = next_fd_++;
    channel->initiator_fd = fd;
    fds_[fd] = FdEntry{false, true, channel->id, 0};
    record_locked("connect-stall fd=" + std::to_string(fd) +
                  " port=" + std::to_string(port));
    channels_.emplace(channel->id, std::move(channel));
    return fd;
  }
  auto route = route_connect_locked(port);
  if (route.listener == nullptr) {
    record_locked("connect-refused port=" + std::to_string(port));
    return Status::unavailable("simnet: connection refused");
  }
  if (route.member == nullptr) {
    record_locked("connect-overflow port=" + std::to_string(port));
    return Status::unavailable("simnet: accept queue full");
  }
  auto channel = std::make_unique<Channel>();
  channel->id = next_channel_++;
  channel->listen_port = port;
  channel->client_port = next_client_port_++;
  const int fd = next_fd_++;
  channel->initiator_fd = fd;
  fds_[fd] = FdEntry{false, true, channel->id, 0};
  route.member->pending.push_back(channel->id);
  record_locked("connect fd=" + std::to_string(fd) +
                " ch=" + std::to_string(channel->id) +
                " port=" + std::to_string(port));
  channels_.emplace(channel->id, std::move(channel));
  return fd;
}

// ---- per-endpoint fault targeting -------------------------------------------

void SimEngine::reset_channel_locked(Channel& ch) {
  ch.c2s.reset = true;
  ch.s2c.reset = true;
  ch.c2s.buf.clear();
  ch.s2c.buf.clear();
}

void SimEngine::kill_port_locked(uint16_t port) {
  record_locked("kill port=" + std::to_string(port));
  if (auto it = listeners_.find(port); it != listeners_.end()) {
    it->second.killed = true;
    for (auto& member : it->second.members) member.pending.clear();
  }
  for (auto& [id, ch_ptr] : channels_) {
    Channel& ch = *ch_ptr;
    if (ch.listen_port != port) continue;
    if (ch.c2s.reset && ch.s2c.reset) continue;  // already dead
    reset_channel_locked(ch);
    record_locked("rst ch=" + std::to_string(id));
  }
}

void SimEngine::kill_port(uint16_t port) {
  Lock lock(mutex_);
  kill_port_locked(port);
}

void SimEngine::kill_port_after_bytes(uint16_t port, uint64_t bytes) {
  Lock lock(mutex_);
  record_locked("kill-after port=" + std::to_string(port) +
                " bytes=" + std::to_string(bytes));
  if (bytes == 0) {
    kill_port_locked(port);
    return;
  }
  kill_after_bytes_[port] = bytes;
}

void SimEngine::revive_port(uint16_t port) {
  Lock lock(mutex_);
  record_locked("revive port=" + std::to_string(port));
  kill_after_bytes_.erase(port);  // disarm any pending mid-body kill
  if (auto it = listeners_.find(port); it != listeners_.end()) {
    it->second.killed = false;
  }
}

void SimEngine::stall_connects(uint16_t port, bool stalled) {
  Lock lock(mutex_);
  record_locked((stalled ? std::string("stall port=")
                         : std::string("unstall port=")) +
                std::to_string(port));
  if (stalled) {
    stalled_ports_.insert(port);
  } else {
    stalled_ports_.erase(port);
  }
}

// ---- SimBackend: socket ops -------------------------------------------------

net::SysResult SimEngine::sim_accept(int listen_fd) {
  Lock lock(mutex_);
  auto it = fds_.find(listen_fd);
  if (it == fds_.end() || !it->second.is_listener) return {-1, EBADF};
  auto& listener = listeners_[it->second.port];
  if (chance_locked(plan_.accept_eintr)) {
    record_locked("fault accept-eintr port=" + std::to_string(listener.port));
    return {-1, EINTR};
  }
  Listener::Member* member = nullptr;
  for (auto& m : listener.members) {
    if (m.fd == listen_fd) {
      member = &m;
      break;
    }
  }
  if (member == nullptr || member->pending.empty()) return {-1, EAGAIN};
  const int channel = member->pending.front();
  member->pending.pop_front();
  Channel& ch = *channels_.at(channel);
  const int fd = next_fd_++;
  ch.server_fd = fd;
  fds_[fd] = FdEntry{false, false, channel, 0};
  record_locked("accept fd=" + std::to_string(fd) +
                " ch=" + std::to_string(channel));
  return {fd, 0};
}

net::SysResult SimEngine::sim_read(int fd, void* buf, size_t len) {
  Lock lock(mutex_);
  auto entry = fds_.find(fd);
  if (entry == fds_.end() || entry->second.is_listener) return {-1, EBADF};
  const bool initiator = entry->second.initiator;
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return {-1, EBADF};
  if (initiator ? ch->initiator_closed : ch->server_closed) return {-1, EBADF};
  // The initiator end reads what the server wrote; the server end reads
  // what the client/initiator wrote.
  Pipe& pipe = initiator ? ch->s2c : ch->c2s;
  if (pipe.reset) {
    record_locked("read-rst fd=" + std::to_string(fd));
    return {-1, ECONNRESET};
  }
  if (chance_locked(plan_.read_eintr)) {
    record_locked("fault read-eintr fd=" + std::to_string(fd));
    return {-1, EINTR};
  }
  if (pipe.buf.empty()) {
    if (pipe.eof) {
      record_locked("read-eof fd=" + std::to_string(fd));
      return {0, 0};
    }
    return {-1, EAGAIN};
  }
  if (chance_locked(plan_.read_eagain)) {
    record_locked("fault read-eagain fd=" + std::to_string(fd));
    return {-1, EAGAIN};
  }
  size_t n = std::min(len, pipe.buf.size());
  if (n > 1 && chance_locked(plan_.short_read)) {
    n = 1 + static_cast<size_t>(rng_() % n);
  }
  std::memcpy(buf, pipe.buf.data(), n);
  pipe.buf.erase(0, n);
  record_locked("read fd=" + std::to_string(fd) + " n=" + std::to_string(n));
  return {static_cast<ssize_t>(n), 0};
}

net::SysResult SimEngine::sim_write_gather_locked(int fd,
                                                  const struct iovec* iov,
                                                  int iovcnt,
                                                  const char* op) {
  auto entry = fds_.find(fd);
  if (entry == fds_.end() || entry->second.is_listener) return {-1, EBADF};
  const bool initiator = entry->second.initiator;
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return {-1, EBADF};
  if (initiator ? ch->initiator_closed : ch->server_closed) return {-1, EBADF};
  Pipe& pipe = initiator ? ch->c2s : ch->s2c;
  if (pipe.reset) {
    record_locked("write-rst fd=" + std::to_string(fd));
    return {-1, ECONNRESET};
  }
  const bool peer_gone =
      initiator ? ch->server_closed
                : (ch->client != nullptr ? ch->client->closed_
                                         : ch->initiator_closed);
  if (peer_gone) {
    record_locked("write-epipe fd=" + std::to_string(fd));
    return {-1, EPIPE};
  }
  if (chance_locked(plan_.write_eintr)) {
    record_locked("fault write-eintr fd=" + std::to_string(fd));
    return {-1, EINTR};
  }
  if (pipe.buf.size() >= plan_.channel_capacity) return {-1, EAGAIN};
  if (chance_locked(plan_.write_eagain)) {
    record_locked("fault write-eagain fd=" + std::to_string(fd));
    return {-1, EAGAIN};
  }
  size_t len = 0;
  for (int i = 0; i < iovcnt; ++i) len += iov[i].iov_len;
  size_t n = std::min(len, plan_.channel_capacity - pipe.buf.size());
  if (n > 1 && chance_locked(plan_.short_write)) {
    // May land inside any iovec — the short write the resumption tests need
    // mid-segment.
    n = 1 + static_cast<size_t>(rng_() % n);
  }
  size_t left = n;
  for (int i = 0; i < iovcnt && left > 0; ++i) {
    const size_t take = std::min(left, static_cast<size_t>(iov[i].iov_len));
    pipe.buf.append(static_cast<const char*>(iov[i].iov_base), take);
    left -= take;
  }
  record_locked(std::string(op) + " fd=" + std::to_string(fd) +
                " n=" + std::to_string(n));
  // Armed mid-body kill: count bytes the *server* side pushes towards the
  // client/initiator and fire once the budget is spent.  The triggering
  // write itself succeeds — the reset lands right behind it.
  if (!initiator) {
    if (auto trigger = kill_after_bytes_.find(ch->listen_port);
        trigger != kill_after_bytes_.end()) {
      if (trigger->second > n) {
        trigger->second -= n;
      } else {
        kill_after_bytes_.erase(trigger);
        kill_port_locked(ch->listen_port);
      }
    }
  }
  return {static_cast<ssize_t>(n), 0};
}

net::SysResult SimEngine::sim_write(int fd, const void* buf, size_t len) {
  Lock lock(mutex_);
  struct iovec iov;
  iov.iov_base = const_cast<void*>(buf);
  iov.iov_len = len;
  return sim_write_gather_locked(fd, &iov, 1, "write");
}

net::SysResult SimEngine::sim_writev(int fd, const struct iovec* iov,
                                     int iovcnt) {
  Lock lock(mutex_);
  return sim_write_gather_locked(fd, iov, iovcnt, "writev");
}

net::SysResult SimEngine::sim_sendfile(int out_fd, int in_fd, uint64_t offset,
                                       size_t count) {
  Lock lock(mutex_);
  // The file side is a real descriptor (sim covers the network only); read
  // a chunk and push it through the same fault machinery as every other
  // write, so sendfile sees partial sends, EAGAIN bursts, and RSTs too.
  char buf[64 * 1024];
  const size_t want = std::min(count, sizeof(buf));
  const ssize_t got = ::pread(in_fd, buf, want, static_cast<off_t>(offset));
  if (got < 0) return {-1, errno};
  if (got == 0) return {0, 0};
  struct iovec iov;
  iov.iov_base = buf;
  iov.iov_len = static_cast<size_t>(got);
  return sim_write_gather_locked(out_fd, &iov, 1, "sendfile");
}

void SimEngine::sim_shutdown_write(int fd) {
  Lock lock(mutex_);
  auto entry = fds_.find(fd);
  if (entry == fds_.end() || entry->second.is_listener) return;
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return;
  (entry->second.initiator ? ch->c2s : ch->s2c).eof = true;
  record_locked("shutdown-write fd=" + std::to_string(fd));
}

void SimEngine::sim_close(int fd) {
  Lock lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.is_listener) {
    auto listener = listeners_.find(it->second.port);
    if (listener != listeners_.end()) {
      for (auto& member : listener->second.members) {
        if (member.fd == fd && !member.closed) {
          member.closed = true;
          record_locked("listener-close port=" +
                        std::to_string(it->second.port));
          break;
        }
      }
    }
  } else if (auto ch = channels_.find(it->second.channel);
             ch != channels_.end()) {
    if (it->second.initiator) {
      if (!ch->second->initiator_closed) {
        ch->second->initiator_closed = true;
        ch->second->c2s.eof = true;  // FIN towards the server
        record_locked("close fd=" + std::to_string(fd) +
                      " ch=" + std::to_string(ch->second->id));
      }
    } else {
      close_server_side_locked(*ch->second);
    }
  }
  fds_.erase(it);
  for (auto& [poller, interests] : pollers_) interests.erase(fd);
}

Result<net::InetAddress> SimEngine::sim_local_address(int fd) {
  Lock lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::invalid_argument("simnet: bad fd");
  if (it->second.is_listener) {
    return net::InetAddress::loopback(it->second.port);
  }
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return Status::invalid_argument("simnet: bad fd");
  if (it->second.initiator) {
    return net::InetAddress::loopback(ch->client_port);
  }
  return net::InetAddress::loopback(ch->listen_port);
}

Result<net::InetAddress> SimEngine::sim_peer_address(int fd) {
  Lock lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.is_listener) {
    return Status::invalid_argument("simnet: bad fd");
  }
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return Status::invalid_argument("simnet: bad fd");
  if (it->second.initiator) {
    return net::InetAddress::loopback(ch->listen_port);
  }
  if (ch->client == nullptr) {
    // Internal (in-process) peer: the initiator's ephemeral loopback port.
    return net::InetAddress::loopback(ch->client_port);
  }
  auto addr = net::InetAddress::parse("10.0.0.1", ch->client_port);
  if (!addr.is_ok()) return addr.status();
  return addr.value();
}

// ---- SimBackend: poller ops -------------------------------------------------

Status SimEngine::sim_poll_add(const void* poller, int fd, uint32_t interest) {
  Lock lock(mutex_);
  note_poller_locked(poller);
  auto& interests = pollers_[poller];
  if (!interests.emplace(fd, interest).second) {
    return Status::invalid_argument("simnet: fd already registered");
  }
  return Status::ok();
}

Status SimEngine::sim_poll_modify(const void* poller, int fd,
                                  uint32_t interest) {
  Lock lock(mutex_);
  auto& interests = pollers_[poller];
  auto it = interests.find(fd);
  if (it == interests.end()) {
    return Status::invalid_argument("simnet: fd not registered");
  }
  it->second = interest;
  return Status::ok();
}

Status SimEngine::sim_poll_remove(const void* poller, int fd) {
  Lock lock(mutex_);
  auto& interests = pollers_[poller];
  if (interests.erase(fd) == 0) {
    return Status::invalid_argument("simnet: fd not registered");
  }
  return Status::ok();
}

void SimEngine::collect_ready_locked(const void* poller,
                                     std::vector<net::ReadyFd>& out) {
  auto registered = pollers_.find(poller);
  if (registered == pollers_.end()) return;
  for (const auto& [fd, interest] : registered->second) {
    auto entry = fds_.find(fd);
    if (entry == fds_.end()) continue;
    if (entry->second.is_listener) {
      auto listener = listeners_.find(entry->second.port);
      if (listener == listeners_.end()) continue;
      const Listener::Member* member = nullptr;
      for (const auto& m : listener->second.members) {
        if (m.fd == fd) {
          member = &m;
          break;
        }
      }
      if (member == nullptr || member->closed) continue;
      if ((interest & net::kReadable) != 0 && !member->pending.empty()) {
        out.push_back({fd, net::kReadable});
      }
      continue;
    }
    Channel* ch = channel_of_fd_locked(fd);
    if (ch == nullptr) continue;
    uint32_t events = 0;
    if (entry->second.initiator) {
      if (ch->initiator_closed) continue;
      // A pending (stalled) connect is neither readable nor writable —
      // unless it was reset, which completes the connect with an error.
      if (!ch->established && !ch->c2s.reset && !ch->s2c.reset) continue;
      if ((interest & net::kReadable) != 0 &&
          (!ch->s2c.buf.empty() || ch->s2c.eof || ch->s2c.reset)) {
        events |= net::kReadable;
      }
      if ((interest & net::kWritable) != 0 &&
          (ch->c2s.reset || ch->c2s.buf.size() < plan_.channel_capacity)) {
        events |= net::kWritable;
      }
    } else {
      if (ch->server_closed) continue;
      if ((interest & net::kReadable) != 0 &&
          (!ch->c2s.buf.empty() || ch->c2s.eof || ch->c2s.reset)) {
        events |= net::kReadable;
      }
      if ((interest & net::kWritable) != 0 &&
          (ch->s2c.reset || ch->s2c.buf.size() < plan_.channel_capacity)) {
        events |= net::kWritable;
      }
    }
    if (events != 0) out.push_back({fd, events});
  }
}

bool SimEngine::has_ready_locked(const void* poller) {
  std::vector<net::ReadyFd> scratch;
  collect_ready_locked(poller, scratch);
  return !scratch.empty();
}

void SimEngine::note_poller_locked(const void* poller) {
  if (slots_.count(poller) != 0) return;
  slots_[poller] = PollerSlot{};
  poller_order_.push_back(poller);
}

// Grants exactly one parked poller once every known poller is parked.
// Whichever thread happens to run this loop is irrelevant: every decision
// depends only on engine state (registration order, fd readiness, virtual
// deadlines), so the grant sequence replays bit-identically per seed.
void SimEngine::schedule_locked() {
  if (token_holder_ != nullptr) return;
  for (const void* p : poller_order_) {
    if (!slots_[p].waiting) return;  // someone is still active
  }
  while (running_ && !shutdown_) {
    fire_due_locked();
    deliver_locked();
    check_done_locked();
    if (!running_) return;
    const int64_t now = now_ns_locked();
    const size_t n = poller_order_.size();
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = (rr_next_ + i) % n;
      const void* p = poller_order_[idx];
      auto& slot = slots_[p];
      if (has_ready_locked(p) || slot.notified || slot.deadline_ns <= now) {
        slot.notified = false;
        slot.granted = true;
        token_holder_ = p;
        rr_next_ = (idx + 1) % n;
        cv_sched_.notify_all();
        return;
      }
    }
    // Nothing ready anywhere: advance virtual time to the next interesting
    // instant — the next scripted action, the earliest parked poll deadline
    // (i.e. some reactor's next timer), or the run deadline.
    int64_t target = deadline_ns_;
    if (!script_.empty()) {
      target = std::min(target, script_.begin()->first.first);
    }
    for (const void* p : poller_order_) {
      target = std::min(target, slots_[p].deadline_ns);
    }
    if (target <= now) {
      // Every earlier candidate was consumed above, so only the run
      // deadline remains — the scenario ran out of virtual time.
      timed_out_ = true;
      halt_locked();
      return;
    }
    advance_to_locked(target);
  }
}

void SimEngine::sim_notify(const void* poller) {
  Lock lock(mutex_);
  // A reactor that owns no sim fds (e.g. a dispatch-target shard whose only
  // descriptor is its real wakeup eventfd) is unknown to the scheduler until
  // its first post — register it now so it joins the token rotation.  The
  // grant happens at the current virtual instant (`notified` short-circuits
  // the deadline check in schedule_locked), so a cross-reactor hand-off is
  // free in virtual time and the trace stays bit-identical per seed.
  note_poller_locked(poller);
  slots_[poller].notified = true;
  // If the poller is idling in the unknown-poller / paused real-time wait,
  // bounce it out immediately so it parks and becomes grantable.
  cv_run_.notify_all();
}

size_t SimEngine::sim_poll_wait(const void* poller,
                                std::vector<net::ReadyFd>& out,
                                int timeout_ms) {
  Lock lock(mutex_);
  if (token_holder_ == poller) token_holder_ = nullptr;
  if (shutdown_) return 0;
  if (slots_.count(poller) == 0) {
    // A poller with no registered sim fds (e.g. a reactor thread that has
    // not set up yet) cannot affect the simulated world; idle briefly in
    // real time so it neither blocks scheduling nor spins.
    cv_run_.wait_for(lock, std::chrono::milliseconds(1));
    return 0;
  }
  if (!running_) {
    // Paused (pre-run, or the scenario finished): idle briefly in *real*
    // time with the virtual clock frozen, so the pre-run state is
    // bit-identical across runs and stop requests are still noticed.
    if (timeout_ms != 0) {
      cv_run_.wait_for(lock, std::chrono::milliseconds(1));
    }
    if (!running_ || shutdown_) return 0;
  }
  if (timeout_ms == 0) {
    // Non-blocking probe: issued by the thread that is currently running
    // (pending user events or due timers), which is the token holder.  It
    // keeps the token and handles what is ready without a scheduling round.
    fire_due_locked();
    deliver_locked();
    collect_ready_locked(poller, out);
    token_holder_ = poller;
    if (out.empty()) check_done_locked();
    return out.size();
  }
  auto& slot = slots_[poller];
  slot.waiting = true;
  slot.granted = false;
  const int64_t horizon =
      timeout_ms < 0 ? deadline_ns_
                     : now_ns_locked() +
                           static_cast<int64_t>(timeout_ms) * 1'000'000;
  slot.deadline_ns = horizon;
  schedule_locked();
  cv_sched_.wait(lock,
                 [this, &slot] { return slot.granted || !running_ || shutdown_; });
  slot.waiting = false;
  slot.granted = false;
  if (!running_ || shutdown_) return 0;
  // We hold the token now: fire whatever is due at this instant and report
  // readiness; the reactor dispatches, then re-enters to hand the token back.
  token_holder_ = poller;
  fire_due_locked();
  deliver_locked();
  collect_ready_locked(poller, out);
  if (out.empty()) check_done_locked();
  return out.size();
}

}  // namespace cops::simnet
