#include "simnet/sim_engine.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

namespace cops::simnet {
namespace {

// Virtual epoch: 1s, so TimePoint{0} never collides with live deadlines.
constexpr int64_t kEpochNs = 1'000'000'000;

// Wall-clock safety net for run(): a simulation that stops making virtual
// progress (e.g. no poller is driving the engine) must not hang the test
// binary forever.
constexpr std::chrono::seconds kRunWallTimeout{120};

}  // namespace

// ---- SimClient --------------------------------------------------------------

void SimClient::connect(uint16_t port) {
  SimEngine::Lock lock(engine_->mutex_);
  auto listener = engine_->listeners_.find(port);
  if (listener == engine_->listeners_.end() || listener->second.closed) {
    engine_->record_locked("connect-refused port=" + std::to_string(port));
    engine_->failures_.push_back("connect refused: port " +
                                 std::to_string(port) + " not listening");
    closed_ = true;
    return;
  }
  if (listener->second.pending.size() >=
      static_cast<size_t>(listener->second.backlog)) {
    // Accept-queue overflow: the SYN is dropped, the client never connects.
    engine_->record_locked("syn-drop port=" + std::to_string(port));
    return;
  }
  auto channel = std::make_unique<SimEngine::Channel>();
  channel->id = engine_->next_channel_++;
  channel->listen_port = port;
  channel->client_port = engine_->next_client_port_++;
  channel->client = this;
  channel_ = channel->id;
  listener->second.pending.push_back(channel->id);
  engine_->record_locked("connect ch=" + std::to_string(channel->id) +
                         " port=" + std::to_string(port));
  engine_->channels_.emplace(channel->id, std::move(channel));
}

void SimClient::send(std::string bytes) {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ < 0 || closed_) {
    engine_->failures_.push_back("send on unconnected client");
    return;
  }
  auto& ch = *engine_->channels_.at(channel_);
  engine_->record_locked("client-send ch=" + std::to_string(channel_) +
                         " n=" + std::to_string(bytes.size()));
  ch.c2s.buf += bytes;
}

void SimClient::shutdown_write() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ < 0) return;
  auto& ch = *engine_->channels_.at(channel_);
  ch.c2s.eof = true;
  engine_->record_locked("client-fin ch=" + std::to_string(channel_));
}

void SimClient::reset() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ >= 0) {
    auto& ch = *engine_->channels_.at(channel_);
    ch.c2s.reset = true;
    ch.s2c.reset = true;
    ch.s2c.buf.clear();  // RST discards undelivered data
    engine_->record_locked("client-rst ch=" + std::to_string(channel_));
  }
  closed_ = true;
}

void SimClient::close() {
  SimEngine::Lock lock(engine_->mutex_);
  if (channel_ >= 0 && !closed_) {
    auto& ch = *engine_->channels_.at(channel_);
    ch.c2s.eof = true;
    engine_->record_locked("client-close ch=" + std::to_string(channel_));
  }
  closed_ = true;
}

void SimClient::pause_reading(bool paused) {
  SimEngine::Lock lock(engine_->mutex_);
  paused_ = paused;
  engine_->record_locked(std::string(paused ? "client-pause" : "client-resume") +
                         " ch=" + std::to_string(channel_));
}

// ---- SimEngine --------------------------------------------------------------

SimEngine::SimEngine(uint64_t seed, FaultPlan plan)
    : seed_(seed), plan_(plan), rng_(seed) {
  simclock::install(kEpochNs);
  net::install_sim_backend(this);
}

SimEngine::~SimEngine() {
  {
    Lock lock(mutex_);
    shutdown_ = true;
    running_ = false;
  }
  cv_run_.notify_all();
  cv_done_.notify_all();
  net::uninstall_sim_backend();
  simclock::uninstall();
}

int64_t SimEngine::now_ns_locked() const { return simclock::now_ns(); }

void SimEngine::record_locked(std::string line) {
  std::ostringstream out;
  out << "t=" << (now_ns_locked() - kEpochNs) / 1000 << "us " << line;
  trace_.push_back(out.str());
}

void SimEngine::record(std::string line) {
  Lock lock(mutex_);
  record_locked(std::move(line));
}

void SimEngine::fail(std::string message) {
  Lock lock(mutex_);
  record_locked("FAIL " + message);
  failures_.push_back(std::move(message));
}

std::vector<std::string> SimEngine::trace() const {
  Lock lock(mutex_);
  return trace_;
}

std::string SimEngine::trace_text() const {
  Lock lock(mutex_);
  std::string out;
  for (const auto& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::string> SimEngine::failures() const {
  Lock lock(mutex_);
  return failures_;
}

bool SimEngine::chance_locked(double probability) {
  if (probability <= 0.0) return false;
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng_) < probability;
}

// ---- script & execution -----------------------------------------------------

void SimEngine::at(Duration when, std::function<void()> fn) {
  Lock lock(mutex_);
  const int64_t t =
      kEpochNs +
      std::chrono::duration_cast<std::chrono::nanoseconds>(when).count();
  script_.emplace(std::make_pair(t, next_script_seq_++), std::move(fn));
}

SimClient* SimEngine::new_client() {
  Lock lock(mutex_);
  auto client = std::make_unique<SimClient>();
  client->engine_ = this;
  clients_.push_back(std::move(client));
  return clients_.back().get();
}

void SimEngine::fire_due_locked() {
  while (!script_.empty() && script_.begin()->first.first <= now_ns_locked()) {
    auto node = script_.extract(script_.begin());
    node.mapped()();
  }
}

void SimEngine::deliver_locked() {
  for (auto& [id, ch_ptr] : channels_) {
    Channel& ch = *ch_ptr;
    SimClient* client = ch.client;
    if (client == nullptr || client->closed_ || client->paused_) continue;
    if (!ch.s2c.buf.empty() && !ch.s2c.reset) {
      std::string bytes;
      bytes.swap(ch.s2c.buf);
      record_locked("deliver ch=" + std::to_string(id) +
                    " n=" + std::to_string(bytes.size()));
      client->received_ += bytes;
      if (client->on_data) client->on_data(bytes);
    }
    if ((ch.s2c.eof || ch.s2c.reset) && ch.s2c.buf.empty() &&
        !ch.client_notified_close) {
      ch.client_notified_close = true;
      client->peer_closed_ = true;
      record_locked("client-eof ch=" + std::to_string(id));
      if (client->on_close) client->on_close();
    }
  }
}

void SimEngine::check_done_locked() {
  if (!running_ || done_ || timed_out_) return;
  if (!script_.empty()) return;
  for (const auto& client : clients_) {
    if (client->channel_ >= 0 && !client->closed_ && !client->peer_closed_) {
      return;
    }
  }
  done_ = true;
  running_ = false;
  cv_done_.notify_all();
}

void SimEngine::advance_to_locked(int64_t target_ns) {
  if (target_ns <= now_ns_locked()) return;
  simclock::set_ns(target_ns);
  if (running_ && !done_ && target_ns >= deadline_ns_) {
    timed_out_ = true;
    running_ = false;
    cv_done_.notify_all();
  }
}

bool SimEngine::run(Duration virtual_deadline) {
  Lock lock(mutex_);
  done_ = false;
  timed_out_ = false;
  deadline_ns_ =
      now_ns_locked() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(virtual_deadline)
          .count();
  running_ = true;
  cv_run_.notify_all();
  const bool finished = cv_done_.wait_for(
      lock, kRunWallTimeout, [this] { return done_ || timed_out_ || shutdown_; });
  if (!finished) {
    record_locked("FAIL run() wall-clock timeout (no virtual progress)");
    failures_.push_back("run() wall-clock timeout (no virtual progress)");
  }
  running_ = false;
  return done_;
}

void SimEngine::pump() {
  Lock lock(mutex_);
  fire_due_locked();
  deliver_locked();
}

void SimEngine::advance(Duration delta) {
  Lock lock(mutex_);
  advance_to_locked(
      now_ns_locked() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

// ---- fd helpers -------------------------------------------------------------

SimEngine::Channel* SimEngine::channel_of_fd_locked(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end() || it->second.is_listener) return nullptr;
  auto ch = channels_.find(it->second.channel);
  return ch == channels_.end() ? nullptr : ch->second.get();
}

void SimEngine::close_server_side_locked(Channel& ch) {
  if (ch.server_closed) return;
  ch.server_closed = true;
  ch.s2c.eof = true;  // FIN towards the client (delivered after drain)
  record_locked("close fd=" + std::to_string(ch.server_fd) +
                " ch=" + std::to_string(ch.id));
}

// ---- SimBackend: endpoint creation -----------------------------------------

Result<int> SimEngine::sim_listen(const net::InetAddress& addr, int backlog) {
  Lock lock(mutex_);
  uint16_t port = addr.port();
  if (port == 0) port = next_auto_port_++;
  if (auto it = listeners_.find(port);
      it != listeners_.end() && !it->second.closed) {
    return Status::invalid_argument("simnet: port already listening");
  }
  const int fd = next_fd_++;
  listeners_[port] = Listener{fd, port, backlog, false, {}};
  fds_[fd] = FdEntry{true, -1, port};
  record_locked("listen fd=" + std::to_string(fd) +
                " port=" + std::to_string(port));
  return fd;
}

Result<int> SimEngine::sim_connect(const net::InetAddress& /*peer*/) {
  return Status::unavailable(
      "simnet: outbound TcpSocket::connect is not simulated");
}

// ---- SimBackend: socket ops -------------------------------------------------

net::SysResult SimEngine::sim_accept(int listen_fd) {
  Lock lock(mutex_);
  auto it = fds_.find(listen_fd);
  if (it == fds_.end() || !it->second.is_listener) return {-1, EBADF};
  auto& listener = listeners_[it->second.port];
  if (chance_locked(plan_.accept_eintr)) {
    record_locked("fault accept-eintr port=" + std::to_string(listener.port));
    return {-1, EINTR};
  }
  if (listener.pending.empty()) return {-1, EAGAIN};
  const int channel = listener.pending.front();
  listener.pending.pop_front();
  Channel& ch = *channels_.at(channel);
  const int fd = next_fd_++;
  ch.server_fd = fd;
  fds_[fd] = FdEntry{false, channel, 0};
  record_locked("accept fd=" + std::to_string(fd) +
                " ch=" + std::to_string(channel));
  return {fd, 0};
}

net::SysResult SimEngine::sim_read(int fd, void* buf, size_t len) {
  Lock lock(mutex_);
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr || ch->server_closed) return {-1, EBADF};
  Pipe& pipe = ch->c2s;
  if (pipe.reset) {
    record_locked("read-rst fd=" + std::to_string(fd));
    return {-1, ECONNRESET};
  }
  if (chance_locked(plan_.read_eintr)) {
    record_locked("fault read-eintr fd=" + std::to_string(fd));
    return {-1, EINTR};
  }
  if (pipe.buf.empty()) {
    if (pipe.eof) {
      record_locked("read-eof fd=" + std::to_string(fd));
      return {0, 0};
    }
    return {-1, EAGAIN};
  }
  if (chance_locked(plan_.read_eagain)) {
    record_locked("fault read-eagain fd=" + std::to_string(fd));
    return {-1, EAGAIN};
  }
  size_t n = std::min(len, pipe.buf.size());
  if (n > 1 && chance_locked(plan_.short_read)) {
    n = 1 + static_cast<size_t>(rng_() % n);
  }
  std::memcpy(buf, pipe.buf.data(), n);
  pipe.buf.erase(0, n);
  record_locked("read fd=" + std::to_string(fd) + " n=" + std::to_string(n));
  return {static_cast<ssize_t>(n), 0};
}

net::SysResult SimEngine::sim_write(int fd, const void* buf, size_t len) {
  Lock lock(mutex_);
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr || ch->server_closed) return {-1, EBADF};
  Pipe& pipe = ch->s2c;
  if (pipe.reset) {
    record_locked("write-rst fd=" + std::to_string(fd));
    return {-1, ECONNRESET};
  }
  if (ch->client != nullptr && ch->client->closed_) {
    record_locked("write-epipe fd=" + std::to_string(fd));
    return {-1, EPIPE};
  }
  if (chance_locked(plan_.write_eintr)) {
    record_locked("fault write-eintr fd=" + std::to_string(fd));
    return {-1, EINTR};
  }
  if (pipe.buf.size() >= plan_.channel_capacity) return {-1, EAGAIN};
  if (chance_locked(plan_.write_eagain)) {
    record_locked("fault write-eagain fd=" + std::to_string(fd));
    return {-1, EAGAIN};
  }
  size_t n = std::min(len, plan_.channel_capacity - pipe.buf.size());
  if (n > 1 && chance_locked(plan_.short_write)) {
    n = 1 + static_cast<size_t>(rng_() % n);
  }
  pipe.buf.append(static_cast<const char*>(buf), n);
  record_locked("write fd=" + std::to_string(fd) + " n=" + std::to_string(n));
  return {static_cast<ssize_t>(n), 0};
}

void SimEngine::sim_shutdown_write(int fd) {
  Lock lock(mutex_);
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return;
  ch->s2c.eof = true;
  record_locked("shutdown-write fd=" + std::to_string(fd));
}

void SimEngine::sim_close(int fd) {
  Lock lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  if (it->second.is_listener) {
    auto listener = listeners_.find(it->second.port);
    if (listener != listeners_.end()) {
      listener->second.closed = true;
      record_locked("listener-close port=" + std::to_string(it->second.port));
    }
  } else if (auto ch = channels_.find(it->second.channel);
             ch != channels_.end()) {
    close_server_side_locked(*ch->second);
  }
  fds_.erase(it);
  for (auto& [poller, interests] : pollers_) interests.erase(fd);
}

Result<net::InetAddress> SimEngine::sim_local_address(int fd) {
  Lock lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Status::invalid_argument("simnet: bad fd");
  if (it->second.is_listener) {
    return net::InetAddress::loopback(it->second.port);
  }
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return Status::invalid_argument("simnet: bad fd");
  return net::InetAddress::loopback(ch->listen_port);
}

Result<net::InetAddress> SimEngine::sim_peer_address(int fd) {
  Lock lock(mutex_);
  Channel* ch = channel_of_fd_locked(fd);
  if (ch == nullptr) return Status::invalid_argument("simnet: bad fd");
  auto addr = net::InetAddress::parse("10.0.0.1", ch->client_port);
  if (!addr.is_ok()) return addr.status();
  return addr.value();
}

// ---- SimBackend: poller ops -------------------------------------------------

Status SimEngine::sim_poll_add(const void* poller, int fd, uint32_t interest) {
  Lock lock(mutex_);
  auto& interests = pollers_[poller];
  if (!interests.emplace(fd, interest).second) {
    return Status::invalid_argument("simnet: fd already registered");
  }
  return Status::ok();
}

Status SimEngine::sim_poll_modify(const void* poller, int fd,
                                  uint32_t interest) {
  Lock lock(mutex_);
  auto& interests = pollers_[poller];
  auto it = interests.find(fd);
  if (it == interests.end()) {
    return Status::invalid_argument("simnet: fd not registered");
  }
  it->second = interest;
  return Status::ok();
}

Status SimEngine::sim_poll_remove(const void* poller, int fd) {
  Lock lock(mutex_);
  auto& interests = pollers_[poller];
  if (interests.erase(fd) == 0) {
    return Status::invalid_argument("simnet: fd not registered");
  }
  return Status::ok();
}

void SimEngine::collect_ready_locked(const void* poller,
                                     std::vector<net::ReadyFd>& out) {
  auto registered = pollers_.find(poller);
  if (registered == pollers_.end()) return;
  for (const auto& [fd, interest] : registered->second) {
    auto entry = fds_.find(fd);
    if (entry == fds_.end()) continue;
    if (entry->second.is_listener) {
      auto listener = listeners_.find(entry->second.port);
      if (listener == listeners_.end() || listener->second.closed) continue;
      if ((interest & net::kReadable) != 0 &&
          !listener->second.pending.empty()) {
        out.push_back({fd, net::kReadable});
      }
      continue;
    }
    Channel* ch = channel_of_fd_locked(fd);
    if (ch == nullptr || ch->server_closed) continue;
    uint32_t events = 0;
    if ((interest & net::kReadable) != 0 &&
        (!ch->c2s.buf.empty() || ch->c2s.eof || ch->c2s.reset)) {
      events |= net::kReadable;
    }
    if ((interest & net::kWritable) != 0 &&
        (ch->s2c.reset || ch->s2c.buf.size() < plan_.channel_capacity)) {
      events |= net::kWritable;
    }
    if (events != 0) out.push_back({fd, events});
  }
}

size_t SimEngine::sim_poll_wait(const void* poller,
                                std::vector<net::ReadyFd>& out,
                                int timeout_ms) {
  Lock lock(mutex_);
  if (shutdown_) return 0;
  if (!running_) {
    // Paused (pre-run, or the scenario finished): idle briefly in *real*
    // time with the virtual clock frozen, so the pre-run state is
    // bit-identical across runs and stop requests are still noticed.
    if (timeout_ms != 0) {
      cv_run_.wait_for(lock, std::chrono::milliseconds(1));
    }
    if (!running_ || shutdown_) return 0;
  }
  fire_due_locked();
  deliver_locked();
  collect_ready_locked(poller, out);
  if (!out.empty()) return out.size();
  check_done_locked();
  if (timeout_ms == 0 || !running_) return 0;
  // Nothing ready: advance virtual time to the next interesting instant —
  // the next scripted action, capped by the caller's timer-derived timeout
  // and the run deadline — instead of sleeping.
  int64_t target = now_ns_locked() + static_cast<int64_t>(timeout_ms) * 1'000'000;
  if (!script_.empty()) {
    target = std::min(target, script_.begin()->first.first);
  }
  target = std::min(target, deadline_ns_);
  advance_to_locked(target);
  fire_due_locked();
  deliver_locked();
  collect_ready_locked(poller, out);
  if (!out.empty()) return out.size();
  check_done_locked();
  return 0;
}

}  // namespace cops::simnet
