// FaultPlan — the knobs of the deterministic fault injector.
//
// Every probability is evaluated against the SimEngine's single seeded
// PRNG, so one uint64 seed fully determines the fault sequence: a failing
// run replays bit-identically from its seed (see TESTING.md).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cops::simnet {

struct FaultPlan {
  // ---- read-side faults (server reading from a channel) ------------------
  double read_eintr = 0.0;   // EINTR before the read is attempted
  double read_eagain = 0.0;  // spurious EAGAIN while bytes are pending
  double short_read = 0.0;   // deliver only a random prefix of what's there

  // ---- write-side faults --------------------------------------------------
  double write_eintr = 0.0;   // EINTR with nothing sent
  double write_eagain = 0.0;  // kernel buffer "momentarily full"
  double short_write = 0.0;   // accept only a random prefix

  // ---- accept-side faults -------------------------------------------------
  double accept_eintr = 0.0;  // EINTR out of accept4

  // In-flight byte cap per direction; writes beyond it see EAGAIN until the
  // peer drains, which exercises the want-write/flush path.  Small prime
  // values force many partial writes.
  size_t channel_capacity = 64 * 1024;

  [[nodiscard]] static FaultPlan none() { return {}; }

  // A storm of every recoverable fault.  The server must produce the same
  // protocol-level behaviour as under FaultPlan::none() — only the event
  // trace (retries, splits) differs.
  [[nodiscard]] static FaultPlan chaos() {
    FaultPlan plan;
    plan.read_eintr = 0.20;
    plan.read_eagain = 0.15;
    plan.short_read = 0.50;
    plan.write_eintr = 0.20;
    plan.write_eagain = 0.15;
    plan.short_write = 0.50;
    plan.accept_eintr = 0.25;
    plan.channel_capacity = 97;
    return plan;
  }
};

}  // namespace cops::simnet
