// Parsed HTTP request.
#pragma once

#include <map>
#include <string>

#include "http/method.hpp"

namespace cops::http {

struct HttpRequest {
  Method method = Method::kGet;
  std::string target;       // raw request-target, e.g. "/dir0/file3.html?x=1"
  std::string path;         // decoded, query stripped
  std::string query;        // after '?', raw
  int version_major = 1;
  int version_minor = 1;
  // Header names lower-cased at parse time.
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] bool has_header(const std::string& name) const {
    return headers.count(name) != 0;
  }
  [[nodiscard]] std::string header_or(const std::string& name,
                                      std::string fallback = {}) const {
    auto it = headers.find(name);
    return it == headers.end() ? std::move(fallback) : it->second;
  }
  // HTTP/1.1 defaults to persistent connections; "Connection: close"
  // (or HTTP/1.0 without keep-alive) ends the connection after the reply.
  [[nodiscard]] bool keep_alive() const;
};

}  // namespace cops::http
