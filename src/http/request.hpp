// Parsed HTTP request.
//
// Built for the allocation-free request path (buffer_mgmt=pooled): a
// connection reuses one HttpRequest as decode scratch across keep-alive
// requests, so every field recycles its capacity via reset() instead of
// being re-allocated.  Headers live in a HeaderMap — a flat entry table
// over one contiguous storage arena — rather than a node-per-header
// std::map, so parsing a request performs no per-header allocations once
// the arena has warmed up.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/method.hpp"

namespace cops::http {

// Flat header collection.  Names are lower-cased at insertion; lookup is by
// exact (already-lowercase) or mixed-case name.  Iteration yields headers in
// wire order as {name, value} views into the map's own storage — the views
// stay valid until the next add()/append_to_value()/reset().
class HeaderMap {
 public:
  struct Header {
    std::string_view name;
    std::string_view value;
  };

  // Appends a header; `name` is lower-cased into storage.
  void add(std::string_view name, std::string_view value);
  // RFC 7230 §3.2.2 list-combine: entry i's value becomes "old, more".
  void append_to_value(size_t i, std::string_view more);

  static constexpr size_t npos = static_cast<size_t>(-1);
  // Case-insensitive lookup of the first matching entry.
  [[nodiscard]] size_t find_index(std::string_view name) const;
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
  [[nodiscard]] Header at(size_t i) const;

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  // Forgets every header but keeps the arena capacity (the zero-allocation
  // steady state relies on this).
  void reset() {
    entries_.clear();
    storage_.clear();
  }

  class const_iterator {
   public:
    const_iterator(const HeaderMap* map, size_t i) : map_(map), i_(i) {}
    Header operator*() const { return map_->at(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const HeaderMap* map_;
    size_t i_;
  };
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, entries_.size()}; }

  // Wire-order equality of (name, value) sequences.
  bool operator==(const HeaderMap& other) const;
  bool operator!=(const HeaderMap& other) const { return !(*this == other); }

 private:
  struct Entry {
    uint32_t name_off;
    uint32_t name_len;
    uint32_t value_off;
    uint32_t value_len;
  };

  std::vector<Entry> entries_;
  std::string storage_;
};

struct HttpRequest {
  Method method = Method::kGet;
  std::string target;       // raw request-target, e.g. "/dir0/file3.html?x=1"
  std::string path;         // decoded, query stripped
  std::string query;        // after '?', raw
  int version_major = 1;
  int version_minor = 1;
  // Header names lower-cased at parse time.
  HeaderMap headers;
  std::string body;

  // Clears every field while keeping string/arena capacity, so a reused
  // scratch request parses the next one without heap traffic.
  void reset();

  [[nodiscard]] bool has_header(std::string_view name) const {
    return headers.find_index(name) != HeaderMap::npos;
  }
  // Borrowed view of the header's value; nullopt when absent.
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const {
    return headers.get(name);
  }
  [[nodiscard]] std::string header_or(std::string_view name,
                                      std::string fallback = {}) const {
    auto value = headers.get(name);
    return value ? std::string(*value) : std::move(fallback);
  }
  // HTTP/1.1 defaults to persistent connections; a "close" token in the
  // Connection list (or HTTP/1.0 without a "keep-alive" token) ends the
  // connection after the reply.  Token comparison is case-insensitive and
  // list-aware: "Connection: foo, close" closes, "Connection: disclosed"
  // does not.
  [[nodiscard]] bool keep_alive() const;
};

}  // namespace cops::http
