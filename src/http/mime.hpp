// File-extension → MIME type mapping.
#pragma once

#include <string>
#include <string_view>

namespace cops::http {

// Returns the MIME type for a path's extension; "application/octet-stream"
// when unknown.
[[nodiscard]] std::string_view mime_type_for(std::string_view path);

}  // namespace cops::http
