#include "http/response.hpp"

#include "http/http_date.hpp"

namespace cops::http {

std::string HttpResponse::serialize() const {
  std::string out;
  out.reserve(256 + (head_only ? 0 : body_size()));
  out += "HTTP/1.1 ";
  out += std::to_string(static_cast<int>(status));
  out += ' ';
  out += reason_phrase(status);
  out += "\r\n";
  if (headers.count("Server") == 0) out += "Server: COPS-HTTP/1.0\r\n";
  if (headers.count("Date") == 0) {
    out += "Date: ";
    out += now_http_date();
    out += "\r\n";
  }
  if (headers.count("Content-Length") == 0) {
    out += "Content-Length: ";
    out += std::to_string(body_size());
    out += "\r\n";
  }
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  if (!head_only) {
    if (file) {
      out += file->bytes;
    } else {
      out += body;
    }
  }
  return out;
}

HttpResponse make_error_response(StatusCode status, bool keep_alive) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::string("<html><head><title>") +
              std::to_string(static_cast<int>(status)) + " " +
              reason_phrase(status) + "</title></head><body><h1>" +
              std::to_string(static_cast<int>(status)) + " " +
              reason_phrase(status) + "</h1></body></html>\n";
  resp.set_header("Content-Type", "text/html");
  resp.set_header("Connection", keep_alive ? "keep-alive" : "close");
  return resp;
}

}  // namespace cops::http
