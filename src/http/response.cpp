#include "http/response.hpp"

#include <algorithm>
#include <string_view>

#include "http/http_date.hpp"

namespace cops::http {

namespace {
// Case-sensitive compare is fine here: the server itself is the only writer
// of response headers and uses canonical capitalisation throughout.
bool header_eq(std::string_view a, std::string_view b) { return a == b; }

size_t digits_of(size_t v) {
  size_t d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

size_t hex_digits_of(size_t v) {
  size_t d = 1;
  while (v >= 16) {
    v /= 16;
    ++d;
  }
  return d;
}

void append_hex(std::string& out, size_t v) {
  char buf[2 * sizeof(size_t)];
  size_t at = sizeof(buf);
  do {
    buf[--at] = "0123456789abcdef"[v % 16];
    v /= 16;
  } while (v > 0);
  out.append(buf + at, sizeof(buf) - at);
}
}  // namespace

void HttpResponse::set_header(std::string name, std::string value) {
  for (auto& [existing, val] : headers) {
    if (header_eq(existing, name)) {
      val = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

const std::string* HttpResponse::find_header(std::string_view name) const {
  for (const auto& [existing, value] : headers) {
    if (header_eq(existing, name)) return &value;
  }
  return nullptr;
}

std::string HttpResponse::serialize_headers() const {
  const std::string status_code = std::to_string(static_cast<int>(status));
  const std::string_view reason = reason_phrase(status);
  const bool need_server = find_header("Server") == nullptr;
  const bool need_date = find_header("Date") == nullptr;
  // Chunked replies advertise the coding instead of a length — emitting
  // both would hand intermediaries the same framing ambiguity the request
  // parser rejects with a 400.
  const bool need_length = !chunked && find_header("Content-Length") == nullptr;
  const size_t length = body_size();

  // Exact byte count: the serialized block must never reallocate.
  size_t total = 9 /* "HTTP/1.1 " */ + status_code.size() + 1 + reason.size() +
                 2 /* CRLF */ + 2 /* final CRLF */;
  if (need_server) total += sizeof("Server: COPS-HTTP/1.0\r\n") - 1;
  if (need_date) total += 6 /* "Date: " */ + kHttpDateLength + 2;
  if (need_length) total += 16 /* "Content-Length: " */ + digits_of(length) + 2;
  if (chunked) total += sizeof("Transfer-Encoding: chunked\r\n") - 1;
  for (const auto& [name, value] : headers) {
    total += name.size() + 2 + value.size() + 2;
  }

  std::string out;
  out.reserve(total);
  out += "HTTP/1.1 ";
  out += status_code;
  out += ' ';
  out += reason;
  out += "\r\n";
  if (need_server) out += "Server: COPS-HTTP/1.0\r\n";
  if (need_date) {
    out += "Date: ";
    out += now_http_date();
    out += "\r\n";
  }
  if (need_length) {
    out += "Content-Length: ";
    out += std::to_string(length);
    out += "\r\n";
  }
  if (chunked) out += "Transfer-Encoding: chunked\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string HttpResponse::serialize() const {
  std::string out = serialize_headers();
  if (head_only) return out;
  const std::string_view bytes = file ? std::string_view(file->bytes) : body;
  if (!chunked) {
    out.reserve(out.size() + bytes.size());
    out += bytes;
    return out;
  }
  // Chunk framing with the same windows encode_reply uses, so copy and
  // writev send paths emit bit-identical streams.  Exact reserve: per
  // window a hex size line + CRLF, the data, a CRLF; then "0\r\n\r\n".
  const size_t window = chunk_bytes == 0 ? bytes.size() : chunk_bytes;
  size_t framed = 5 /* last chunk */;
  for (size_t at = 0; at < bytes.size(); at += window) {
    const size_t take = std::min(window, bytes.size() - at);
    framed += hex_digits_of(take) + 2 + take + 2;
  }
  out.reserve(out.size() + framed);
  for (size_t at = 0; at < bytes.size(); at += window) {
    const size_t take = std::min(window, bytes.size() - at);
    append_hex(out, take);
    out += "\r\n";
    out.append(bytes.data() + at, take);
    out += "\r\n";
  }
  out += "0\r\n\r\n";
  return out;
}

HttpResponse make_error_response(StatusCode status, bool keep_alive) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::string("<html><head><title>") +
              std::to_string(static_cast<int>(status)) + " " +
              reason_phrase(status) + "</title></head><body><h1>" +
              std::to_string(static_cast<int>(status)) + " " +
              reason_phrase(status) + "</h1></body></html>\n";
  resp.set_header("Content-Type", "text/html");
  resp.set_header("Connection", keep_alive ? "keep-alive" : "close");
  return resp;
}

}  // namespace cops::http
