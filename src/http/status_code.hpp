// HTTP status codes and reason phrases.
#pragma once

namespace cops::http {

enum class StatusCode : int {
  kContinue = 100,
  kOk = 200,
  kNoContent = 204,
  kMovedPermanently = 301,
  kNotModified = 304,
  kBadRequest = 400,
  kForbidden = 403,
  kNotFound = 404,
  kMethodNotAllowed = 405,
  kRequestTimeout = 408,
  kPayloadTooLarge = 413,
  kExpectationFailed = 417,
  kUriTooLong = 414,
  kInternalServerError = 500,
  kNotImplemented = 501,
  kBadGateway = 502,
  kServiceUnavailable = 503,
  kGatewayTimeout = 504,
  kHttpVersionNotSupported = 505,
};

[[nodiscard]] constexpr const char* reason_phrase(StatusCode code) {
  switch (code) {
    case StatusCode::kContinue: return "Continue";
    case StatusCode::kOk: return "OK";
    case StatusCode::kNoContent: return "No Content";
    case StatusCode::kMovedPermanently: return "Moved Permanently";
    case StatusCode::kNotModified: return "Not Modified";
    case StatusCode::kBadRequest: return "Bad Request";
    case StatusCode::kForbidden: return "Forbidden";
    case StatusCode::kNotFound: return "Not Found";
    case StatusCode::kMethodNotAllowed: return "Method Not Allowed";
    case StatusCode::kRequestTimeout: return "Request Timeout";
    case StatusCode::kPayloadTooLarge: return "Payload Too Large";
    case StatusCode::kExpectationFailed: return "Expectation Failed";
    case StatusCode::kUriTooLong: return "URI Too Long";
    case StatusCode::kInternalServerError: return "Internal Server Error";
    case StatusCode::kNotImplemented: return "Not Implemented";
    case StatusCode::kBadGateway: return "Bad Gateway";
    case StatusCode::kServiceUnavailable: return "Service Unavailable";
    case StatusCode::kGatewayTimeout: return "Gateway Timeout";
    case StatusCode::kHttpVersionNotSupported:
      return "HTTP Version Not Supported";
  }
  return "Unknown";
}

}  // namespace cops::http
