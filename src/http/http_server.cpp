#include "http/http_server.hpp"

#include <filesystem>

#include "common/clock.hpp"
#include "http/mime.hpp"
#include "http/http_date.hpp"

namespace cops::http {

nserver::DecodeResult HttpAppHooks::decode(nserver::RequestContext& ctx,
                                           ByteBuffer& in) {
  // buffer_mgmt (S2): pooled reuses the connection's scratch request and
  // hands Handle a pointer (zero steady-state allocations per keep-alive
  // request); per_request builds a fresh HttpRequest and moves it through
  // the std::any, as the original COPS-HTTP did.
  const bool pooled = ctx.buffer_mgmt() == nserver::BufferMgmt::kPooled;
  // The connection state also carries the 100-continue latch, so it exists
  // in both buffer modes; per_request simply leaves `scratch` unused.
  auto& any_state = ctx.app_state();
  if (!any_state) any_state = std::make_shared<HttpConnState>();
  auto* state = static_cast<HttpConnState*>(any_state.get());
  HttpRequest local;
  HttpRequest* request = pooled ? &state->scratch : &local;
  ParseEvents events;
  switch (parse_request(in, *request, ParseLimits{}, events)) {
    case ParseOutcome::kIncomplete:
      // RFC 7231 §5.1.1: the header block said "Expect: 100-continue" and
      // the body is still in flight — answer with the interim status (once)
      // so a conforming client stops holding the body back.
      if (events.needs_continue && !state->continue_sent) {
        state->continue_sent = true;
        ctx.send("HTTP/1.1 100 Continue\r\n\r\n");
      }
      return nserver::DecodeResult::need_more();
    case ParseOutcome::kMalformed:
      return nserver::DecodeResult::error();
    case ParseOutcome::kReject:
      // Deterministic protocol rejection (bad Content-Length, oversize
      // body, CL+TE conflict, non-chunked Transfer-Encoding, obs-fold,
      // malformed chunk framing, unsupported Expect) — answered with a
      // status reply and a close so no smuggled follow-up bytes are ever
      // interpreted.
      return nserver::DecodeResult::reject(
          make_error_response(events.reject_status, /*keep_alive=*/false));
    case ParseOutcome::kComplete:
      state->continue_sent = false;
      break;
  }
  if (config_.decode_delay.count() > 0) {
    spend(config_.decode_delay);
  }
  int priority = 0;
  if (config_.priority_classifier) {
    priority = config_.priority_classifier(*request);
  }
  if (pooled) {
    return nserver::DecodeResult::request_ready(std::any(request), priority);
  }
  return nserver::DecodeResult::request_ready(std::move(local), priority);
}

void HttpAppHooks::reply_error(nserver::RequestContext& ctx, StatusCode status,
                               bool keep_alive) {
  if (!keep_alive) ctx.close_after_reply();
  ctx.reply(make_error_response(status, keep_alive));
}

void HttpAppHooks::handle(nserver::RequestContext& ctx, std::any request) {
  // Pooled decode passes a pointer to the connection's scratch request;
  // per_request passes the HttpRequest by value.
  HttpRequest moved;
  const HttpRequest* reqp;
  if (auto* pp = std::any_cast<HttpRequest*>(&request)) {
    reqp = *pp;
  } else {
    moved = std::any_cast<HttpRequest>(std::move(request));
    reqp = &moved;
  }
  const HttpRequest& req = *reqp;
  const bool keep_alive = req.keep_alive();

  // O9 shed tier: while overloaded, answer with an explicit 503 instead of
  // queueing the work — a fast, countable overload signal for upstream load
  // balancers and retrying clients.
  if (ctx.should_shed()) {
    ctx.note_shed();
    auto resp = make_error_response(StatusCode::kServiceUnavailable,
                                    keep_alive);
    resp.set_header("Retry-After",
                    std::to_string(ctx.shed_retry_after().count()));
    if (!keep_alive) ctx.close_after_reply();
    ctx.reply(std::move(resp));
    return;
  }

  // Modeled Handle cost — after the shed check on purpose: admitted
  // requests pay it, shed ones don't, so shedding actually unloads the
  // bottleneck in both real and simulated overload experiments.
  if (config_.handle_delay.count() > 0) {
    spend(config_.handle_delay);
  }

  if (req.method != Method::kGet && req.method != Method::kHead) {
    reply_error(ctx, StatusCode::kMethodNotAllowed, keep_alive);
    return;
  }
  if (req.path.empty()) {
    reply_error(ctx, StatusCode::kForbidden, keep_alive);
    return;
  }
  std::string path = req.path;
  if (!config_.status_endpoint.empty() && path == config_.status_endpoint) {
    const auto snapshot = ctx.server_profile();
    HttpResponse status_page;
    status_page.status = StatusCode::kOk;
    status_page.body =
        "COPS-HTTP server status\n=======================\n" +
        snapshot.to_string() + "\nopen_connections=" +
        std::to_string(ctx.server_connection_count()) + "\nresponses_sent=" +
        std::to_string(responses_.load()) + "\n";
    status_page.set_header("Content-Type", "text/plain");
    status_page.set_header("Connection", keep_alive ? "keep-alive" : "close");
    if (!keep_alive) ctx.close_after_reply();
    ctx.reply(std::move(status_page));
    return;
  }
  if (config_.auto_index && maybe_serve_directory(ctx, path, keep_alive)) {
    return;
  }
  if (path.back() == '/') path += config_.index_file;
  const std::string fs_path = config_.doc_root + path;

  const bool head_only = req.method == Method::kHead;
  // Body framing (S3): chunked replies are an HTTP/1.1-only coding, and
  // only worth the framing overhead for bodies past the threshold; HEAD
  // replies have no body to frame.  The actual size check waits for the
  // fetch below.
  const bool allow_chunked =
      ctx.body_framing() == nserver::BodyFraming::kChunked && !head_only &&
      req.version_major == 1 && req.version_minor >= 1;
  // Conditional GET: a valid If-Modified-Since newer than the file yields
  // 304 Not Modified (no body) — the cache-friendly path browsers use.
  int64_t if_modified_since = -1;
  if (auto header = req.header("if-modified-since")) {
    if_modified_since = parse_http_date(std::string(*header));
  }
  ctx.fetch_file(
      fs_path, [this, keep_alive, head_only, allow_chunked, path,
                if_modified_since](nserver::RequestContext& ctx,
                                   Result<nserver::FileDataPtr> file) {
        if (!file.is_ok()) {
          reply_error(ctx, StatusCode::kNotFound, keep_alive);
          return;
        }
        if (if_modified_since >= 0 &&
            file.value()->mtime_seconds <= if_modified_since) {
          HttpResponse not_modified;
          not_modified.status = StatusCode::kNotModified;
          not_modified.set_header("Last-Modified",
                                  format_http_date(
                                      file.value()->mtime_seconds));
          not_modified.set_header("Connection",
                                  keep_alive ? "keep-alive" : "close");
          if (!keep_alive) ctx.close_after_reply();
          ctx.reply(std::move(not_modified));
          return;
        }
        HttpResponse resp;
        resp.status = StatusCode::kOk;
        resp.file = file.value();
        resp.head_only = head_only;
        resp.set_header("Content-Type", std::string(mime_type_for(path)));
        if (allow_chunked &&
            file.value()->size() >= ctx.chunked_min_bytes()) {
          resp.chunked = true;
          resp.chunk_bytes = ctx.reply_chunk_bytes();
        } else {
          resp.set_header("Content-Length",
                          std::to_string(file.value()->size()));
        }
        resp.set_header("Last-Modified",
                        format_http_date(file.value()->mtime_seconds));
        resp.set_header("Connection", keep_alive ? "keep-alive" : "close");
        if (!keep_alive) ctx.close_after_reply();
        ctx.reply(std::move(resp));
      });
}

bool HttpAppHooks::maybe_serve_directory(nserver::RequestContext& ctx,
                                         const std::string& path,
                                         bool keep_alive) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const std::string fs_path = config_.doc_root + path;
  if (!fs::is_directory(fs_path, ec) || ec) return false;

  // Directory without trailing slash: redirect so relative links resolve.
  if (path.back() != '/') {
    HttpResponse redirect;
    redirect.status = StatusCode::kMovedPermanently;
    redirect.set_header("Location", path + "/");
    redirect.set_header("Content-Type", "text/html");
    redirect.set_header("Connection", keep_alive ? "keep-alive" : "close");
    redirect.body = "<html><body>moved <a href=\"" + path + "/\">here</a>"
                    "</body></html>\n";
    if (!keep_alive) ctx.close_after_reply();
    ctx.reply(std::move(redirect));
    return true;
  }
  // With an index file present, fall through to normal file serving.
  if (fs::exists(fs_path + config_.index_file, ec) && !ec) return false;

  std::string body = "<html><head><title>Index of " + path +
                     "</title></head><body><h1>Index of " + path +
                     "</h1><ul>\n";
  for (auto it = fs::directory_iterator(fs_path, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const bool is_dir = it->is_directory(ec);
    body += "<li><a href=\"" + name + (is_dir ? "/" : "") + "\">" + name +
            (is_dir ? "/" : "") + "</a></li>\n";
  }
  body += "</ul></body></html>\n";
  HttpResponse listing;
  listing.status = StatusCode::kOk;
  listing.body = std::move(body);
  listing.set_header("Content-Type", "text/html");
  listing.set_header("Connection", keep_alive ? "keep-alive" : "close");
  if (!keep_alive) ctx.close_after_reply();
  ctx.reply(std::move(listing));
  return true;
}

std::string HttpAppHooks::encode(nserver::RequestContext& /*ctx*/,
                                 std::any response) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  return std::any_cast<HttpResponse>(std::move(response)).serialize();
}

EncodedReply HttpAppHooks::encode_reply(nserver::RequestContext& ctx,
                                                 std::any response) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  const HttpResponse resp = std::any_cast<HttpResponse>(std::move(response));
  // Inline bodies (errors, listings, 304s) and HEAD replies are small; one
  // flat buffer is the right shape for them on every send path.
  if (ctx.send_path() == nserver::SendPath::kCopy || resp.head_only ||
      !resp.file || resp.file->size() == 0) {
    return EncodedReply::from_string(resp.serialize());
  }
  EncodedReply reply;
  reply.add_owned(resp.serialize_headers());
  if (resp.chunked) {
    // Chunk-framed body (S3): the ~10-byte size/CRLF framing lines are
    // owned segments, the body windows stay refcounted cache slices or
    // sendfile ranges — zero-copy is preserved, and the windows match
    // serialize()'s so every send path emits identical bytes.
    if (resp.file->fd >= 0) {
      reply.add_file_chunked(resp.file, resp.file->fd, 0, resp.file->fd_size,
                             resp.chunk_bytes);
    } else {
      reply.add_shared_chunked(resp.file, resp.file->bytes.data(),
                               resp.file->bytes.size(), resp.chunk_bytes);
    }
    reply.add_last_chunk();
    return reply;
  }
  if (resp.file->fd >= 0) {
    // Large uncached file opened for sendfile: the kernel moves the bytes.
    reply.add_file(resp.file, resp.file->fd, 0, resp.file->fd_size);
  } else {
    // Cached file: gather the cache's bytes directly — no body copy.  The
    // FileDataPtr keepalive pins the snapshot past cache eviction.
    reply.add_shared(resp.file, resp.file->bytes.data(),
                     resp.file->bytes.size());
  }
  return reply;
}

nserver::ServerOptions CopsHttpServer::default_options() {
  nserver::ServerOptions options;
  options.dispatcher_threads = 1;                                  // O1
  options.separate_processor_pool = true;                          // O2
  options.processor_threads = 2;
  options.encode_decode = true;                                    // O3
  options.completion = nserver::CompletionMode::kAsynchronous;     // O4
  options.thread_allocation = nserver::ThreadAllocation::kStatic;  // O5
  options.cache_policy = nserver::CachePolicyKind::kLru;           // O6
  options.cache_capacity_bytes = 20 * 1024 * 1024;
  options.shutdown_long_idle = false;                              // O7
  options.event_scheduling = false;                                // O8
  options.overload_control = false;                                // O9
  options.mode = nserver::ServerMode::kProduction;                 // O10
  options.profiling = false;                                       // O11
  options.logging = false;                                         // O12
  options.send_path = nserver::SendPath::kWritev;  // zero-copy reply path
  options.buffer_mgmt = nserver::BufferMgmt::kPooled;  // S2: recycle buffers
  // S3: length-framed replies — the static-content default.  Chunked reply
  // framing is opt-in (streaming/proxy deployments); chunked *request*
  // decoding is unconditional.
  options.body_framing = nserver::BodyFraming::kContentLength;
  return options;
}

CopsHttpServer::CopsHttpServer(nserver::ServerOptions options,
                               HttpServerConfig config)
    : hooks_(std::make_shared<HttpAppHooks>(std::move(config))),
      server_(std::move(options), hooks_) {}

}  // namespace cops::http
