#include "http/response_parser.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace cops::http {

namespace {

char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

void lower_into(std::string_view in, std::string& out) {
  out.clear();
  out.reserve(in.size());
  for (const char c : in) out.push_back(lower(c));
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Scans a comma-separated token list for `token`, case-insensitively.
bool token_list_contains(std::string_view list, std::string_view token) {
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    if (iequals(trim_ows(list.substr(pos, comma - pos)), token)) return true;
    pos = comma + 1;
  }
  return false;
}

// RFC 7230 token characters — what a header field name may contain.
bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

// Start lines and header values are forwarded verbatim by the relay, so a
// raw control byte here (bare CR, bare LF, NUL) is a response-splitting /
// header-injection vector clientward or upstream.  RFC 7230 permits HTAB,
// SP, VCHAR, and obs-text — nothing else.
bool sane_field_bytes(std::string_view s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if ((u < 0x20 && c != '\t') || u == 0x7f) return false;
  }
  return true;
}

bool parse_decimal(std::string_view digits, uint64_t* out) {
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    if (value > (std::numeric_limits<int64_t>::max() - (c - '0')) / 10) {
      return false;  // would overflow int64 — reject, never wrap
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Splits the header block (between the start line and the blank line) into
// fields.  Returns false on any untrustworthy shape: obs-fold
// continuations, names with illegal characters or surrounding whitespace,
// or a line without a colon.
bool parse_header_block(std::string_view block, MessageHead& out) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return false;  // obs-fold: a smuggling vector, never merged
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = line.substr(0, colon);
    for (const char c : name) {
      if (!is_token_char(c)) return false;  // catches "Name : v" smuggling
    }
    const std::string_view value = trim_ows(line.substr(colon + 1));
    if (!sane_field_bytes(value)) return false;
    HeaderField field;
    field.name.assign(name);
    lower_into(name, field.lname);
    field.value.assign(value);
    out.headers.push_back(std::move(field));
  }
  return true;
}

// Framing headers shared by both directions.  Returns false when they are
// contradictory or unparseable (CL+TE, duplicate/non-numeric CL, TE other
// than exactly "chunked", TE on HTTP/1.0).
bool resolve_framing(MessageHead& head, bool* has_cl, bool* has_te) {
  *has_cl = false;
  *has_te = false;
  for (const auto& field : head.headers) {
    if (field.lname == "content-length") {
      uint64_t value = 0;
      if (*has_cl || !parse_decimal(field.value, &value)) return false;
      *has_cl = true;
      head.content_length = value;
    } else if (field.lname == "transfer-encoding") {
      if (*has_te) return false;
      if (!iequals(trim_ows(field.value), "chunked")) return false;
      if (!head.http11) return false;  // TE predates HTTP/1.1: reject
      *has_te = true;
    }
  }
  if (*has_cl && *has_te) return false;  // RFC 7230 §3.3.3 smuggling vector
  return true;
}

void resolve_keep_alive(MessageHead& head) {
  head.keep_alive = head.http11;
  if (head.connection_token("close")) {
    head.keep_alive = false;
  } else if (!head.http11 && head.connection_token("keep-alive")) {
    head.keep_alive = true;
  }
}

// Locates the head (start line + header block + blank line) at the front of
// `in`.  kNeedMore while the terminator hasn't arrived and the block is
// still within bounds.
HeadParseStatus locate_head(const ByteBuffer& in, const ParseLimits& limits,
                            size_t* head_end) {
  const size_t terminator = in.find("\r\n\r\n");
  if (terminator == std::string::npos) {
    return in.readable() > limits.max_header_bytes ? HeadParseStatus::kMalformed
                                                   : HeadParseStatus::kNeedMore;
  }
  if (terminator + 4 > limits.max_header_bytes) {
    return HeadParseStatus::kMalformed;
  }
  *head_end = terminator + 4;
  return HeadParseStatus::kOk;
}

}  // namespace

void MessageHead::reset() {
  headers.clear();
  http11 = true;
  delim = BodyDelim::kNone;
  content_length = 0;
  keep_alive = true;
  status = 0;
  status_line.clear();
  method.clear();
  target.clear();
  expect_continue = false;
}

const std::string* MessageHead::find(std::string_view lname) const {
  for (const auto& field : headers) {
    if (field.lname == lname) return &field.value;
  }
  return nullptr;
}

bool MessageHead::connection_token(std::string_view token) const {
  for (const auto& field : headers) {
    if (field.lname == "connection" &&
        token_list_contains(field.value, token)) {
      return true;
    }
  }
  return false;
}

HeadParseStatus parse_response_head(ByteBuffer& in, MessageHead& out,
                                    const ParseLimits& limits,
                                    bool head_request) {
  out.reset();
  size_t head_end = 0;
  const auto located = locate_head(in, limits, &head_end);
  if (located != HeadParseStatus::kOk) return located;
  const std::string_view head = in.view().substr(0, head_end);

  size_t line_end = head.find("\r\n");
  const std::string_view line = head.substr(0, line_end);
  // Status line: HTTP/1.<0|1> SP 3DIGIT [SP reason].  Anything else means
  // the peer is not speaking trustworthy HTTP/1.x — kMalformed, no repair.
  if (line.size() < 12 || line.substr(0, 7) != "HTTP/1." ||
      (line[7] != '0' && line[7] != '1') || line[8] != ' ') {
    return HeadParseStatus::kMalformed;
  }
  const std::string_view code = line.substr(9, 3);
  if (code.size() != 3 ||
      !std::all_of(code.begin(), code.end(),
                   [](char c) { return c >= '0' && c <= '9'; })) {
    return HeadParseStatus::kMalformed;
  }
  if (line.size() > 12 && line[12] != ' ') {
    return HeadParseStatus::kMalformed;  // "HTTP/1.1 200OK"
  }
  if (!sane_field_bytes(line)) {
    return HeadParseStatus::kMalformed;  // control bytes in the reason phrase
  }
  out.http11 = line[7] == '1';
  out.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  out.status_line.assign(line);

  if (!parse_header_block(head.substr(line_end + 2, head_end - line_end - 4),
                          out)) {
    return HeadParseStatus::kMalformed;
  }
  bool has_cl = false;
  bool has_te = false;
  if (!resolve_framing(out, &has_cl, &has_te)) {
    return HeadParseStatus::kMalformed;
  }
  const bool bodiless = head_request || out.status / 100 == 1 ||
                        out.status == 204 || out.status == 304;
  if (bodiless) {
    out.delim = BodyDelim::kNone;
  } else if (has_te) {
    out.delim = BodyDelim::kChunked;
  } else if (has_cl) {
    out.delim = BodyDelim::kContentLength;
  } else {
    out.delim = BodyDelim::kToClose;
  }
  resolve_keep_alive(out);
  if (out.delim == BodyDelim::kToClose) out.keep_alive = false;
  in.consume(head_end);
  return HeadParseStatus::kOk;
}

HeadParseStatus parse_request_head(ByteBuffer& in, MessageHead& out,
                                   const ParseLimits& limits,
                                   StatusCode* reject_status) {
  out.reset();
  *reject_status = StatusCode::kBadRequest;
  size_t head_end = 0;
  const auto located = locate_head(in, limits, &head_end);
  if (located != HeadParseStatus::kOk) return located;
  const std::string_view head = in.view().substr(0, head_end);

  size_t line_end = head.find("\r\n");
  const std::string_view line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HeadParseStatus::kMalformed;
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version.size() != 8 || version.substr(0, 7) != "HTTP/1." ||
      (version[7] != '0' && version[7] != '1')) {
    return HeadParseStatus::kMalformed;
  }
  out.method.assign(line.substr(0, sp1));
  for (const char c : out.method) {
    if (!is_token_char(c)) return HeadParseStatus::kMalformed;
  }
  out.target.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (!sane_field_bytes(out.target)) {
    return HeadParseStatus::kMalformed;  // control bytes relay upstream
  }
  out.http11 = version[7] == '1';

  if (!parse_header_block(head.substr(line_end + 2, head_end - line_end - 4),
                          out)) {
    return HeadParseStatus::kMalformed;
  }
  bool has_cl = false;
  bool has_te = false;
  if (!resolve_framing(out, &has_cl, &has_te)) {
    // Preserve the server's answer shape: a Transfer-Encoding we cannot
    // relay is 501 (kNotImplemented territory only when it parses as a
    // non-chunked coding); every contradictory/duplicate framing is 400.
    const std::string* te = out.find("transfer-encoding");
    if (te != nullptr && !has_cl &&
        !iequals(trim_ows(*te), "chunked")) {
      *reject_status = StatusCode::kNotImplemented;
    }
    return HeadParseStatus::kMalformed;
  }
  if (has_te) {
    out.delim = BodyDelim::kChunked;
  } else if (has_cl && out.content_length > 0) {
    out.delim = BodyDelim::kContentLength;
  } else {
    out.delim = BodyDelim::kNone;
  }
  const std::string* expect = out.find("expect");
  if (expect != nullptr) {
    if (!iequals(trim_ows(*expect), "100-continue")) {
      *reject_status = StatusCode::kExpectationFailed;
      return HeadParseStatus::kMalformed;
    }
    out.expect_continue = out.http11 && out.delim != BodyDelim::kNone;
  }
  resolve_keep_alive(out);
  in.consume(head_end);
  return HeadParseStatus::kOk;
}

bool is_hop_by_hop(std::string_view lname, const MessageHead& head) {
  if (lname == "connection" || lname == "keep-alive" || lname == "te" ||
      lname == "trailer" || lname == "transfer-encoding" ||
      lname == "upgrade" || lname == "proxy-connection" ||
      lname == "proxy-authenticate" || lname == "proxy-authorization") {
    return true;
  }
  // Anything the Connection header names is hop-by-hop too.
  return head.connection_token(lname);
}

ChunkPassthrough::Status ChunkPassthrough::feed(std::string_view input,
                                                size_t* consumed) {
  // Lift the body-size policy out of the way: a relay enforces framing, not
  // a body budget — only hex chunk-size overflow may fire kTooLarge here.
  ParseLimits limits;
  limits.max_body_bytes = std::numeric_limits<size_t>::max() / 2;
  scratch_.clear();
  return decoder_.feed(input, consumed, scratch_, limits);
}

void ChunkPassthrough::reset() {
  decoder_.reset();
  scratch_.clear();
}

}  // namespace cops::http
