// RFC 7231 (IMF-fixdate) date formatting, e.g. "Sun, 06 Nov 1994 08:49:37 GMT".
#pragma once

#include <cstdint>
#include <string>

namespace cops::http {

// Formats a UNIX timestamp; `now_http_date()` uses the current time (cached
// per second — a Date header is emitted on every reply, and strftime on the
// hot path would be a measurable cost).
[[nodiscard]] std::string format_http_date(int64_t unix_seconds);
[[nodiscard]] std::string now_http_date();

// Parses an IMF-fixdate ("Sun, 06 Nov 1994 08:49:37 GMT") back to a UNIX
// timestamp; -1 on malformed input.  Used for If-Modified-Since.
[[nodiscard]] int64_t parse_http_date(const std::string& value);

}  // namespace cops::http
