// RFC 7231 §7.1.1.1 HTTP dates, e.g. "Sun, 06 Nov 1994 08:49:37 GMT".
//
// Formatting always emits IMF-fixdate; parsing accepts all three formats a
// recipient MUST support (IMF-fixdate, obsolete RFC 850, obsolete asctime).
// Both directions use fixed English month/day tables — never strftime %a/%b
// or strptime — because those are locale-dependent: under a non-C locale a
// server would emit "Son, 06 Nov ..." (German) and fail to parse the dates
// every other server sends.
#pragma once

#include <cstdint>
#include <string>

namespace cops::http {

// IMF-fixdate is fixed-width: "Sun, 06 Nov 1994 08:49:37 GMT" is always
// 29 bytes.  Lets the serializer reserve exactly.
inline constexpr std::size_t kHttpDateLength = 29;

// Formats a UNIX timestamp; `now_http_date()` uses the current time (cached
// per second — a Date header is emitted on every reply, and formatting on
// the hot path would be a measurable cost).
[[nodiscard]] std::string format_http_date(int64_t unix_seconds);
[[nodiscard]] std::string now_http_date();

// Parses any of the three RFC 7231 date formats back to a UNIX timestamp;
// -1 on malformed input.  Used for If-Modified-Since.
[[nodiscard]] int64_t parse_http_date(const std::string& value);

}  // namespace cops::http
