#include "http/mime.hpp"

#include <unordered_map>

#include "common/string_util.hpp"

namespace cops::http {

std::string_view mime_type_for(std::string_view path) {
  static const std::unordered_map<std::string, std::string_view> kTypes = {
      {"html", "text/html"},
      {"htm", "text/html"},
      {"txt", "text/plain"},
      {"css", "text/css"},
      {"js", "application/javascript"},
      {"json", "application/json"},
      {"xml", "application/xml"},
      {"png", "image/png"},
      {"jpg", "image/jpeg"},
      {"jpeg", "image/jpeg"},
      {"gif", "image/gif"},
      {"svg", "image/svg+xml"},
      {"ico", "image/x-icon"},
      {"pdf", "application/pdf"},
      {"zip", "application/zip"},
      {"gz", "application/gzip"},
      {"tar", "application/x-tar"},
      {"mp4", "video/mp4"},
      {"mp3", "audio/mpeg"},
      {"wasm", "application/wasm"},
  };
  const size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return "application/octet-stream";
  const auto ext = cops::to_lower(path.substr(dot + 1));
  auto it = kTypes.find(ext);
  return it == kTypes.end() ? "application/octet-stream" : it->second;
}

}  // namespace cops::http
