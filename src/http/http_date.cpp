#include "http/http_date.hpp"

#include <cstdio>
#include <ctime>
#include <mutex>
#include <string_view>

#include "common/clock.hpp"

namespace cops::http {
namespace {

// Fixed English tables (RFC 7231 dates are locale-invariant by definition).
constexpr const char* kDays[7] = {"Sun", "Mon", "Tue", "Wed",
                                  "Thu", "Fri", "Sat"};
constexpr const char* kDaysLong[7] = {"Sunday",   "Monday", "Tuesday",
                                      "Wednesday", "Thursday", "Friday",
                                      "Saturday"};
constexpr const char* kMonths[12] = {"Jan", "Feb", "Mar", "Apr",
                                     "May", "Jun", "Jul", "Aug",
                                     "Sep", "Oct", "Nov", "Dec"};

int month_number(std::string_view token) {
  for (int m = 0; m < 12; ++m) {
    if (token == kMonths[m]) return m;
  }
  return -1;
}

bool known_day_name(std::string_view token) {
  for (const char* day : kDays) {
    if (token == day) return true;
  }
  return false;
}

bool known_long_day_name(std::string_view token) {
  for (const char* day : kDaysLong) {
    if (token == day) return true;
  }
  return false;
}

// Consumes exactly `digits` ASCII digits from the front of `in` into `out`.
bool eat_digits(std::string_view& in, size_t digits, int& out) {
  if (in.size() < digits) return false;
  int value = 0;
  for (size_t i = 0; i < digits; ++i) {
    const char c = in[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  in.remove_prefix(digits);
  out = value;
  return true;
}

bool eat_literal(std::string_view& in, std::string_view literal) {
  if (in.substr(0, literal.size()) != literal) return false;
  in.remove_prefix(literal.size());
  return true;
}

// HH:MM:SS with range checks (timegm would silently normalize 25:61:61).
bool eat_time(std::string_view& in, tm& out) {
  int hour = 0;
  int minute = 0;
  int second = 0;
  if (!eat_digits(in, 2, hour) || !eat_literal(in, ":") ||
      !eat_digits(in, 2, minute) || !eat_literal(in, ":") ||
      !eat_digits(in, 2, second)) {
    return false;
  }
  if (hour > 23 || minute > 59 || second > 59) return false;
  out.tm_hour = hour;
  out.tm_min = minute;
  out.tm_sec = second;
  return true;
}

int64_t finish(tm& parsed, int day, int month, int year) {
  if (day < 1 || day > 31) return -1;
  parsed.tm_mday = day;
  parsed.tm_mon = month;
  parsed.tm_year = year - 1900;
  const time_t t = ::timegm(&parsed);
  return t < 0 ? -1 : static_cast<int64_t>(t);
}

// IMF-fixdate after the "Sun, " prefix: "06 Nov 1994 08:49:37 GMT".
int64_t parse_imf_fixdate(std::string_view rest) {
  tm parsed{};
  int day = 0;
  int year = 0;
  if (!eat_digits(rest, 2, day) || !eat_literal(rest, " ")) return -1;
  const int month = month_number(rest.substr(0, 3));
  if (month < 0) return -1;
  rest.remove_prefix(3);
  if (!eat_literal(rest, " ") || !eat_digits(rest, 4, year) ||
      !eat_literal(rest, " ") || !eat_time(rest, parsed) ||
      !eat_literal(rest, " GMT") || !rest.empty()) {
    return -1;
  }
  return finish(parsed, day, month, year);
}

// RFC 850 after the "Sunday, " prefix: "06-Nov-94 08:49:37 GMT".
int64_t parse_rfc850(std::string_view rest) {
  tm parsed{};
  int day = 0;
  int year2 = 0;
  if (!eat_digits(rest, 2, day) || !eat_literal(rest, "-")) return -1;
  const int month = month_number(rest.substr(0, 3));
  if (month < 0) return -1;
  rest.remove_prefix(3);
  if (!eat_literal(rest, "-") || !eat_digits(rest, 2, year2) ||
      !eat_literal(rest, " ") || !eat_time(rest, parsed) ||
      !eat_literal(rest, " GMT") || !rest.empty()) {
    return -1;
  }
  // RFC 7231: a two-digit year that appears more than 50 years in the
  // future is in the past century.  The conventional pivot: 00-69 → 20xx.
  const int year = year2 < 70 ? 2000 + year2 : 1900 + year2;
  return finish(parsed, day, month, year);
}

// asctime: "Sun Nov  6 08:49:37 1994" (day-of-month space-padded).
int64_t parse_asctime(std::string_view value) {
  if (value.size() < 4 || !known_day_name(value.substr(0, 3))) return -1;
  std::string_view rest = value.substr(3);
  tm parsed{};
  int day = 0;
  int year = 0;
  if (!eat_literal(rest, " ")) return -1;
  const int month = month_number(rest.substr(0, 3));
  if (month < 0) return -1;
  rest.remove_prefix(3);
  if (!eat_literal(rest, " ")) return -1;
  if (eat_literal(rest, " ")) {  // " 6": single digit
    if (!eat_digits(rest, 1, day)) return -1;
  } else if (!eat_digits(rest, 2, day)) {
    return -1;
  }
  if (!eat_literal(rest, " ") || !eat_time(rest, parsed) ||
      !eat_literal(rest, " ") || !eat_digits(rest, 4, year) ||
      !rest.empty()) {
    return -1;
  }
  return finish(parsed, day, month, year);
}

}  // namespace

std::string format_http_date(int64_t unix_seconds) {
  const time_t t = static_cast<time_t>(unix_seconds);
  tm utc{};
  gmtime_r(&t, &utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02d %s %04d %02d:%02d:%02d GMT",
                kDays[utc.tm_wday], utc.tm_mday, kMonths[utc.tm_mon],
                utc.tm_year + 1900, utc.tm_hour, utc.tm_min, utc.tm_sec);
  return buf;
}

int64_t parse_http_date(const std::string& value) {
  const size_t comma = value.find(',');
  if (comma == std::string::npos) return parse_asctime(value);
  const std::string_view day_name(value.data(), comma);
  std::string_view rest(value);
  rest.remove_prefix(comma + 1);
  if (!eat_literal(rest, " ")) return -1;
  if (known_day_name(day_name)) return parse_imf_fixdate(rest);
  if (known_long_day_name(day_name)) return parse_rfc850(rest);
  return -1;
}

std::string now_http_date() {
  static std::mutex mutex;
  static time_t cached_second = 0;
  static std::string cached_value;
  const time_t t = static_cast<time_t>(cops::unix_now_seconds());
  std::lock_guard lock(mutex);
  if (t != cached_second) {
    cached_second = t;
    cached_value = format_http_date(static_cast<int64_t>(t));
  }
  return cached_value;
}

}  // namespace cops::http
