#include "http/http_date.hpp"

#include <ctime>
#include <mutex>

namespace cops::http {

std::string format_http_date(int64_t unix_seconds) {
  const time_t t = static_cast<time_t>(unix_seconds);
  tm utc{};
  gmtime_r(&t, &utc);
  char buf[64];
  std::strftime(buf, sizeof(buf), "%a, %d %b %Y %H:%M:%S GMT", &utc);
  return buf;
}

int64_t parse_http_date(const std::string& value) {
  tm parsed{};
  // strptime handles the fixed IMF format; reject trailing garbage.
  const char* end = ::strptime(value.c_str(), "%a, %d %b %Y %H:%M:%S GMT",
                               &parsed);
  if (end == nullptr || *end != '\0') return -1;
  const time_t t = ::timegm(&parsed);
  return t < 0 ? -1 : static_cast<int64_t>(t);
}

std::string now_http_date() {
  static std::mutex mutex;
  static time_t cached_second = 0;
  static std::string cached_value;
  const time_t t = ::time(nullptr);
  std::lock_guard lock(mutex);
  if (t != cached_second) {
    cached_second = t;
    cached_value = format_http_date(static_cast<int64_t>(t));
  }
  return cached_value;
}

}  // namespace cops::http
