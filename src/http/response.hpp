// HTTP response builder (the Encode Reply step's output format).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "http/status_code.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::http {

struct HttpResponse {
  StatusCode status = StatusCode::kOk;
  std::map<std::string, std::string> headers;
  // Body either inline or as a shared file snapshot (zero-copy from cache).
  std::string body;
  cops::nserver::FileDataPtr file;
  bool head_only = false;  // HEAD: emit headers, suppress body bytes

  void set_header(std::string name, std::string value) {
    headers[std::move(name)] = std::move(value);
  }
  [[nodiscard]] size_t body_size() const {
    return file ? file->size() : body.size();
  }

  // Serializes status line + headers + body.  Adds Content-Length, Server,
  // and Date headers if absent.
  [[nodiscard]] std::string serialize() const;
};

// Builds a simple HTML error page response.
[[nodiscard]] HttpResponse make_error_response(StatusCode status,
                                               bool keep_alive);

}  // namespace cops::http
