// HTTP response builder (the Encode Reply step's output format).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "http/status_code.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::http {

struct HttpResponse {
  StatusCode status = StatusCode::kOk;
  // Flat vector instead of std::map: a response carries a handful of headers,
  // and the send path serializes every one — insertion order with linear
  // replace-or-append beats tree allocation per header.
  std::vector<std::pair<std::string, std::string>> headers;
  // Body either inline or as a shared file snapshot (zero-copy from cache).
  std::string body;
  cops::nserver::FileDataPtr file;
  bool head_only = false;  // HEAD: emit headers, suppress body bytes
  // Chunked transfer coding (RFC 7230 §4.1): the header block advertises
  // "Transfer-Encoding: chunked" instead of Content-Length, and the body is
  // framed in windows of `chunk_bytes`.  Every send path — serialize() on
  // copy, segment framing in encode_reply on writev/sendfile — uses the
  // same windows, so the wire bytes are identical across send paths.
  bool chunked = false;
  size_t chunk_bytes = 64 * 1024;

  void set_header(std::string name, std::string value);
  [[nodiscard]] const std::string* find_header(std::string_view name) const;
  [[nodiscard]] size_t body_size() const {
    return file ? file->size() : body.size();
  }

  // Serializes status line + headers + the blank separator line.  Adds
  // Content-Length (or "Transfer-Encoding: chunked" when `chunked`), Server,
  // and Date headers if absent.  This is the owned prefix of a segmented
  // reply; the body rides as a refcounted slice.
  [[nodiscard]] std::string serialize_headers() const;

  // Serializes status line + headers + body into one flat buffer (the
  // send_path=copy format), chunk-framing the body when `chunked`.
  // Reserves the exact size up front.
  [[nodiscard]] std::string serialize() const;
};

// Builds a simple HTML error page response.
[[nodiscard]] HttpResponse make_error_response(StatusCode status,
                                               bool keep_alive);

}  // namespace cops::http
