// Streaming HTTP/1.x message-head parsing for the L7 proxy (src/proxy).
//
// The request parser in request_parser.hpp consumes a *complete* request —
// head and body — per call, which is exactly wrong for a streaming relay
// that must forward body bytes as they arrive.  This header provides the
// proxy's decode layer instead:
//
//   * parse_response_head() — one upstream response head, treated as
//     UNTRUSTED input (a compromised or buggy backend is a request-smuggling
//     vector): bad status lines, CL+TE combinations, duplicate or
//     non-numeric Content-Length, obs-fold continuations, and oversized
//     header blocks are all kMalformed, never guessed at.  The proxy maps
//     kMalformed to a 502 and poisons the upstream connection.
//   * parse_request_head() — the client side of the same contract, framing
//     detection only (the body streams through afterwards).
//   * ChunkPassthrough — validates chunked framing over the PR-6
//     ChunkedDecoder while the raw bytes are forwarded verbatim, so the
//     relayed stream is byte-identical to the origin's and still can't
//     smuggle malformed framing through the proxy.
//
// All three are deliberately in cops_http (not src/proxy) so the fuzz
// harness (tests/fuzz_parser_test.cpp) can hammer them with the corpus
// without linking the proxy's reactor machinery.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/byte_buffer.hpp"
#include "http/request_parser.hpp"

namespace cops::http {

// How the message body is delimited (RFC 7230 §3.3.3).
enum class BodyDelim {
  kNone,           // no body (HEAD reply, 1xx/204/304, bodiless request)
  kContentLength,  // exactly content_length bytes follow
  kChunked,        // chunked transfer coding follows
  kToClose,        // response only: body runs to connection close
};

enum class HeadParseStatus {
  kNeedMore,   // header block incomplete — feed more bytes
  kOk,         // head parsed and consumed from the buffer
  kMalformed,  // framing cannot be trusted; reject the message
};

// One parsed message head.  Header names keep their original casing in
// `name` for verbatim forwarding; `lname` is the lowercased lookup key.
struct HeaderField {
  std::string name;
  std::string lname;
  std::string value;
};

struct MessageHead {
  std::vector<HeaderField> headers;
  bool http11 = true;  // HTTP/1.1 (vs 1.0)
  BodyDelim delim = BodyDelim::kNone;
  uint64_t content_length = 0;
  bool keep_alive = true;  // version default adjusted by Connection tokens

  // Response-only:
  int status = 0;
  std::string status_line;  // verbatim, no CRLF — forwarded byte-identically

  // Request-only:
  std::string method;
  std::string target;
  bool expect_continue = false;

  void reset();
  // First value of header `lname` (must be passed lowercased), or nullptr.
  [[nodiscard]] const std::string* find(std::string_view lname) const;
  // True when `token` appears in the Connection header's token list
  // (case-insensitive).
  [[nodiscard]] bool connection_token(std::string_view token) const;
};

// Parses one response head from the front of `in`, consuming it on kOk.
// `head_request` marks a reply to a HEAD request (body suppressed
// regardless of framing headers).  kNeedMore consumes nothing.
HeadParseStatus parse_response_head(ByteBuffer& in, MessageHead& out,
                                    const ParseLimits& limits,
                                    bool head_request);

// Parses one request head from the front of `in`, consuming it on kOk.
// Same strictness as the server's parser for everything above the body:
// CL+TE, bad Content-Length, obs-fold, and non-"chunked" Transfer-Encoding
// are kMalformed (the proxy answers 400/501 per `reject_status`).
HeadParseStatus parse_request_head(ByteBuffer& in, MessageHead& out,
                                   const ParseLimits& limits,
                                   StatusCode* reject_status);

// True for header fields that are hop-by-hop (RFC 7230 §6.1) and must not
// be forwarded by a proxy: Connection and everything it names, Keep-Alive,
// TE, Trailer, Transfer-Encoding*, Upgrade, Proxy-Connection,
// Proxy-Authenticate, Proxy-Authorization.  (*Transfer-Encoding is re-added
// by the relay itself when it passes chunked framing through.)
[[nodiscard]] bool is_hop_by_hop(std::string_view lname,
                                 const MessageHead& head);

// Chunked-framing validator for pass-through relays.  feed() reports via
// `*consumed` how many raw input bytes belong to the current chunked
// message and are safe to forward verbatim; decoded bytes are discarded
// (constant memory — this never buffers a body).  Only framing violations
// fire: the decoder's body-size limit is lifted to its maximum, so
// kTooLarge means a hex chunk-size overflow, not a policy limit.
class ChunkPassthrough {
 public:
  using Status = ChunkedDecoder::Status;

  Status feed(std::string_view input, size_t* consumed);
  void reset();

  [[nodiscard]] uint64_t decoded_bytes() const {
    return decoder_.decoded_bytes();
  }

 private:
  ChunkedDecoder decoder_;
  std::string scratch_;
};

}  // namespace cops::http
