// HTTP method enumeration.
#pragma once

#include <optional>
#include <string_view>

namespace cops::http {

enum class Method { kGet, kHead, kPost, kPut, kDelete, kOptions, kTrace };

[[nodiscard]] constexpr const char* to_string(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
    case Method::kPut: return "PUT";
    case Method::kDelete: return "DELETE";
    case Method::kOptions: return "OPTIONS";
    case Method::kTrace: return "TRACE";
  }
  return "?";
}

[[nodiscard]] inline std::optional<Method> parse_method(std::string_view s) {
  if (s == "GET") return Method::kGet;
  if (s == "HEAD") return Method::kHead;
  if (s == "POST") return Method::kPost;
  if (s == "PUT") return Method::kPut;
  if (s == "DELETE") return Method::kDelete;
  if (s == "OPTIONS") return Method::kOptions;
  if (s == "TRACE") return Method::kTrace;
  return std::nullopt;
}

}  // namespace cops::http
