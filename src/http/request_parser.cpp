#include "http/request_parser.hpp"

#include <algorithm>
#include <cstdint>

#include "common/string_util.hpp"

namespace cops::http {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_request_line(std::string_view line, HttpRequest& out) {
  // METHOD SP request-target SP HTTP/x.y
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return false;
  auto method = parse_method(line.substr(0, sp1));
  if (!method) return false;
  out.method = *method;
  const std::string_view target = cops::trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.target.assign(target);
  if (out.target.empty()) return false;
  auto version = line.substr(sp2 + 1);
  if (!cops::starts_with(version, "HTTP/") || version.size() != 8 ||
      version[6] != '.') {
    return false;
  }
  if (version[5] < '0' || version[5] > '9' || version[7] < '0' ||
      version[7] > '9') {
    return false;
  }
  out.version_major = version[5] - '0';
  out.version_minor = version[7] - '0';

  // Split target into path + query.
  const size_t q = target.find('?');
  const std::string_view raw_path =
      q == std::string_view::npos ? target : target.substr(0, q);
  if (q == std::string_view::npos) {
    out.query.clear();
  } else {
    out.query.assign(target.substr(q + 1));
  }
  if (!sanitize_path_into(raw_path, out.path)) out.path.clear();
  return true;
}

bool parse_header_line(std::string_view line, HttpRequest& out) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = cops::trim(line.substr(0, colon));
  const std::string_view value = cops::trim(line.substr(colon + 1));
  const size_t existing = out.headers.find_index(name);
  if (existing == HeaderMap::npos) {
    out.headers.add(name, value);
    return true;
  }
  // RFC 7230 §5.4: more than one Host field is unambiguously malformed —
  // routing and caching decisions must not depend on which one a proxy in
  // front of us happened to pick.
  if (cops::iequals(name, "host")) return false;
  // RFC 7230 §3.3.3: repeated Content-Length is a request-smuggling
  // vector unless every value is identical; identical repeats collapse.
  if (cops::iequals(name, "content-length")) {
    return out.headers.at(existing).value == value;
  }
  // Other repeated headers combine with a comma per RFC 7230 §3.2.2.
  out.headers.append_to_value(existing, value);
  return true;
}

// Strict Content-Length: digits only — no sign, no whitespace, no suffix —
// and no overflow past int64.  Anything else earns a 400 (kReject) rather
// than the silent close lenient parsers give, and never a wrapped-around
// small value.
bool parse_content_length(std::string_view s, uint64_t* value) {
  if (s.empty()) return false;
  constexpr uint64_t kMax = static_cast<uint64_t>(INT64_MAX);
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (kMax - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *value = v;
  return true;
}

// RFC 7230 §3.3.3: we only implement the chunked coding, and it must be the
// *only* coding — "chunked, gzip" leaves the message length undeterminable
// by us, and "gzip" alone is undecodable.  The value is a comma-separated
// token list; empty elements (sloppy trailing commas) are ignored.
bool te_is_exactly_chunked(std::string_view value) {
  size_t tokens = 0;
  bool chunked = false;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string_view::npos) comma = value.size();
    const std::string_view token =
        cops::trim(value.substr(start, comma - start));
    if (!token.empty()) {
      ++tokens;
      if (cops::iequals(token, "chunked")) chunked = true;
    }
    start = comma + 1;
  }
  return tokens == 1 && chunked;
}

// Trailer fields that would rewrite framing, routing, or control decisions
// already taken from the header block (RFC 7230 §4.1.2's forbidden set,
// restricted to the smuggling-relevant members we parse).
bool forbidden_in_trailer(std::string_view name) {
  return cops::iequals(name, "content-length") ||
         cops::iequals(name, "transfer-encoding") ||
         cops::iequals(name, "host") || cops::iequals(name, "trailer") ||
         cops::iequals(name, "connection") || cops::iequals(name, "expect");
}

// Bound on one chunk-size line (hex digits + extensions + CRLF): generous
// for real traffic, small enough that an attacker cannot buffer-bloat by
// streaming an endless extension.
constexpr size_t kMaxChunkSizeLine = 1024;

}  // namespace

void ChunkedDecoder::reset() {
  state_ = State::kSizeLine;
  chunk_remaining_ = 0;
  decoded_ = 0;
  trailer_bytes_ = 0;
}

ChunkedDecoder::Status ChunkedDecoder::feed(std::string_view input,
                                            size_t* consumed,
                                            std::string& body,
                                            const ParseLimits& limits) {
  size_t pos = 0;
  *consumed = 0;
  while (true) {
    switch (state_) {
      case State::kSizeLine: {
        const size_t eol = input.find("\r\n", pos);
        if (eol == std::string_view::npos) {
          if (input.size() - pos > kMaxChunkSizeLine) return Status::kBadSyntax;
          *consumed = pos;
          return Status::kNeedMore;
        }
        if (eol - pos > kMaxChunkSizeLine) return Status::kBadSyntax;
        const std::string_view line = input.substr(pos, eol - pos);
        // chunk-size: 1*HEXDIG, then optional BWS and ";extensions".
        size_t i = 0;
        uint64_t size = 0;
        for (; i < line.size(); ++i) {
          const int digit = hex_digit(line[i]);
          if (digit < 0) break;
          // Overflow guard before the limit check: size*16 must stay in
          // range even when max_body_bytes is set absurdly high.
          if (size > (static_cast<uint64_t>(INT64_MAX) >> 4)) {
            return Status::kTooLarge;
          }
          size = size * 16 + static_cast<uint64_t>(digit);
          if (size > limits.max_body_bytes) return Status::kTooLarge;
        }
        if (i == 0) return Status::kBadSyntax;  // no hex digits at all
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        if (i < line.size() && line[i] != ';') return Status::kBadSyntax;
        // Extensions (";name=value") are tolerated and ignored, but may not
        // smuggle control bytes.
        if (line.find('\0', i) != std::string_view::npos) {
          return Status::kBadSyntax;
        }
        pos = eol + 2;
        if (size == 0) {
          state_ = State::kTrailer;
        } else {
          if (decoded_ + size > limits.max_body_bytes) return Status::kTooLarge;
          chunk_remaining_ = size;
          state_ = State::kData;
        }
        break;
      }
      case State::kData: {
        const size_t take = static_cast<size_t>(
            std::min<uint64_t>(chunk_remaining_, input.size() - pos));
        body.append(input.data() + pos, take);
        decoded_ += take;
        pos += take;
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) {
          *consumed = pos;
          return Status::kNeedMore;
        }
        state_ = State::kDataCr;
        break;
      }
      case State::kDataCr:
        if (pos >= input.size()) {
          *consumed = pos;
          return Status::kNeedMore;
        }
        if (input[pos] != '\r') return Status::kBadSyntax;
        ++pos;
        state_ = State::kDataLf;
        break;
      case State::kDataLf:
        if (pos >= input.size()) {
          *consumed = pos;
          return Status::kNeedMore;
        }
        if (input[pos] != '\n') return Status::kBadSyntax;
        ++pos;
        state_ = State::kSizeLine;
        break;
      case State::kTrailer: {
        const size_t eol = input.find("\r\n", pos);
        if (eol == std::string_view::npos) {
          if (input.size() - pos + trailer_bytes_ > limits.max_header_bytes) {
            return Status::kBadTrailer;
          }
          *consumed = pos;
          return Status::kNeedMore;
        }
        const std::string_view line = input.substr(pos, eol - pos);
        trailer_bytes_ += line.size() + 2;
        if (trailer_bytes_ > limits.max_header_bytes) {
          return Status::kBadTrailer;
        }
        pos = eol + 2;
        if (line.empty()) {
          state_ = State::kDone;
          *consumed = pos;
          return Status::kDone;
        }
        // Trailer fields are validated, then discarded — nothing after the
        // body may change what the header block already decided.  Folded
        // continuations are as unacceptable here as in the headers.
        if (line.front() == ' ' || line.front() == '\t') {
          return Status::kBadTrailer;
        }
        const size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
          return Status::kBadTrailer;
        }
        if (forbidden_in_trailer(cops::trim(line.substr(0, colon)))) {
          return Status::kBadTrailer;
        }
        break;
      }
      case State::kDone:
        *consumed = pos;
        return Status::kDone;
    }
  }
}

bool sanitize_path_into(std::string_view raw_path, std::string& out) {
  // Percent-decode into `out` (capacity recycles across calls).  An encoded
  // NUL (%00) is rejected here, before it could truncate a filesystem path.
  out.clear();
  for (size_t i = 0; i < raw_path.size(); ++i) {
    char c = raw_path[i];
    if (c == '%') {
      if (i + 2 >= raw_path.size()) return false;
      const int hi = hex_digit(raw_path[i + 1]);
      const int lo = hex_digit(raw_path[i + 2]);
      if (hi < 0 || lo < 0) return false;
      c = static_cast<char>(hi * 16 + lo);
      i += 2;
    }
    if (c == '\0') return false;
    out.push_back(c);
  }
  if (out.empty() || out.front() != '/') return false;

  // Normalize segments in place — the traversal check runs on the *decoded*
  // bytes, so %2e%2e%2f cannot sneak a ".." past it.  Two cursors over the
  // same buffer: out[0..w) is the normalized "/seg/seg" prefix, r scans the
  // decoded input; w <= r always, so the forward copies never overlap.
  const bool want_trailing = out.size() > 1 && out.back() == '/';
  const size_t n = out.size();
  size_t w = 0;
  size_t r = 1;
  while (r <= n) {
    size_t e = r;
    while (e < n && out[e] != '/') ++e;
    const size_t seg_len = e - r;
    if (seg_len == 0 || (seg_len == 1 && out[r] == '.')) {
      // "//" and "/./" collapse.
    } else if (seg_len == 2 && out[r] == '.' && out[r + 1] == '.') {
      if (w == 0) return false;  // escaping the document root
      do {
        --w;
      } while (w > 0 && out[w] != '/');
    } else {
      out[w++] = '/';
      for (size_t i = r; i < e; ++i) out[w++] = out[i];
    }
    r = e + 1;
  }
  if (w == 0) out[w++] = '/';
  // Preserve a trailing slash (directory request).
  if (want_trailing && out[w - 1] != '/') out[w++] = '/';
  out.resize(w);
  return true;
}

std::string sanitize_path(std::string_view raw_path) {
  std::string out;
  if (!sanitize_path_into(raw_path, out)) return {};
  return out;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits, ParseEvents& events) {
  out.reset();
  events = ParseEvents{};
  const auto view = in.view();
  const size_t header_end = view.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (view.size() > limits.max_header_bytes) return ParseOutcome::kMalformed;
    return ParseOutcome::kIncomplete;
  }
  if (header_end > limits.max_header_bytes) return ParseOutcome::kMalformed;

  // Consumes the header block and reports a deterministic status reply.
  const auto reject = [&](StatusCode status) {
    in.consume(header_end + 4);
    events.reject_status = status;
    return ParseOutcome::kReject;
  };

  const auto header_block = view.substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  while (line_start <= header_block.size()) {
    size_t line_end = header_block.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = header_block.size();
    const auto line = header_block.substr(line_start, line_end - line_start);
    if (first) {
      if (!parse_request_line(line, out)) return ParseOutcome::kMalformed;
      first = false;
    } else if (!line.empty()) {
      // RFC 7230 §3.2.4 obs-fold: a continuation line opening with SP/HTAB
      // would silently glue onto the previous field in lenient parsers —
      // a classic header-smuggling discrepancy between front-end and
      // back-end.  Deterministic 400 + close instead of guessing.
      if (line.front() == ' ' || line.front() == '\t') {
        return reject(StatusCode::kBadRequest);
      }
      if (!parse_header_line(line, out)) return ParseOutcome::kMalformed;
    }
    if (line_end == header_block.size()) break;
    line_start = line_end + 2;
  }
  if (first) return ParseOutcome::kMalformed;
  if (out.path.empty() && out.target != "*") {
    return ParseOutcome::kMalformed;
  }

  // --- body framing decision (RFC 7230 §3.3.3) ---------------------------
  bool chunked = false;
  const size_t te_index = out.headers.find_index("transfer-encoding");
  if (te_index != HeaderMap::npos) {
    // Content-Length alongside Transfer-Encoding is the canonical request-
    // smuggling vector: a front-end honouring one and a back-end the other
    // desynchronize on where this request ends.  400 + close, always.
    if (out.headers.find_index("content-length") != HeaderMap::npos) {
      return reject(StatusCode::kBadRequest);
    }
    // Chunked framing was introduced in HTTP/1.1; a 1.0 sender cannot have
    // meant it, so the message length is undeterminable.
    if (out.version_major != 1 || out.version_minor < 1) {
      return reject(StatusCode::kBadRequest);
    }
    // The only coding we decode is a lone "chunked"; anything else (gzip,
    // or chunked stacked under another coding) keeps the deterministic
    // 501 + close from the pre-chunked parser.
    if (!te_is_exactly_chunked(out.headers.at(te_index).value)) {
      return reject(StatusCode::kNotImplemented);
    }
    chunked = true;
  }

  // Expect (RFC 7231 §5.1.1): the only defined expectation is 100-continue.
  // Anything else earns 417; 100-continue itself is surfaced to the caller
  // via `events.needs_continue` once we know the body is still in flight.
  bool expect_continue = false;
  if (auto expect = out.headers.get("expect")) {
    if (!cops::iequals(cops::trim(*expect), "100-continue")) {
      return reject(StatusCode::kExpectationFailed);
    }
    expect_continue = out.version_major == 1 && out.version_minor >= 1;
  }

  if (chunked) {
    // One-shot decode per call: on kNeedMore nothing is consumed and the
    // whole body re-decodes when more bytes arrive — that keeps the
    // kIncomplete-consumes-nothing contract (and re-parse purity) intact
    // at the cost of re-scanning, which the read loop amortises.
    ChunkedDecoder decoder;
    size_t body_consumed = 0;
    switch (decoder.feed(view.substr(header_end + 4), &body_consumed,
                         out.body, limits)) {
      case ChunkedDecoder::Status::kNeedMore:
        events.needs_continue = expect_continue;
        return ParseOutcome::kIncomplete;
      case ChunkedDecoder::Status::kBadSyntax:
      case ChunkedDecoder::Status::kBadTrailer:
        return reject(StatusCode::kBadRequest);
      case ChunkedDecoder::Status::kTooLarge:
        return reject(StatusCode::kPayloadTooLarge);
      case ChunkedDecoder::Status::kDone:
        in.consume(header_end + 4 + body_consumed);
        return ParseOutcome::kComplete;
    }
    return ParseOutcome::kMalformed;  // unreachable
  }

  // Content-Length framing.
  uint64_t body_len = 0;
  if (auto content_length = out.headers.get("content-length")) {
    if (!parse_content_length(*content_length, &body_len)) {
      return reject(StatusCode::kBadRequest);
    }
    if (body_len > limits.max_body_bytes) {
      return reject(StatusCode::kPayloadTooLarge);
    }
  }
  const size_t total = header_end + 4 + static_cast<size_t>(body_len);
  if (view.size() < total) {
    events.needs_continue = expect_continue && body_len > 0;
    return ParseOutcome::kIncomplete;
  }
  out.body.assign(view.data() + header_end + 4,
                  static_cast<size_t>(body_len));
  in.consume(total);
  return ParseOutcome::kComplete;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits,
                           StatusCode* reject_status) {
  ParseEvents events;
  const auto outcome = parse_request(in, out, limits, events);
  if (reject_status) *reject_status = events.reject_status;
  return outcome;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits) {
  ParseEvents events;
  const auto outcome = parse_request(in, out, limits, events);
  return outcome == ParseOutcome::kReject ? ParseOutcome::kMalformed : outcome;
}

}  // namespace cops::http
