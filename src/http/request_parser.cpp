#include "http/request_parser.hpp"

#include <cstdint>

#include "common/string_util.hpp"

namespace cops::http {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_request_line(std::string_view line, HttpRequest& out) {
  // METHOD SP request-target SP HTTP/x.y
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return false;
  auto method = parse_method(line.substr(0, sp1));
  if (!method) return false;
  out.method = *method;
  const std::string_view target = cops::trim(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.target.assign(target);
  if (out.target.empty()) return false;
  auto version = line.substr(sp2 + 1);
  if (!cops::starts_with(version, "HTTP/") || version.size() != 8 ||
      version[6] != '.') {
    return false;
  }
  if (version[5] < '0' || version[5] > '9' || version[7] < '0' ||
      version[7] > '9') {
    return false;
  }
  out.version_major = version[5] - '0';
  out.version_minor = version[7] - '0';

  // Split target into path + query.
  const size_t q = target.find('?');
  const std::string_view raw_path =
      q == std::string_view::npos ? target : target.substr(0, q);
  if (q == std::string_view::npos) {
    out.query.clear();
  } else {
    out.query.assign(target.substr(q + 1));
  }
  if (!sanitize_path_into(raw_path, out.path)) out.path.clear();
  return true;
}

bool parse_header_line(std::string_view line, HttpRequest& out) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = cops::trim(line.substr(0, colon));
  const std::string_view value = cops::trim(line.substr(colon + 1));
  const size_t existing = out.headers.find_index(name);
  if (existing == HeaderMap::npos) {
    out.headers.add(name, value);
    return true;
  }
  // RFC 7230 §5.4: more than one Host field is unambiguously malformed —
  // routing and caching decisions must not depend on which one a proxy in
  // front of us happened to pick.
  if (cops::iequals(name, "host")) return false;
  // RFC 7230 §3.3.3: repeated Content-Length is a request-smuggling
  // vector unless every value is identical; identical repeats collapse.
  if (cops::iequals(name, "content-length")) {
    return out.headers.at(existing).value == value;
  }
  // Other repeated headers combine with a comma per RFC 7230 §3.2.2.
  out.headers.append_to_value(existing, value);
  return true;
}

// Strict Content-Length: digits only — no sign, no whitespace, no suffix —
// and no overflow past int64.  Anything else earns a 400 (kReject) rather
// than the silent close lenient parsers give, and never a wrapped-around
// small value.
bool parse_content_length(std::string_view s, uint64_t* value) {
  if (s.empty()) return false;
  constexpr uint64_t kMax = static_cast<uint64_t>(INT64_MAX);
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (kMax - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *value = v;
  return true;
}

}  // namespace

bool sanitize_path_into(std::string_view raw_path, std::string& out) {
  // Percent-decode into `out` (capacity recycles across calls).  An encoded
  // NUL (%00) is rejected here, before it could truncate a filesystem path.
  out.clear();
  for (size_t i = 0; i < raw_path.size(); ++i) {
    char c = raw_path[i];
    if (c == '%') {
      if (i + 2 >= raw_path.size()) return false;
      const int hi = hex_digit(raw_path[i + 1]);
      const int lo = hex_digit(raw_path[i + 2]);
      if (hi < 0 || lo < 0) return false;
      c = static_cast<char>(hi * 16 + lo);
      i += 2;
    }
    if (c == '\0') return false;
    out.push_back(c);
  }
  if (out.empty() || out.front() != '/') return false;

  // Normalize segments in place — the traversal check runs on the *decoded*
  // bytes, so %2e%2e%2f cannot sneak a ".." past it.  Two cursors over the
  // same buffer: out[0..w) is the normalized "/seg/seg" prefix, r scans the
  // decoded input; w <= r always, so the forward copies never overlap.
  const bool want_trailing = out.size() > 1 && out.back() == '/';
  const size_t n = out.size();
  size_t w = 0;
  size_t r = 1;
  while (r <= n) {
    size_t e = r;
    while (e < n && out[e] != '/') ++e;
    const size_t seg_len = e - r;
    if (seg_len == 0 || (seg_len == 1 && out[r] == '.')) {
      // "//" and "/./" collapse.
    } else if (seg_len == 2 && out[r] == '.' && out[r + 1] == '.') {
      if (w == 0) return false;  // escaping the document root
      do {
        --w;
      } while (w > 0 && out[w] != '/');
    } else {
      out[w++] = '/';
      for (size_t i = r; i < e; ++i) out[w++] = out[i];
    }
    r = e + 1;
  }
  if (w == 0) out[w++] = '/';
  // Preserve a trailing slash (directory request).
  if (want_trailing && out[w - 1] != '/') out[w++] = '/';
  out.resize(w);
  return true;
}

std::string sanitize_path(std::string_view raw_path) {
  std::string out;
  if (!sanitize_path_into(raw_path, out)) return {};
  return out;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits,
                           StatusCode* reject_status) {
  out.reset();
  if (reject_status) *reject_status = StatusCode::kBadRequest;
  const auto view = in.view();
  const size_t header_end = view.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (view.size() > limits.max_header_bytes) return ParseOutcome::kMalformed;
    return ParseOutcome::kIncomplete;
  }
  if (header_end > limits.max_header_bytes) return ParseOutcome::kMalformed;

  const auto header_block = view.substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  while (line_start <= header_block.size()) {
    size_t line_end = header_block.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = header_block.size();
    const auto line = header_block.substr(line_start, line_end - line_start);
    if (first) {
      if (!parse_request_line(line, out)) return ParseOutcome::kMalformed;
      first = false;
    } else if (!line.empty()) {
      if (!parse_header_line(line, out)) return ParseOutcome::kMalformed;
    }
    if (line_end == header_block.size()) break;
    line_start = line_end + 2;
  }
  if (first) return ParseOutcome::kMalformed;
  if (out.path.empty() && out.target != "*") {
    return ParseOutcome::kMalformed;
  }

  // Transfer-Encoding (chunked or otherwise) is unimplemented in a
  // static-content server; attempting to skip an unparsed chunk body would
  // desynchronize the connection and open a request-smuggling window.
  // Deterministic 501 + close instead.  The unread body is deliberately
  // left unconsumed — the connection closes with it.
  if (out.headers.find_index("transfer-encoding") != HeaderMap::npos) {
    in.consume(header_end + 4);
    if (reject_status) *reject_status = StatusCode::kNotImplemented;
    return ParseOutcome::kReject;
  }

  // Body (Content-Length only; chunked uploads are out of scope for a
  // static-content server, as in COPS-HTTP).
  uint64_t body_len = 0;
  if (auto content_length = out.headers.get("content-length")) {
    if (!parse_content_length(*content_length, &body_len)) {
      in.consume(header_end + 4);
      if (reject_status) *reject_status = StatusCode::kBadRequest;
      return ParseOutcome::kReject;
    }
    if (body_len > limits.max_body_bytes) {
      in.consume(header_end + 4);
      if (reject_status) *reject_status = StatusCode::kPayloadTooLarge;
      return ParseOutcome::kReject;
    }
  }
  const size_t total = header_end + 4 + static_cast<size_t>(body_len);
  if (view.size() < total) return ParseOutcome::kIncomplete;
  out.body.assign(view.data() + header_end + 4,
                  static_cast<size_t>(body_len));
  in.consume(total);
  return ParseOutcome::kComplete;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits) {
  StatusCode ignored = StatusCode::kBadRequest;
  const auto outcome = parse_request(in, out, limits, &ignored);
  return outcome == ParseOutcome::kReject ? ParseOutcome::kMalformed : outcome;
}

}  // namespace cops::http
