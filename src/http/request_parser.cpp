#include "http/request_parser.hpp"

#include <vector>

#include "common/string_util.hpp"

namespace cops::http {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_request_line(std::string_view line, HttpRequest& out) {
  // METHOD SP request-target SP HTTP/x.y
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const size_t sp2 = line.rfind(' ');
  if (sp2 == sp1) return false;
  auto method = parse_method(line.substr(0, sp1));
  if (!method) return false;
  out.method = *method;
  out.target = std::string(cops::trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  if (out.target.empty()) return false;
  auto version = line.substr(sp2 + 1);
  if (!cops::starts_with(version, "HTTP/") || version.size() != 8 ||
      version[6] != '.') {
    return false;
  }
  if (version[5] < '0' || version[5] > '9' || version[7] < '0' ||
      version[7] > '9') {
    return false;
  }
  out.version_major = version[5] - '0';
  out.version_minor = version[7] - '0';

  // Split target into path + query.
  const size_t q = out.target.find('?');
  const std::string raw_path =
      q == std::string::npos ? out.target : out.target.substr(0, q);
  out.query = q == std::string::npos ? "" : out.target.substr(q + 1);
  out.path = sanitize_path(raw_path);
  return true;
}

bool parse_header_line(std::string_view line, HttpRequest& out) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  auto name = cops::to_lower(cops::trim(line.substr(0, colon)));
  auto value = std::string(cops::trim(line.substr(colon + 1)));
  auto [it, inserted] = out.headers.emplace(std::move(name), std::move(value));
  if (!inserted) {
    // RFC 7230 §5.4: more than one Host field is unambiguously malformed —
    // routing and caching decisions must not depend on which one a proxy in
    // front of us happened to pick.
    if (it->first == "host") return false;
    // RFC 7230 §3.3.3: repeated Content-Length is a request-smuggling
    // vector unless every value is identical; identical repeats collapse.
    if (it->first == "content-length") {
      return it->second == cops::trim(line.substr(colon + 1));
    }
    // Other repeated headers combine with a comma per RFC 7230 §3.2.2.
    it->second += ", ";
    it->second += cops::trim(line.substr(colon + 1));
  }
  return true;
}

}  // namespace

std::string sanitize_path(std::string_view raw_path) {
  // Percent-decode.
  std::string decoded;
  decoded.reserve(raw_path.size());
  for (size_t i = 0; i < raw_path.size(); ++i) {
    if (raw_path[i] == '%') {
      if (i + 2 >= raw_path.size()) return {};
      const int hi = hex_digit(raw_path[i + 1]);
      const int lo = hex_digit(raw_path[i + 2]);
      if (hi < 0 || lo < 0) return {};
      decoded.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      decoded.push_back(raw_path[i]);
    }
  }
  if (decoded.empty() || decoded.front() != '/') return {};
  if (decoded.find('\0') != std::string::npos) return {};

  // Normalize segments; refuse traversal above the root.
  std::vector<std::string> segments;
  for (const auto& seg : cops::split(decoded.substr(1), '/')) {
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (segments.empty()) return {};  // escaping the document root
      segments.pop_back();
      continue;
    }
    segments.push_back(seg);
  }
  std::string out = "/";
  for (size_t i = 0; i < segments.size(); ++i) {
    out += segments[i];
    if (i + 1 < segments.size()) out += '/';
  }
  // Preserve a trailing slash (directory request).
  if (decoded.size() > 1 && decoded.back() == '/' && out.back() != '/') {
    out += '/';
  }
  return out;
}

ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits) {
  const auto view = in.view();
  const size_t header_end = view.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (view.size() > limits.max_header_bytes) return ParseOutcome::kMalformed;
    return ParseOutcome::kIncomplete;
  }
  if (header_end > limits.max_header_bytes) return ParseOutcome::kMalformed;

  HttpRequest request;
  const auto header_block = view.substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  while (line_start <= header_block.size()) {
    size_t line_end = header_block.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = header_block.size();
    const auto line = header_block.substr(line_start, line_end - line_start);
    if (first) {
      if (!parse_request_line(line, request)) return ParseOutcome::kMalformed;
      first = false;
    } else if (!line.empty()) {
      if (!parse_header_line(line, request)) return ParseOutcome::kMalformed;
    }
    if (line_end == header_block.size()) break;
    line_start = line_end + 2;
  }
  if (first) return ParseOutcome::kMalformed;
  if (request.path.empty() && request.target != "*") {
    return ParseOutcome::kMalformed;
  }

  // Body (Content-Length only; chunked uploads are out of scope for a
  // static-content server, as in COPS-HTTP).
  size_t body_len = 0;
  if (auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    const long n = cops::parse_non_negative(it->second);
    if (n < 0 || static_cast<size_t>(n) > limits.max_body_bytes) {
      return ParseOutcome::kMalformed;
    }
    body_len = static_cast<size_t>(n);
  }
  const size_t total = header_end + 4 + body_len;
  if (view.size() < total) return ParseOutcome::kIncomplete;
  request.body = std::string(view.substr(header_end + 4, body_len));
  in.consume(total);
  out = std::move(request);
  return ParseOutcome::kComplete;
}

}  // namespace cops::http
