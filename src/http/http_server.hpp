// COPS-HTTP — the paper's static-content Web server, expressed as the three
// application-dependent hook methods on top of the generated N-Server
// framework (paper, Section V.B).
//
// Everything HTTP-specific lives here and in the protocol library
// (request_parser / response / mime / http_date); everything concurrent is
// the framework's.  The paper's option settings for COPS-HTTP (Table 1):
// one dispatcher, separate pool, encode/decode on, asynchronous completions,
// static thread allocation, LRU file cache.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include "http/request.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"
#include "nserver/server.hpp"

namespace cops::http {

struct HttpServerConfig {
  std::string doc_root = ".";
  std::string index_file = "index.html";

  // Generate an HTML listing for directories without an index file, and
  // redirect (301) directory paths lacking the trailing slash.
  bool auto_index = false;

  // Serve a live statistics page at this path (Apache mod_status analog;
  // feeds off option O11's profiler).  Empty = disabled.
  std::string status_endpoint;

  // Event-scheduling priority hook (option O8) — the paper's ISP experiment
  // classifies requests into corporate-portal vs homepage levels with a
  // 13-line hook.  Return the priority level (0 = highest).
  std::function<int(const HttpRequest&)> priority_classifier;

  // Artificial CPU cost added to the Decode step.  The paper's overload
  // experiment (Fig. 6) "force[s] each thread to sleep for 50 milliseconds
  // when decoding an HTTP request" to make the CPU the bottleneck.
  // Sim-aware (cops::spend): under simnet the cost advances the virtual
  // clock instead of sleeping, so overload scenarios replay deterministically.
  std::chrono::milliseconds decode_delay{0};

  // Artificial CPU cost added to the Handle step, applied *after* the O9
  // shed check — so a shed 503 really is cheap and shedding genuinely
  // relieves the modeled bottleneck.  Sim-aware like decode_delay; this is
  // the knob the adaptive-overload spike scenarios turn.
  std::chrono::milliseconds handle_delay{0};
};

// Per-connection session state (hung off RequestContext::app_state).  Under
// buffer_mgmt=pooled the Decode hook parses into `scratch` instead of a
// fresh HttpRequest — the pipeline token invariant guarantees exactly one
// request in flight per connection, so the scratch object stays valid until
// the next decode, which cannot start before Handle resolves.  Across
// keep-alive requests every string inside keeps its capacity: steady-state
// decoding allocates nothing.
struct HttpConnState {
  HttpRequest scratch;
  // Latch: an interim "100 Continue" has been emitted for the request
  // currently being decoded (RFC 7231 §5.1.1).  The decoder fires
  // needs_continue on every incomplete parse attempt while the body drips
  // in; this keeps the interim reply to exactly one.  Reset when a request
  // completes.
  bool continue_sent = false;
};

class HttpAppHooks : public nserver::AppHooks {
 public:
  explicit HttpAppHooks(HttpServerConfig config)
      : config_(std::move(config)) {}

  nserver::DecodeResult decode(nserver::RequestContext& ctx,
                               ByteBuffer& in) override;
  void handle(nserver::RequestContext& ctx, std::any request) override;
  std::string encode(nserver::RequestContext& ctx,
                     std::any response) override;
  // Segment-producing Encode Reply: owned header block + the body as a
  // refcounted cache slice (send_path=writev) or an open-fd sendfile segment
  // (send_path=sendfile).  Falls back to one flat buffer for send_path=copy,
  // HEAD, and inline bodies.
  EncodedReply encode_reply(nserver::RequestContext& ctx,
                                     std::any response) override;

  [[nodiscard]] uint64_t responses_sent() const { return responses_.load(); }
  [[nodiscard]] const HttpServerConfig& config() const { return config_; }

 private:
  void reply_error(nserver::RequestContext& ctx, StatusCode status,
                   bool keep_alive);
  // auto_index: 301 for slash-less directory paths, generated listing for
  // directories without an index file.  Returns true when it handled the
  // request.
  bool maybe_serve_directory(nserver::RequestContext& ctx,
                             const std::string& path, bool keep_alive);

  HttpServerConfig config_;
  std::atomic<uint64_t> responses_{0};
};

// Bundles ServerOptions + HTTP hooks into a runnable web server.
class CopsHttpServer {
 public:
  CopsHttpServer(nserver::ServerOptions options, HttpServerConfig config);

  Status start() { return server_.start(); }
  void stop() { server_.stop(); }

  [[nodiscard]] uint16_t port() const { return server_.port(); }
  // Admin/metrics endpoint port (O11+); 0 unless stats_export is enabled.
  [[nodiscard]] uint16_t admin_port() const { return server_.admin_port(); }
  [[nodiscard]] nserver::Server& server() { return server_; }
  [[nodiscard]] HttpAppHooks& hooks() { return *hooks_; }

  // The paper's default COPS-HTTP option settings (Table 1, last column).
  static nserver::ServerOptions default_options();

 private:
  std::shared_ptr<HttpAppHooks> hooks_;
  nserver::Server server_;
};

}  // namespace cops::http
