#include "http/request.hpp"

#include "common/string_util.hpp"

namespace cops::http {

namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

void HeaderMap::add(std::string_view name, std::string_view value) {
  Entry entry;
  entry.name_off = static_cast<uint32_t>(storage_.size());
  entry.name_len = static_cast<uint32_t>(name.size());
  for (char c : name) storage_.push_back(ascii_lower(c));
  entry.value_off = static_cast<uint32_t>(storage_.size());
  entry.value_len = static_cast<uint32_t>(value.size());
  storage_.append(value);
  entries_.push_back(entry);
}

void HeaderMap::append_to_value(size_t i, std::string_view more) {
  Entry& entry = entries_[i];
  // The combined value must be contiguous; rebuild it at the arena's tail
  // (the old bytes become dead until the next reset()).
  const uint32_t off = static_cast<uint32_t>(storage_.size());
  storage_.append(storage_, entry.value_off, entry.value_len);
  storage_.append(", ");
  storage_.append(more);
  entry.value_off = off;
  entry.value_len = static_cast<uint32_t>(storage_.size()) - off;
}

size_t HeaderMap::find_index(std::string_view name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    const auto& entry = entries_[i];
    if (entry.name_len != name.size()) continue;
    if (cops::iequals({storage_.data() + entry.name_off, entry.name_len},
                      name)) {
      return i;
    }
  }
  return npos;
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  const size_t i = find_index(name);
  if (i == npos) return std::nullopt;
  return at(i).value;
}

HeaderMap::Header HeaderMap::at(size_t i) const {
  const auto& entry = entries_[i];
  return {{storage_.data() + entry.name_off, entry.name_len},
          {storage_.data() + entry.value_off, entry.value_len}};
}

bool HeaderMap::operator==(const HeaderMap& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Header a = at(i);
    const Header b = other.at(i);
    if (a.name != b.name || a.value != b.value) return false;
  }
  return true;
}

void HttpRequest::reset() {
  method = Method::kGet;
  target.clear();
  path.clear();
  query.clear();
  version_major = 1;
  version_minor = 1;
  headers.reset();
  body.clear();
}

bool HttpRequest::keep_alive() const {
  bool close_token = false;
  bool keep_alive_token = false;
  if (auto connection = headers.get("connection")) {
    // Walk the comma-separated token list without allocating.
    std::string_view rest = *connection;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      std::string_view token = rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      token = cops::trim(token);
      if (cops::iequals(token, "close")) close_token = true;
      if (cops::iequals(token, "keep-alive")) keep_alive_token = true;
    }
  }
  if (close_token) return false;
  if (version_major == 1 && version_minor >= 1) return true;
  // HTTP/1.0: persistent only with an explicit keep-alive token.
  return keep_alive_token;
}

}  // namespace cops::http
