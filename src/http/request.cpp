#include "http/request.hpp"

#include "common/string_util.hpp"

namespace cops::http {

bool HttpRequest::keep_alive() const {
  const auto connection = cops::to_lower(header_or("connection"));
  if (version_major == 1 && version_minor >= 1) {
    return connection.find("close") == std::string::npos;
  }
  // HTTP/1.0: persistent only with an explicit keep-alive token.
  return connection.find("keep-alive") != std::string::npos;
}

}  // namespace cops::http
