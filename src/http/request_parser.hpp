// Incremental HTTP/1.x request parser.
//
// Feed it a ByteBuffer; it consumes exactly one complete request (headers +
// body framed by Content-Length or chunked transfer coding) per call,
// leaving pipelined follow-up requests in the buffer — the contract the
// N-Server Decode step needs.
//
// The parser writes into a caller-owned HttpRequest whose fields recycle
// their capacity (HttpRequest::reset()), so a connection that reuses one
// scratch request across keep-alive requests parses with zero steady-state
// heap allocations (buffer_mgmt=pooled).  Chunked bodies decode into the
// same recycled body string, so the zero-allocation property covers them
// too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/byte_buffer.hpp"
#include "http/request.hpp"
#include "http/status_code.hpp"

namespace cops::http {

enum class ParseOutcome {
  kIncomplete,  // need more bytes
  kComplete,    // one request parsed and consumed
  kMalformed,   // garbage: close silently, no reply owed
  // Well-formed enough to answer deterministically, but unacceptable:
  // bad/overflowing Content-Length (400), body over the limit (413),
  // Content-Length combined with Transfer-Encoding (400 — the RFC 7230
  // §3.3.3 smuggling vector), obs-fold header continuations (400),
  // a Transfer-Encoding other than exactly "chunked" (501), malformed
  // chunk framing (400/413), or an unsupported Expect (417).  The caller
  // must send the status from `reject_status` and close; the header block
  // has been consumed, the (possibly partial) body deliberately has not.
  kReject,
};

struct ParseLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

// Out-of-band facts about the parse beyond its outcome.
struct ParseEvents {
  // Valid when the outcome is kReject: the deterministic answer owed.
  StatusCode reject_status = StatusCode::kBadRequest;
  // Valid when the outcome is kIncomplete: the header block is complete,
  // carries "Expect: 100-continue" (HTTP/1.1), and the body has not fully
  // arrived — the server should emit an interim "100 Continue" (once) so a
  // conforming client stops waiting and sends the body.
  bool needs_continue = false;
};

// Incremental RFC 7230 §4.1 chunked transfer-coding decoder.
//
// A small state machine over { chunk-size line (hex, optional ";ext"),
// chunk data, CRLF, trailer section }.  feed() processes as much of `input`
// as possible, appending decoded body bytes to `body` (capacity recycles —
// no allocations once warmed) and reporting via `*consumed` how many input
// bytes were fully processed.  On kNeedMore the unprocessed tail
// (input.substr(*consumed)) must be re-presented, with more bytes appended,
// on the next feed() — partially-seen size/trailer lines are never
// half-consumed, so re-feeding is exact.  Decoding is split-invariant: any
// segmentation of the same byte stream yields the same status, consumed
// total, and decoded body (the fuzz harness enforces this).
class ChunkedDecoder {
 public:
  enum class Status {
    kNeedMore,    // ran out of input mid-stream
    kDone,        // last chunk + trailer fully decoded and consumed
    kBadSyntax,   // framing violation → 400
    kTooLarge,    // chunk/body over max_body_bytes (or hex overflow) → 413
    kBadTrailer,  // oversized/misfolded trailer, or a trailer field that may
                  // not appear there (Content-Length, Transfer-Encoding,
                  // Host, Trailer, Connection, Expect) → 400
  };

  Status feed(std::string_view input, size_t* consumed, std::string& body,
              const ParseLimits& limits);
  void reset();

  // Total decoded body bytes so far (across feeds).
  [[nodiscard]] uint64_t decoded_bytes() const { return decoded_; }

 private:
  enum class State { kSizeLine, kData, kDataCr, kDataLf, kTrailer, kDone };

  State state_ = State::kSizeLine;
  uint64_t chunk_remaining_ = 0;
  uint64_t decoded_ = 0;
  size_t trailer_bytes_ = 0;
};

// Parses one request from `in` into `out` (resetting both `out` and
// `events` first).  On kComplete the request's bytes — including all chunk
// framing — are consumed; on kIncomplete nothing is consumed (chunked
// bodies re-decode from the top once more bytes arrive, so the buffer is
// never left half-eaten); on kReject the header block is consumed and
// events.reject_status holds the response status; on kMalformed the buffer
// state is unspecified (the caller closes).
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits, ParseEvents& events);

// Compatibility wrapper: reject status only, no continue signal.
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits,
                           StatusCode* reject_status);

// Compatibility wrapper: rejects fold into kMalformed (silent close), the
// pre-kReject behaviour that the baseline server and older callers expect.
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits = {});

// Percent-decodes and normalizes a request path into `out`, reusing its
// capacity (no allocations once warmed).  Returns false — and callers must
// treat the path as Forbidden — for traversal attempts ("..", including
// percent-encoded ones, re-checked *after* decoding), embedded NULs
// ("%00"), malformed escapes, and relative paths.
bool sanitize_path_into(std::string_view raw_path, std::string& out);

// Allocating convenience wrapper; empty string = rejected.
[[nodiscard]] std::string sanitize_path(std::string_view raw_path);

}  // namespace cops::http
