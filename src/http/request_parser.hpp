// Incremental HTTP/1.x request parser.
//
// Feed it a ByteBuffer; it consumes exactly one complete request (headers +
// Content-Length body) per call, leaving pipelined follow-up requests in the
// buffer — the contract the N-Server Decode step needs.
#pragma once

#include <cstddef>

#include "common/byte_buffer.hpp"
#include "http/request.hpp"

namespace cops::http {

enum class ParseOutcome {
  kIncomplete,  // need more bytes
  kComplete,    // one request parsed and consumed
  kMalformed,
};

struct ParseLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

// Parses one request from `in`.  On kComplete the request is stored in
// `out` and its bytes consumed; on kIncomplete nothing is consumed; on
// kMalformed the buffer state is unspecified (the caller closes).
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits = {});

// Percent-decodes and normalizes a request path.  Returns an empty string
// for traversal attempts ("..") or malformed escapes — callers must treat
// that as Forbidden.
[[nodiscard]] std::string sanitize_path(std::string_view raw_path);

}  // namespace cops::http
