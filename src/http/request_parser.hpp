// Incremental HTTP/1.x request parser.
//
// Feed it a ByteBuffer; it consumes exactly one complete request (headers +
// Content-Length body) per call, leaving pipelined follow-up requests in the
// buffer — the contract the N-Server Decode step needs.
//
// The parser writes into a caller-owned HttpRequest whose fields recycle
// their capacity (HttpRequest::reset()), so a connection that reuses one
// scratch request across keep-alive requests parses with zero steady-state
// heap allocations (buffer_mgmt=pooled).
#pragma once

#include <cstddef>
#include <string>

#include "common/byte_buffer.hpp"
#include "http/request.hpp"
#include "http/status_code.hpp"

namespace cops::http {

enum class ParseOutcome {
  kIncomplete,  // need more bytes
  kComplete,    // one request parsed and consumed
  kMalformed,   // garbage: close silently, no reply owed
  // Well-formed enough to answer deterministically, but unacceptable:
  // bad/overflowing Content-Length (400), body over the limit (413),
  // Transfer-Encoding (501 — chunked uploads are unimplemented and parsing
  // past them would desynchronize the connection).  The caller must send
  // the status from `reject_status` and close; the header block has been
  // consumed, the (possibly chunked) body deliberately has not.
  kReject,
};

struct ParseLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 * 1024 * 1024;
};

// Parses one request from `in` into `out` (resetting it first).  On
// kComplete the request's bytes are consumed; on kIncomplete nothing is
// consumed; on kReject the header block is consumed and *reject_status
// holds the response status; on kMalformed the buffer state is unspecified
// (the caller closes).
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits,
                           StatusCode* reject_status);

// Compatibility wrapper: rejects fold into kMalformed (silent close), the
// pre-kReject behaviour that the baseline server and older callers expect.
ParseOutcome parse_request(cops::ByteBuffer& in, HttpRequest& out,
                           const ParseLimits& limits = {});

// Percent-decodes and normalizes a request path into `out`, reusing its
// capacity (no allocations once warmed).  Returns false — and callers must
// treat the path as Forbidden — for traversal attempts ("..", including
// percent-encoded ones, re-checked *after* decoding), embedded NULs
// ("%00"), malformed escapes, and relative paths.
bool sanitize_path_into(std::string_view raw_path, std::string& out);

// Allocating convenience wrapper; empty string = rejected.
[[nodiscard]] std::string sanitize_path(std::string_view raw_path);

}  // namespace cops::http
