// ThreadedHttpServer — the Apache 1.3 stand-in.
//
// "Apache implements the process-per-connection concurrency model and uses a
// bounded worker process pool of 150 processes to serve simultaneous client
// connections" (paper, Section V.B).  Processes are emulated with threads —
// the scheduling/context-switch behaviour under load, the bounded pool, and
// the small accept backlog are what produce the paper's Fig. 3/4 shapes:
//   * all 150 workers busy → pending connections pile up in the kernel
//     backlog → further SYNs are dropped → clients back off exponentially →
//     fairness collapses (Fig. 4) while the lucky accepted clients are
//     served quickly (Apache's higher 1024-client throughput).
//
// Serves the same HTTP protocol library as COPS-HTTP; no user-level file
// cache (Apache 1.3 relies on the OS buffer cache).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"

namespace cops::baseline {

struct ThreadedServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned
  std::string doc_root = ".";
  std::string index_file = "index.html";
  size_t worker_pool = 150;  // Apache 1.3.27's bounded pool
  int listen_backlog = 32;   // small: SYN drops under overload (see above)
  std::chrono::milliseconds keepalive_timeout{15'000};  // Apache default 15 s
  std::chrono::milliseconds decode_delay{0};  // Fig. 6 CPU-cost emulation
};

class ThreadedHttpServer {
 public:
  explicit ThreadedHttpServer(ThreadedServerConfig config)
      : config_(std::move(config)) {}
  ~ThreadedHttpServer() { stop(); }

  Status start();
  void stop();

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] uint64_t responses_sent() const { return responses_.load(); }
  [[nodiscard]] uint64_t connections_accepted() const {
    return accepted_.load();
  }
  [[nodiscard]] size_t active_workers() const { return busy_.load(); }

 private:
  void worker_loop();
  // Serves one connection until close/keep-alive end; returns when done.
  void serve_connection(int client_fd);

  ThreadedServerConfig config_;
  // Read by every worker in accept(), swapped to -1 by stop(): atomic so
  // shutdown does not race the accept loop.
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<size_t> busy_{0};
};

}  // namespace cops::baseline
