#include "baseline/threaded_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/byte_buffer.hpp"
#include "http/http_date.hpp"
#include "http/mime.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"
#include "nserver/file_io_service.hpp"

namespace cops::baseline {

Status ThreadedHttpServer::start() {
  if (running_.exchange(true)) {
    return Status::invalid_argument("already started");
  }
  // Deliberately a *blocking* listener: each worker thread parks in
  // accept(), exactly like an Apache 1.3 child process.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::from_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("bad host " + config_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::from_errno("bind");
  }
  if (::listen(fd, config_.listen_backlog) < 0) {
    return Status::from_errno("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  workers_.reserve(config_.worker_pool);
  for (size_t i = 0; i < config_.worker_pool; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return Status::ok();
}

void ThreadedHttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listener unblocks accept() in every worker.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadedHttpServer::worker_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    const int client = ::accept(lfd, nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    busy_.fetch_add(1, std::memory_order_relaxed);
    serve_connection(client);
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadedHttpServer::serve_connection(int client_fd) {
  const int flag = 1;
  ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));

  ByteBuffer in;
  auto idle_budget = config_.keepalive_timeout;
  while (running_.load(std::memory_order_acquire)) {
    // Try to parse a request from what we have; read more if incomplete.
    http::HttpRequest request;
    const auto outcome = http::parse_request(in, request);
    if (outcome == http::ParseOutcome::kMalformed) break;
    if (outcome == http::ParseOutcome::kIncomplete) {
      pollfd pfd{client_fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0) break;
      if (rc == 0) {
        idle_budget -= std::chrono::milliseconds(100);
        if (idle_budget.count() <= 0) break;  // keep-alive timeout
        continue;
      }
      uint8_t* dst = in.prepare(16 * 1024);
      const ssize_t n = ::read(client_fd, dst, 16 * 1024);
      if (n > 0) {
        in.commit(static_cast<size_t>(n));
      } else {
        in.commit(0);
        break;  // EOF or error
      }
      idle_budget = config_.keepalive_timeout;
      continue;
    }

    // ---- handle one request (blocking, in this worker) -------------------
    if (config_.decode_delay.count() > 0) {
      std::this_thread::sleep_for(config_.decode_delay);
    }
    http::HttpResponse resp;
    const bool keep_alive = request.keep_alive();
    if (request.method != http::Method::kGet &&
        request.method != http::Method::kHead) {
      resp = http::make_error_response(http::StatusCode::kMethodNotAllowed,
                                       keep_alive);
    } else if (request.path.empty()) {
      resp = http::make_error_response(http::StatusCode::kForbidden,
                                       keep_alive);
    } else {
      std::string path = request.path;
      if (path.back() == '/') path += config_.index_file;
      auto file = nserver::FileIoService::read_file(config_.doc_root + path);
      if (!file.is_ok()) {
        resp =
            http::make_error_response(http::StatusCode::kNotFound, keep_alive);
      } else {
        resp.status = http::StatusCode::kOk;
        resp.file = file.value();
        resp.head_only = request.method == http::Method::kHead;
        resp.set_header("Content-Type", std::string(http::mime_type_for(path)));
        resp.set_header("Last-Modified",
                        http::format_http_date(file.value()->mtime_seconds));
        resp.set_header("Connection", keep_alive ? "keep-alive" : "close");
      }
    }

    const std::string wire = resp.serialize();
    size_t sent = 0;
    bool write_error = false;
    while (sent < wire.size()) {
      const ssize_t n = ::send(client_fd, wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        write_error = true;
        break;
      }
      sent += static_cast<size_t>(n);
    }
    if (write_error) break;
    responses_.fetch_add(1, std::memory_order_relaxed);
    if (!keep_alive) break;
  }
  ::close(client_fd);
}

}  // namespace cops::baseline
