
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nserver/cache_policy.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/cache_policy.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/cache_policy.cpp.o.d"
  "/root/repo/src/nserver/connection.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/connection.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/connection.cpp.o.d"
  "/root/repo/src/nserver/debug_trace.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/debug_trace.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/debug_trace.cpp.o.d"
  "/root/repo/src/nserver/event_processor.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/event_processor.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/event_processor.cpp.o.d"
  "/root/repo/src/nserver/file_cache.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/file_cache.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/file_cache.cpp.o.d"
  "/root/repo/src/nserver/file_io_service.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/file_io_service.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/file_io_service.cpp.o.d"
  "/root/repo/src/nserver/options.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/options.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/options.cpp.o.d"
  "/root/repo/src/nserver/overload_control.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/overload_control.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/overload_control.cpp.o.d"
  "/root/repo/src/nserver/processor_controller.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/processor_controller.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/processor_controller.cpp.o.d"
  "/root/repo/src/nserver/profiler.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/profiler.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/profiler.cpp.o.d"
  "/root/repo/src/nserver/request_context.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/request_context.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/request_context.cpp.o.d"
  "/root/repo/src/nserver/server.cpp" "src/nserver/CMakeFiles/cops_nserver.dir/server.cpp.o" "gcc" "src/nserver/CMakeFiles/cops_nserver.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cops_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
