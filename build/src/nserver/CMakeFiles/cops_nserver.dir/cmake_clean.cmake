file(REMOVE_RECURSE
  "CMakeFiles/cops_nserver.dir/cache_policy.cpp.o"
  "CMakeFiles/cops_nserver.dir/cache_policy.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/connection.cpp.o"
  "CMakeFiles/cops_nserver.dir/connection.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/debug_trace.cpp.o"
  "CMakeFiles/cops_nserver.dir/debug_trace.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/event_processor.cpp.o"
  "CMakeFiles/cops_nserver.dir/event_processor.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/file_cache.cpp.o"
  "CMakeFiles/cops_nserver.dir/file_cache.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/file_io_service.cpp.o"
  "CMakeFiles/cops_nserver.dir/file_io_service.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/options.cpp.o"
  "CMakeFiles/cops_nserver.dir/options.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/overload_control.cpp.o"
  "CMakeFiles/cops_nserver.dir/overload_control.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/processor_controller.cpp.o"
  "CMakeFiles/cops_nserver.dir/processor_controller.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/profiler.cpp.o"
  "CMakeFiles/cops_nserver.dir/profiler.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/request_context.cpp.o"
  "CMakeFiles/cops_nserver.dir/request_context.cpp.o.d"
  "CMakeFiles/cops_nserver.dir/server.cpp.o"
  "CMakeFiles/cops_nserver.dir/server.cpp.o.d"
  "libcops_nserver.a"
  "libcops_nserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_nserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
