file(REMOVE_RECURSE
  "libcops_nserver.a"
)
