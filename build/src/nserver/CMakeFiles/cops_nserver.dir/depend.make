# Empty dependencies file for cops_nserver.
# This may be replaced when dependencies are built.
