file(REMOVE_RECURSE
  "CMakeFiles/cops_net.dir/acceptor.cpp.o"
  "CMakeFiles/cops_net.dir/acceptor.cpp.o.d"
  "CMakeFiles/cops_net.dir/connector.cpp.o"
  "CMakeFiles/cops_net.dir/connector.cpp.o.d"
  "CMakeFiles/cops_net.dir/event_source.cpp.o"
  "CMakeFiles/cops_net.dir/event_source.cpp.o.d"
  "CMakeFiles/cops_net.dir/inet_address.cpp.o"
  "CMakeFiles/cops_net.dir/inet_address.cpp.o.d"
  "CMakeFiles/cops_net.dir/poller.cpp.o"
  "CMakeFiles/cops_net.dir/poller.cpp.o.d"
  "CMakeFiles/cops_net.dir/reactor.cpp.o"
  "CMakeFiles/cops_net.dir/reactor.cpp.o.d"
  "CMakeFiles/cops_net.dir/socket.cpp.o"
  "CMakeFiles/cops_net.dir/socket.cpp.o.d"
  "CMakeFiles/cops_net.dir/timer_queue.cpp.o"
  "CMakeFiles/cops_net.dir/timer_queue.cpp.o.d"
  "libcops_net.a"
  "libcops_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
