
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/acceptor.cpp" "src/net/CMakeFiles/cops_net.dir/acceptor.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/acceptor.cpp.o.d"
  "/root/repo/src/net/connector.cpp" "src/net/CMakeFiles/cops_net.dir/connector.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/connector.cpp.o.d"
  "/root/repo/src/net/event_source.cpp" "src/net/CMakeFiles/cops_net.dir/event_source.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/event_source.cpp.o.d"
  "/root/repo/src/net/inet_address.cpp" "src/net/CMakeFiles/cops_net.dir/inet_address.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/inet_address.cpp.o.d"
  "/root/repo/src/net/poller.cpp" "src/net/CMakeFiles/cops_net.dir/poller.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/poller.cpp.o.d"
  "/root/repo/src/net/reactor.cpp" "src/net/CMakeFiles/cops_net.dir/reactor.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/reactor.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/cops_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/socket.cpp.o.d"
  "/root/repo/src/net/timer_queue.cpp" "src/net/CMakeFiles/cops_net.dir/timer_queue.cpp.o" "gcc" "src/net/CMakeFiles/cops_net.dir/timer_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
