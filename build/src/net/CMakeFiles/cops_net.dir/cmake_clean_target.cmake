file(REMOVE_RECURSE
  "libcops_net.a"
)
