# Empty compiler generated dependencies file for cops_net.
# This may be replaced when dependencies are built.
