file(REMOVE_RECURSE
  "libcops_baseline.a"
)
