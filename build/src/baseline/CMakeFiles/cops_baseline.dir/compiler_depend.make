# Empty compiler generated dependencies file for cops_baseline.
# This may be replaced when dependencies are built.
