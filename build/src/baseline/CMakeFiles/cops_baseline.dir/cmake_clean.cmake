file(REMOVE_RECURSE
  "CMakeFiles/cops_baseline.dir/threaded_server.cpp.o"
  "CMakeFiles/cops_baseline.dir/threaded_server.cpp.o.d"
  "libcops_baseline.a"
  "libcops_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
