file(REMOVE_RECURSE
  "libcops_ftp.a"
)
