
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftp/command.cpp" "src/ftp/CMakeFiles/cops_ftp.dir/command.cpp.o" "gcc" "src/ftp/CMakeFiles/cops_ftp.dir/command.cpp.o.d"
  "/root/repo/src/ftp/fs_view.cpp" "src/ftp/CMakeFiles/cops_ftp.dir/fs_view.cpp.o" "gcc" "src/ftp/CMakeFiles/cops_ftp.dir/fs_view.cpp.o.d"
  "/root/repo/src/ftp/ftp_server.cpp" "src/ftp/CMakeFiles/cops_ftp.dir/ftp_server.cpp.o" "gcc" "src/ftp/CMakeFiles/cops_ftp.dir/ftp_server.cpp.o.d"
  "/root/repo/src/ftp/session.cpp" "src/ftp/CMakeFiles/cops_ftp.dir/session.cpp.o" "gcc" "src/ftp/CMakeFiles/cops_ftp.dir/session.cpp.o.d"
  "/root/repo/src/ftp/user_db.cpp" "src/ftp/CMakeFiles/cops_ftp.dir/user_db.cpp.o" "gcc" "src/ftp/CMakeFiles/cops_ftp.dir/user_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nserver/CMakeFiles/cops_nserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cops_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
