file(REMOVE_RECURSE
  "CMakeFiles/cops_ftp.dir/command.cpp.o"
  "CMakeFiles/cops_ftp.dir/command.cpp.o.d"
  "CMakeFiles/cops_ftp.dir/fs_view.cpp.o"
  "CMakeFiles/cops_ftp.dir/fs_view.cpp.o.d"
  "CMakeFiles/cops_ftp.dir/ftp_server.cpp.o"
  "CMakeFiles/cops_ftp.dir/ftp_server.cpp.o.d"
  "CMakeFiles/cops_ftp.dir/session.cpp.o"
  "CMakeFiles/cops_ftp.dir/session.cpp.o.d"
  "CMakeFiles/cops_ftp.dir/user_db.cpp.o"
  "CMakeFiles/cops_ftp.dir/user_db.cpp.o.d"
  "libcops_ftp.a"
  "libcops_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
