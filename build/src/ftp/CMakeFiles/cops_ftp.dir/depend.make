# Empty dependencies file for cops_ftp.
# This may be replaced when dependencies are built.
