file(REMOVE_RECURSE
  "CMakeFiles/cops_cluster.dir/load_balancer.cpp.o"
  "CMakeFiles/cops_cluster.dir/load_balancer.cpp.o.d"
  "CMakeFiles/cops_cluster.dir/tcp_relay.cpp.o"
  "CMakeFiles/cops_cluster.dir/tcp_relay.cpp.o.d"
  "libcops_cluster.a"
  "libcops_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
