# Empty dependencies file for cops_cluster.
# This may be replaced when dependencies are built.
