
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/load_balancer.cpp" "src/cluster/CMakeFiles/cops_cluster.dir/load_balancer.cpp.o" "gcc" "src/cluster/CMakeFiles/cops_cluster.dir/load_balancer.cpp.o.d"
  "/root/repo/src/cluster/tcp_relay.cpp" "src/cluster/CMakeFiles/cops_cluster.dir/tcp_relay.cpp.o" "gcc" "src/cluster/CMakeFiles/cops_cluster.dir/tcp_relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/cops_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
