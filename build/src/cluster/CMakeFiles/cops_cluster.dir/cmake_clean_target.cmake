file(REMOVE_RECURSE
  "libcops_cluster.a"
)
