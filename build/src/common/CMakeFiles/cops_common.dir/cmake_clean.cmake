file(REMOVE_RECURSE
  "CMakeFiles/cops_common.dir/byte_buffer.cpp.o"
  "CMakeFiles/cops_common.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/cops_common.dir/config_file.cpp.o"
  "CMakeFiles/cops_common.dir/config_file.cpp.o.d"
  "CMakeFiles/cops_common.dir/histogram.cpp.o"
  "CMakeFiles/cops_common.dir/histogram.cpp.o.d"
  "CMakeFiles/cops_common.dir/logging.cpp.o"
  "CMakeFiles/cops_common.dir/logging.cpp.o.d"
  "CMakeFiles/cops_common.dir/rate_limiter.cpp.o"
  "CMakeFiles/cops_common.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/cops_common.dir/source_stats.cpp.o"
  "CMakeFiles/cops_common.dir/source_stats.cpp.o.d"
  "CMakeFiles/cops_common.dir/string_util.cpp.o"
  "CMakeFiles/cops_common.dir/string_util.cpp.o.d"
  "CMakeFiles/cops_common.dir/thread_pool.cpp.o"
  "CMakeFiles/cops_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/cops_common.dir/zipf.cpp.o"
  "CMakeFiles/cops_common.dir/zipf.cpp.o.d"
  "libcops_common.a"
  "libcops_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
