file(REMOVE_RECURSE
  "libcops_common.a"
)
