# Empty dependencies file for cops_common.
# This may be replaced when dependencies are built.
