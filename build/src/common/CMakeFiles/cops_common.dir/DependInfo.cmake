
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/byte_buffer.cpp" "src/common/CMakeFiles/cops_common.dir/byte_buffer.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/common/config_file.cpp" "src/common/CMakeFiles/cops_common.dir/config_file.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/config_file.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/cops_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/cops_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/rate_limiter.cpp" "src/common/CMakeFiles/cops_common.dir/rate_limiter.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/common/source_stats.cpp" "src/common/CMakeFiles/cops_common.dir/source_stats.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/source_stats.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/common/CMakeFiles/cops_common.dir/string_util.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/string_util.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/cops_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/thread_pool.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/common/CMakeFiles/cops_common.dir/zipf.cpp.o" "gcc" "src/common/CMakeFiles/cops_common.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
