file(REMOVE_RECURSE
  "libcops_loadgen.a"
)
