file(REMOVE_RECURSE
  "CMakeFiles/cops_loadgen.dir/fileset.cpp.o"
  "CMakeFiles/cops_loadgen.dir/fileset.cpp.o.d"
  "CMakeFiles/cops_loadgen.dir/http_client.cpp.o"
  "CMakeFiles/cops_loadgen.dir/http_client.cpp.o.d"
  "libcops_loadgen.a"
  "libcops_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
