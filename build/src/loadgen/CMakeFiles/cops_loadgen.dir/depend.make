# Empty dependencies file for cops_loadgen.
# This may be replaced when dependencies are built.
