file(REMOVE_RECURSE
  "libcops_gdp.a"
)
