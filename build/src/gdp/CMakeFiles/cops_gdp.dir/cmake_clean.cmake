file(REMOVE_RECURSE
  "CMakeFiles/cops_gdp.dir/nserver_template.cpp.o"
  "CMakeFiles/cops_gdp.dir/nserver_template.cpp.o.d"
  "CMakeFiles/cops_gdp.dir/option.cpp.o"
  "CMakeFiles/cops_gdp.dir/option.cpp.o.d"
  "CMakeFiles/cops_gdp.dir/pattern_template.cpp.o"
  "CMakeFiles/cops_gdp.dir/pattern_template.cpp.o.d"
  "CMakeFiles/cops_gdp.dir/reactor_template.cpp.o"
  "CMakeFiles/cops_gdp.dir/reactor_template.cpp.o.d"
  "CMakeFiles/cops_gdp.dir/template_lang.cpp.o"
  "CMakeFiles/cops_gdp.dir/template_lang.cpp.o.d"
  "libcops_gdp.a"
  "libcops_gdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_gdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
