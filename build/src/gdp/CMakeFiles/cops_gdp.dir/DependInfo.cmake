
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gdp/nserver_template.cpp" "src/gdp/CMakeFiles/cops_gdp.dir/nserver_template.cpp.o" "gcc" "src/gdp/CMakeFiles/cops_gdp.dir/nserver_template.cpp.o.d"
  "/root/repo/src/gdp/option.cpp" "src/gdp/CMakeFiles/cops_gdp.dir/option.cpp.o" "gcc" "src/gdp/CMakeFiles/cops_gdp.dir/option.cpp.o.d"
  "/root/repo/src/gdp/pattern_template.cpp" "src/gdp/CMakeFiles/cops_gdp.dir/pattern_template.cpp.o" "gcc" "src/gdp/CMakeFiles/cops_gdp.dir/pattern_template.cpp.o.d"
  "/root/repo/src/gdp/reactor_template.cpp" "src/gdp/CMakeFiles/cops_gdp.dir/reactor_template.cpp.o" "gcc" "src/gdp/CMakeFiles/cops_gdp.dir/reactor_template.cpp.o.d"
  "/root/repo/src/gdp/template_lang.cpp" "src/gdp/CMakeFiles/cops_gdp.dir/template_lang.cpp.o" "gcc" "src/gdp/CMakeFiles/cops_gdp.dir/template_lang.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
