# Empty compiler generated dependencies file for cops_gdp.
# This may be replaced when dependencies are built.
