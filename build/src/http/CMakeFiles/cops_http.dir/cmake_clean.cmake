file(REMOVE_RECURSE
  "CMakeFiles/cops_http.dir/http_date.cpp.o"
  "CMakeFiles/cops_http.dir/http_date.cpp.o.d"
  "CMakeFiles/cops_http.dir/http_server.cpp.o"
  "CMakeFiles/cops_http.dir/http_server.cpp.o.d"
  "CMakeFiles/cops_http.dir/mime.cpp.o"
  "CMakeFiles/cops_http.dir/mime.cpp.o.d"
  "CMakeFiles/cops_http.dir/request.cpp.o"
  "CMakeFiles/cops_http.dir/request.cpp.o.d"
  "CMakeFiles/cops_http.dir/request_parser.cpp.o"
  "CMakeFiles/cops_http.dir/request_parser.cpp.o.d"
  "CMakeFiles/cops_http.dir/response.cpp.o"
  "CMakeFiles/cops_http.dir/response.cpp.o.d"
  "libcops_http.a"
  "libcops_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
