file(REMOVE_RECURSE
  "libcops_http.a"
)
