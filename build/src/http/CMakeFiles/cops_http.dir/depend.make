# Empty dependencies file for cops_http.
# This may be replaced when dependencies are built.
