
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/http_date.cpp" "src/http/CMakeFiles/cops_http.dir/http_date.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/http_date.cpp.o.d"
  "/root/repo/src/http/http_server.cpp" "src/http/CMakeFiles/cops_http.dir/http_server.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/http_server.cpp.o.d"
  "/root/repo/src/http/mime.cpp" "src/http/CMakeFiles/cops_http.dir/mime.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/mime.cpp.o.d"
  "/root/repo/src/http/request.cpp" "src/http/CMakeFiles/cops_http.dir/request.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/request.cpp.o.d"
  "/root/repo/src/http/request_parser.cpp" "src/http/CMakeFiles/cops_http.dir/request_parser.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/request_parser.cpp.o.d"
  "/root/repo/src/http/response.cpp" "src/http/CMakeFiles/cops_http.dir/response.cpp.o" "gcc" "src/http/CMakeFiles/cops_http.dir/response.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nserver/CMakeFiles/cops_nserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cops_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
