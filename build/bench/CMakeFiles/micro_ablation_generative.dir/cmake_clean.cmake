file(REMOVE_RECURSE
  "CMakeFiles/micro_ablation_generative.dir/micro_ablation_generative.cpp.o"
  "CMakeFiles/micro_ablation_generative.dir/micro_ablation_generative.cpp.o.d"
  "micro_ablation_generative"
  "micro_ablation_generative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ablation_generative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
