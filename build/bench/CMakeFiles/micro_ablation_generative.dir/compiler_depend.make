# Empty compiler generated dependencies file for micro_ablation_generative.
# This may be replaced when dependencies are built.
