file(REMOVE_RECURSE
  "CMakeFiles/fig5_scheduling.dir/fig5_scheduling.cpp.o"
  "CMakeFiles/fig5_scheduling.dir/fig5_scheduling.cpp.o.d"
  "fig5_scheduling"
  "fig5_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
