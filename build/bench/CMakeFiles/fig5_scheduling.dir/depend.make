# Empty dependencies file for fig5_scheduling.
# This may be replaced when dependencies are built.
