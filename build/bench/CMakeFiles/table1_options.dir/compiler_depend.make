# Empty compiler generated dependencies file for table1_options.
# This may be replaced when dependencies are built.
