file(REMOVE_RECURSE
  "CMakeFiles/table1_options.dir/table1_options.cpp.o"
  "CMakeFiles/table1_options.dir/table1_options.cpp.o.d"
  "table1_options"
  "table1_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
