file(REMOVE_RECURSE
  "CMakeFiles/future_distributed.dir/future_distributed.cpp.o"
  "CMakeFiles/future_distributed.dir/future_distributed.cpp.o.d"
  "future_distributed"
  "future_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
