# Empty dependencies file for future_distributed.
# This may be replaced when dependencies are built.
