# Empty compiler generated dependencies file for ablation_o2_pool.
# This may be replaced when dependencies are built.
