file(REMOVE_RECURSE
  "CMakeFiles/ablation_o2_pool.dir/ablation_o2_pool.cpp.o"
  "CMakeFiles/ablation_o2_pool.dir/ablation_o2_pool.cpp.o.d"
  "ablation_o2_pool"
  "ablation_o2_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_o2_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
