# Empty dependencies file for micro_reactor_dispatch.
# This may be replaced when dependencies are built.
