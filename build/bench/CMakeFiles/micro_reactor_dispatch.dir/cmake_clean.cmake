file(REMOVE_RECURSE
  "CMakeFiles/micro_reactor_dispatch.dir/micro_reactor_dispatch.cpp.o"
  "CMakeFiles/micro_reactor_dispatch.dir/micro_reactor_dispatch.cpp.o.d"
  "micro_reactor_dispatch"
  "micro_reactor_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reactor_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
