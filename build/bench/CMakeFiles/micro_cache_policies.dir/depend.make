# Empty dependencies file for micro_cache_policies.
# This may be replaced when dependencies are built.
