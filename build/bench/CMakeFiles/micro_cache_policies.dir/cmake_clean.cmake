file(REMOVE_RECURSE
  "CMakeFiles/micro_cache_policies.dir/micro_cache_policies.cpp.o"
  "CMakeFiles/micro_cache_policies.dir/micro_cache_policies.cpp.o.d"
  "micro_cache_policies"
  "micro_cache_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
