file(REMOVE_RECURSE
  "CMakeFiles/ablation_seda_stages.dir/ablation_seda_stages.cpp.o"
  "CMakeFiles/ablation_seda_stages.dir/ablation_seda_stages.cpp.o.d"
  "ablation_seda_stages"
  "ablation_seda_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seda_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
