# Empty dependencies file for ablation_seda_stages.
# This may be replaced when dependencies are built.
