# Empty dependencies file for fig6_overload.
# This may be replaced when dependencies are built.
