file(REMOVE_RECURSE
  "CMakeFiles/fig6_overload.dir/fig6_overload.cpp.o"
  "CMakeFiles/fig6_overload.dir/fig6_overload.cpp.o.d"
  "fig6_overload"
  "fig6_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
