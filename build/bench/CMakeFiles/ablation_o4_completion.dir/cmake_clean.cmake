file(REMOVE_RECURSE
  "CMakeFiles/ablation_o4_completion.dir/ablation_o4_completion.cpp.o"
  "CMakeFiles/ablation_o4_completion.dir/ablation_o4_completion.cpp.o.d"
  "ablation_o4_completion"
  "ablation_o4_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_o4_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
