# Empty dependencies file for ablation_o4_completion.
# This may be replaced when dependencies are built.
