file(REMOVE_RECURSE
  "CMakeFiles/table2_crosscut.dir/table2_crosscut.cpp.o"
  "CMakeFiles/table2_crosscut.dir/table2_crosscut.cpp.o.d"
  "table2_crosscut"
  "table2_crosscut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_crosscut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
