# Empty dependencies file for table2_crosscut.
# This may be replaced when dependencies are built.
