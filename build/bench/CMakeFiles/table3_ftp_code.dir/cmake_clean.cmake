file(REMOVE_RECURSE
  "CMakeFiles/table3_ftp_code.dir/table3_ftp_code.cpp.o"
  "CMakeFiles/table3_ftp_code.dir/table3_ftp_code.cpp.o.d"
  "table3_ftp_code"
  "table3_ftp_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ftp_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
