# Empty compiler generated dependencies file for table3_ftp_code.
# This may be replaced when dependencies are built.
