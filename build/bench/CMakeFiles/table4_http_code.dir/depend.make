# Empty dependencies file for table4_http_code.
# This may be replaced when dependencies are built.
