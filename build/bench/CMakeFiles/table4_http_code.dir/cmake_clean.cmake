file(REMOVE_RECURSE
  "CMakeFiles/table4_http_code.dir/table4_http_code.cpp.o"
  "CMakeFiles/table4_http_code.dir/table4_http_code.cpp.o.d"
  "table4_http_code"
  "table4_http_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_http_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
