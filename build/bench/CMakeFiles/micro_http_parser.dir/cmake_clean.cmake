file(REMOVE_RECURSE
  "CMakeFiles/micro_http_parser.dir/micro_http_parser.cpp.o"
  "CMakeFiles/micro_http_parser.dir/micro_http_parser.cpp.o.d"
  "micro_http_parser"
  "micro_http_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_http_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
