# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/nserver_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/server_integration_test[1]_include.cmake")
include("/root/repo/build/tests/ftp_test[1]_include.cmake")
include("/root/repo/build/tests/gdp_test[1]_include.cmake")
include("/root/repo/build/tests/loadgen_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
