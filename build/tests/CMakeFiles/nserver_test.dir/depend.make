# Empty dependencies file for nserver_test.
# This may be replaced when dependencies are built.
