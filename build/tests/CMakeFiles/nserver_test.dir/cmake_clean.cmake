file(REMOVE_RECURSE
  "CMakeFiles/nserver_test.dir/nserver_test.cpp.o"
  "CMakeFiles/nserver_test.dir/nserver_test.cpp.o.d"
  "nserver_test"
  "nserver_test.pdb"
  "nserver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
