# Empty compiler generated dependencies file for gdp_test.
# This may be replaced when dependencies are built.
