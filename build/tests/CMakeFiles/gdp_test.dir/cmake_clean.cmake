file(REMOVE_RECURSE
  "CMakeFiles/gdp_test.dir/gdp_test.cpp.o"
  "CMakeFiles/gdp_test.dir/gdp_test.cpp.o.d"
  "gdp_test"
  "gdp_test.pdb"
  "gdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
