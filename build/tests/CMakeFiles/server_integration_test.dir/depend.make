# Empty dependencies file for server_integration_test.
# This may be replaced when dependencies are built.
