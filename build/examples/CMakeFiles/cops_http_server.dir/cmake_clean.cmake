file(REMOVE_RECURSE
  "CMakeFiles/cops_http_server.dir/cops_http.cpp.o"
  "CMakeFiles/cops_http_server.dir/cops_http.cpp.o.d"
  "cops_http_server"
  "cops_http_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_http_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
