# Empty compiler generated dependencies file for cops_http_server.
# This may be replaced when dependencies are built.
