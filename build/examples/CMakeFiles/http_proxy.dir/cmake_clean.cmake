file(REMOVE_RECURSE
  "CMakeFiles/http_proxy.dir/http_proxy.cpp.o"
  "CMakeFiles/http_proxy.dir/http_proxy.cpp.o.d"
  "http_proxy"
  "http_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
