file(REMOVE_RECURSE
  "CMakeFiles/http_cluster.dir/http_cluster.cpp.o"
  "CMakeFiles/http_cluster.dir/http_cluster.cpp.o.d"
  "http_cluster"
  "http_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
