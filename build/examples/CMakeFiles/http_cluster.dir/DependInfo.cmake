
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/http_cluster.cpp" "examples/CMakeFiles/http_cluster.dir/http_cluster.cpp.o" "gcc" "examples/CMakeFiles/http_cluster.dir/http_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nserver/CMakeFiles/cops_nserver.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/cops_http.dir/DependInfo.cmake"
  "/root/repo/build/src/ftp/CMakeFiles/cops_ftp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/cops_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cops_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cops_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
