# Empty compiler generated dependencies file for http_cluster.
# This may be replaced when dependencies are built.
