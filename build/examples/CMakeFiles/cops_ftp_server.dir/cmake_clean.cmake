file(REMOVE_RECURSE
  "CMakeFiles/cops_ftp_server.dir/cops_ftp.cpp.o"
  "CMakeFiles/cops_ftp_server.dir/cops_ftp.cpp.o.d"
  "cops_ftp_server"
  "cops_ftp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cops_ftp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
