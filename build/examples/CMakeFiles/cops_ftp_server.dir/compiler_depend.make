# Empty compiler generated dependencies file for cops_ftp_server.
# This may be replaced when dependencies are built.
