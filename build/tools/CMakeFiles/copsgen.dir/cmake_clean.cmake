file(REMOVE_RECURSE
  "CMakeFiles/copsgen.dir/copsgen_main.cpp.o"
  "CMakeFiles/copsgen.dir/copsgen_main.cpp.o.d"
  "copsgen"
  "copsgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/copsgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
