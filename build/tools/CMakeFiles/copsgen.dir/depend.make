# Empty dependencies file for copsgen.
# This may be replaced when dependencies are built.
