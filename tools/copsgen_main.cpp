// copsgen — the CO₂P₃S-style generative pattern CLI.
//
// Usage:
//   copsgen --list-options
//   copsgen --options app.options --out gen_dir [--name MyServer] [--port N]
//   copsgen --preset cops-http --out gen_dir
//   copsgen --crosscut                 (print the Table 2 matrix)
//
// The options file is `key = value` (see ConfigFile); unset options take
// their defaults.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/config_file.hpp"
#include "gdp/pattern_template.hpp"

namespace {

void print_usage() {
  std::puts(
      "copsgen — generate an application framework from a generative design "
      "pattern template\n"
      "\n"
      "  copsgen [--pattern nserver|reactor] ...   (default: nserver)\n"
      "  copsgen --list-options\n"
      "      Print every option, its legal values and default (Table 1).\n"
      "  copsgen --crosscut\n"
      "      Print the option/class crosscut matrix (Table 2).\n"
      "  copsgen --options FILE --out DIR [--name NAME] [--port N]\n"
      "      Instantiate the template with the options in FILE.\n"
      "  copsgen --preset cops-http|cops-ftp --out DIR [--name NAME]\n"
      "      Use a paper preset (Table 1's application columns).\n");
}

int list_options(const cops::gdp::PatternTemplate& tmpl) {
  std::printf("%-22s %-46s %s\n", "option", "legal values", "default");
  for (const auto& spec : tmpl.options().specs()) {
    std::string legal;
    switch (spec.type) {
      case cops::gdp::OptionType::kBool:
        legal = "yes/no";
        break;
      case cops::gdp::OptionType::kInt:
        legal = std::to_string(spec.min_value) + ".." +
                std::to_string(spec.max_value);
        break;
      case cops::gdp::OptionType::kEnum:
        for (const auto& v : spec.legal_values) {
          if (!legal.empty()) legal += "/";
          legal += v;
        }
        break;
    }
    std::printf("%-22s %-46s %s   (%s)\n", spec.key.c_str(), legal.c_str(),
                spec.default_value.c_str(), spec.label.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string options_path;
  std::string pattern_name = "nserver";
  std::string preset;
  std::string out_dir;
  std::string app_name = "GeneratedServer";
  std::string listen_port = "8080";
  bool want_list = false;
  bool want_crosscut = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list-options") {
      want_list = true;
    } else if (arg == "--crosscut") {
      want_crosscut = true;
    } else if (arg == "--pattern") {
      if (const char* v = next()) pattern_name = v;
    } else if (arg == "--options") {
      if (const char* v = next()) options_path = v;
    } else if (arg == "--preset") {
      if (const char* v = next()) preset = v;
    } else if (arg == "--out") {
      if (const char* v = next()) out_dir = v;
    } else if (arg == "--name") {
      if (const char* v = next()) app_name = v;
    } else if (arg == "--port") {
      if (const char* v = next()) listen_port = v;
    } else {
      print_usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  auto pattern = cops::gdp::find_pattern(pattern_name);
  if (!pattern) {
    std::fprintf(stderr, "unknown pattern '%s' (try nserver, reactor)\n",
                 pattern_name.c_str());
    return 2;
  }
  const auto& tmpl = *pattern;
  if (want_list) return list_options(tmpl);
  if (want_crosscut) {
    auto table = tmpl.format_crosscut_table();
    if (!table.is_ok()) {
      std::fprintf(stderr, "error: %s\n", table.status().to_string().c_str());
      return 1;
    }
    std::fputs(table.value().c_str(), stdout);
    return 0;
  }

  cops::gdp::OptionSet options;
  if (!preset.empty()) {
    if (preset == "cops-http") {
      options = cops::gdp::nserver_http_options();
    } else if (preset == "cops-ftp") {
      options = cops::gdp::nserver_ftp_options();
    } else {
      std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
      return 2;
    }
  } else if (!options_path.empty()) {
    auto config = cops::ConfigFile::load(options_path);
    if (!config.is_ok()) {
      std::fprintf(stderr, "error: %s\n", config.status().to_string().c_str());
      return 1;
    }
    for (const auto& [key, value] : config.value().entries()) {
      options.set(key, value);
    }
  } else {
    print_usage();
    return 2;
  }

  if (out_dir.empty()) {
    std::fprintf(stderr, "error: --out DIR is required\n");
    return 2;
  }

  auto report = tmpl.generate(std::move(options), out_dir,
                              {{"app_name", app_name},
                               {"listen_port", listen_port}});
  if (!report.is_ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("generated %s into %s\n", report.value().summary().c_str(),
              out_dir.c_str());
  for (const auto& file : report.value().files) {
    std::printf("  %-60s %5d NCSS\n", file.path.c_str(), file.stats.ncss);
  }
  return 0;
}
