// Echo server demonstrating the full five-step cycle (Fig. 1) with a
// line-oriented protocol, plus event scheduling (option O8): lines starting
// with '!' are classified high priority and overtake queued normal lines.
//
//   $ ./echo_server 9001 &
//   $ printf 'hello\n!urgent\n' | nc 127.0.0.1 9001
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "nserver/request_context.hpp"
#include "nserver/server.hpp"

namespace {

struct EchoRequest {
  std::string line;
};

class EchoHooks : public cops::nserver::AppHooks {
 public:
  // Decode Request: one '\n'-terminated line per request.
  cops::nserver::DecodeResult decode(cops::nserver::RequestContext&,
                                     cops::ByteBuffer& in) override {
    const size_t eol = in.find("\n");
    if (eol == std::string_view::npos) {
      return cops::nserver::DecodeResult::need_more();
    }
    EchoRequest request{std::string(in.view().substr(0, eol))};
    in.consume(eol + 1);
    // The priority hook (the paper's "13 lines"): '!' lines jump the queue.
    const int priority = (!request.line.empty() && request.line[0] == '!')
                             ? 0
                             : 1;
    return cops::nserver::DecodeResult::request_ready(std::move(request),
                                                      priority);
  }

  // Handle Request: uppercase is our "service".
  void handle(cops::nserver::RequestContext& ctx, std::any request) override {
    auto echo = std::any_cast<EchoRequest>(std::move(request));
    for (auto& c : echo.line) c = static_cast<char>(::toupper(c));
    ctx.reply(std::move(echo));
  }

  // Encode Reply: append the newline framing.
  std::string encode(cops::nserver::RequestContext&,
                     std::any response) override {
    return std::any_cast<EchoRequest>(std::move(response)).line + "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  cops::nserver::ServerOptions options;
  options.event_scheduling = true;          // O8
  options.priority_quotas = {8, 2};         // high gets 8 per round, low 2
  options.separate_processor_pool = true;   // required by O8
  options.processor_threads = 1;            // serialize to make order visible
  options.listen_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  cops::nserver::Server server(options, std::make_shared<EchoHooks>());
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("echo server (with priority scheduling) on 127.0.0.1:%u\n",
              server.port());
  if (argc > 2 && std::string(argv[2]) == "--once") {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server.stop();
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
