// Chat server: demonstrates server-initiated sends across connections.
//
// Every line a client sends is broadcast to every other connected client —
// exercising the User event source (broadcasts are posted onto each target
// connection's dispatcher from the worker handling the sender's request)
// and the on_connect/on_close lifecycle hooks.
//
//   $ ./chat_server 9002 &
//   $ nc 127.0.0.1 9002      (in two terminals)
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "nserver/request_context.hpp"
#include "nserver/server.hpp"

namespace {

// The room holds one long-lived RequestContext per member; a context keeps
// its connection reachable and its send() is thread-safe (it posts to the
// connection's own dispatcher).
class ChatRoom {
 public:
  void join(uint64_t id, cops::nserver::RequestContextPtr ctx) {
    std::lock_guard lock(mutex_);
    members_[id] = std::move(ctx);
  }
  void leave(uint64_t id) {
    std::lock_guard lock(mutex_);
    members_.erase(id);
  }
  void broadcast(uint64_t from, const std::string& line) {
    std::lock_guard lock(mutex_);
    const std::string message =
        "[user " + std::to_string(from) + "] " + line + "\n";
    for (auto& [id, ctx] : members_) {
      if (id != from && !ctx->connection_closed()) ctx->send(message);
    }
  }
  [[nodiscard]] size_t size() const {
    std::lock_guard lock(mutex_);
    return members_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<uint64_t, cops::nserver::RequestContextPtr> members_;
};

class ChatHooks : public cops::nserver::AppHooks {
 public:
  void on_connect(cops::nserver::RequestContext& ctx) override {
    room_.join(ctx.connection_id(), ctx.make_handle());
    ctx.send("* welcome, user " + std::to_string(ctx.connection_id()) +
             " (" + std::to_string(room_.size()) + " online)\n");
  }

  void on_close(uint64_t connection_id) override {
    room_.leave(connection_id);
  }

  cops::nserver::DecodeResult decode(cops::nserver::RequestContext&,
                                     cops::ByteBuffer& in) override {
    const size_t eol = in.find("\n");
    if (eol == std::string_view::npos) {
      return cops::nserver::DecodeResult::need_more();
    }
    std::string line(in.view().substr(0, eol));
    if (!line.empty() && line.back() == '\r') line.pop_back();
    in.consume(eol + 1);
    return cops::nserver::DecodeResult::request_ready(std::move(line));
  }

  void handle(cops::nserver::RequestContext& ctx, std::any request) override {
    const auto line = std::any_cast<std::string>(std::move(request));
    room_.broadcast(ctx.connection_id(), line);
    ctx.finish();  // nothing to send back to the sender
  }

 private:
  ChatRoom room_;
};

}  // namespace

int main(int argc, char** argv) {
  cops::nserver::ServerOptions options;
  options.separate_processor_pool = true;
  options.processor_threads = 2;
  options.listen_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  cops::nserver::Server server(options, std::make_shared<ChatHooks>());
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("chat server on 127.0.0.1:%u — connect with nc\n",
              server.port());
  if (argc > 2 && std::string(argv[2]) == "--once") {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server.stop();
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
