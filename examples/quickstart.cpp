// Quickstart: a Time server in ~30 lines of application code.
//
// This is the paper's "trivial application" end of the N-Server spectrum
// (Section I).  It uses the Fig. 2 structural variant — no Decode/Encode
// steps (option O3 = No): any bytes from the client trigger a time reply.
//
//   $ ./quickstart 9000 &
//   $ echo hi | nc 127.0.0.1 9000
//   2026-07-05T12:00:00Z
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

#include "nserver/request_context.hpp"
#include "nserver/server.hpp"

namespace {

class TimeHooks : public cops::nserver::AppHooks {
 public:
  // O3 = No (Fig. 2): no decode() — raw chunks arrive directly in handle().
  void handle(cops::nserver::RequestContext& ctx, std::any) override {
    const auto now = std::chrono::system_clock::now();
    const std::time_t t = std::chrono::system_clock::to_time_t(now);
    char buf[64];
    std::tm utc{};
    gmtime_r(&t, &utc);
    std::strftime(buf, sizeof(buf), "%FT%TZ\n", &utc);
    ctx.reply_raw(buf);
  }
};

}  // namespace

int main(int argc, char** argv) {
  cops::nserver::ServerOptions options;
  options.encode_decode = false;  // O3 = No (Fig. 2): no Decode/Encode steps
  options.separate_processor_pool = true;
  options.processor_threads = 1;
  options.listen_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  cops::nserver::Server server(options, std::make_shared<TimeHooks>());
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("time server listening on 127.0.0.1:%u\n", server.port());
  std::printf("try: echo hi | nc 127.0.0.1 %u\n", server.port());
  if (argc > 2 && std::string(argv[2]) == "--once") {
    // Test hook: run briefly and exit.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    server.stop();
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
