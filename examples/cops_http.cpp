// COPS-HTTP — the paper's Web server as a runnable binary.
//
//   $ ./cops_http --root ./htdocs --port 8080
//   $ ./cops_http --root ./htdocs --port 8080 --cache lfu --profiling
//
// All twelve Table 1 options are reachable from the command line; the
// defaults are the paper's COPS-HTTP settings (one dispatcher, separate
// pool, async completions, static threads, 20 MB LRU cache).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "http/http_server.hpp"
#include "net/uring.hpp"

namespace {

void usage() {
  std::puts(
      "cops_http --root DIR [--port N] [--dispatchers N] [--no-pool]\n"
      "          [--threads N] [--sync-completion] [--dynamic-threads]\n"
      "          [--cache lru|lfu|lru-min|lru-threshold|hyper-g|none]\n"
      "          [--cache-mb N] [--scheduling] [--overload] [--idle-ms N]\n"
      "          [--overload-mode watermark|adaptive] [--overload-target-ms N]\n"
      "          [--auto-index] [--debug] [--profiling] [--logging]\n"
      "          [--send-path copy|writev|sendfile] [--sendfile-min BYTES]\n"
      "          [--body-framing content_length|chunked] [--chunked-min BYTES]\n"
      "          [--accept-path dispatch|reuseport] [--backlog N]\n"
      "          [--io-backend epoll|io_uring]\n"
      "          [--l1-entries N] [--l1-max-bytes BYTES]\n"
      "          [--admin] [--admin-port N] [--run-seconds N] [--version]");
}

void print_version() {
  std::printf("cops_http (N-Server pattern instance)\n");
  std::printf("io_uring backend: %s, runtime probe: %s\n",
              cops::net::uring_compiled() ? "compiled in (COPS_WITH_LIBURING)"
                                          : "compiled out",
              cops::net::uring_available() ? "available" : "unavailable");
}

cops::nserver::CachePolicyKind parse_cache(const std::string& name) {
  using cops::nserver::CachePolicyKind;
  if (name == "lru") return CachePolicyKind::kLru;
  if (name == "lfu") return CachePolicyKind::kLfu;
  if (name == "lru-min") return CachePolicyKind::kLruMin;
  if (name == "lru-threshold") return CachePolicyKind::kLruThreshold;
  if (name == "hyper-g") return CachePolicyKind::kHyperG;
  return CachePolicyKind::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = cops::http::CopsHttpServer::default_options();
  cops::http::HttpServerConfig config;
  int run_seconds = 0;  // 0 = run forever

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--root") {
      config.doc_root = next();
    } else if (arg == "--port") {
      options.listen_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--dispatchers") {
      options.dispatcher_threads = std::atoi(next());
    } else if (arg == "--no-pool") {
      options.separate_processor_pool = false;
    } else if (arg == "--threads") {
      options.processor_threads = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--sync-completion") {
      options.completion = cops::nserver::CompletionMode::kSynchronous;
    } else if (arg == "--dynamic-threads") {
      options.thread_allocation = cops::nserver::ThreadAllocation::kDynamic;
    } else if (arg == "--cache") {
      options.cache_policy = parse_cache(next());
    } else if (arg == "--cache-mb") {
      options.cache_capacity_bytes =
          static_cast<size_t>(std::atol(next())) * 1024 * 1024;
    } else if (arg == "--scheduling") {
      options.event_scheduling = true;
    } else if (arg == "--overload") {
      options.overload_control = true;
    } else if (arg == "--overload-mode") {
      // S5: adaptive is a refinement of O9, so it implies overload_control.
      options.overload_control = true;
      options.overload_mode = std::string(next()) == "adaptive"
                                  ? cops::nserver::OverloadMode::kAdaptive
                                  : cops::nserver::OverloadMode::kWatermark;
    } else if (arg == "--overload-target-ms") {
      options.overload_target_delay =
          std::chrono::milliseconds(std::atoi(next()));
    } else if (arg == "--idle-ms") {
      options.shutdown_long_idle = true;
      options.idle_timeout = std::chrono::milliseconds(std::atoi(next()));
    } else if (arg == "--auto-index") {
      config.auto_index = true;
    } else if (arg == "--debug") {
      options.mode = cops::nserver::ServerMode::kDebug;
    } else if (arg == "--profiling") {
      options.profiling = true;
    } else if (arg == "--admin") {
      // O11+: admin/metrics endpoint; requires the profiler, so turn it on.
      options.profiling = true;
      options.stats_export = cops::nserver::StatsExport::kAdminHttp;
    } else if (arg == "--admin-port") {
      options.profiling = true;
      options.stats_export = cops::nserver::StatsExport::kAdminHttp;
      options.admin_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--send-path") {
      const std::string mode = next();
      options.send_path = mode == "copy" ? cops::nserver::SendPath::kCopy
                          : mode == "sendfile"
                              ? cops::nserver::SendPath::kSendfile
                              : cops::nserver::SendPath::kWritev;
    } else if (arg == "--sendfile-min") {
      options.sendfile_min_bytes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--body-framing") {
      options.body_framing = std::string(next()) == "chunked"
                                 ? cops::nserver::BodyFraming::kChunked
                                 : cops::nserver::BodyFraming::kContentLength;
    } else if (arg == "--chunked-min") {
      options.chunked_min_bytes = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--accept-path") {
      // S6: one SO_REUSEPORT listener per shard vs the single-listener
      // dispatch hop.
      options.accept_path = std::string(next()) == "reuseport"
                                ? cops::nserver::AcceptPath::kReuseport
                                : cops::nserver::AcceptPath::kDispatch;
    } else if (arg == "--io-backend") {
      // S7: completion-driven io_uring reactors vs the classic epoll loop.
      // io_uring silently degrades to epoll when the kernel probe fails.
      options.io_backend = std::string(next()) == "io_uring"
                               ? cops::nserver::IoBackend::kIoUring
                               : cops::nserver::IoBackend::kEpoll;
    } else if (arg == "--version") {
      print_version();
      return 0;
    } else if (arg == "--backlog") {
      options.listen_backlog = std::atoi(next());
    } else if (arg == "--l1-entries") {
      // Two-tier cache: per-shard L1 slots in front of the policy cache.
      options.cache_l1_entries = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--l1-max-bytes") {
      options.cache_l1_entry_max_bytes =
          static_cast<size_t>(std::atol(next()));
    } else if (arg == "--logging") {
      options.logging = true;
    } else if (arg == "--run-seconds") {
      run_seconds = std::atoi(next());
    } else {
      usage();
      return arg == "--help" ? 0 : 2;
    }
  }
  if (config.doc_root == ".") {
    std::fprintf(stderr, "note: serving the current directory; use --root\n");
  }

  cops::http::CopsHttpServer server(options, config);
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("COPS-HTTP listening on 127.0.0.1:%u (doc root %s)\n",
              server.port(), config.doc_root.c_str());
  if (options.io_backend == cops::nserver::IoBackend::kIoUring) {
    std::printf("io backend: %s\n",
                cops::nserver::to_string(server.server().effective_io_backend()));
  }
  if (server.admin_port() != 0) {
    std::printf("admin endpoint at http://%s:%u/stats\n",
                options.admin_host.c_str(), server.admin_port());
  }

  const auto report = [&] {
    if (!options.profiling) return;
    const auto snap = server.server().profile();
    std::printf("profile: %s\n", snap.to_string().c_str());
  };
  if (run_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(run_seconds));
    report();
    server.stop();
    return 0;
  }
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(10));
    report();
  }
}
