// Streaming HTTP reverse proxy on the src/proxy data plane.
//
// This used to be a blocking, buffer-everything, connection-per-request
// demo riding the N-Server's worker pool; it is now the front end of the
// streaming L7 tier: one reactor, keep-alive upstream pools (generative
// option proxy_upstream=pooled), streamed request/response bodies in both
// directions, watermark backpressure, and pluggable backend selection.
//
//   $ ./http_proxy 8888 127.0.0.1 8080 [127.0.0.1 8081 ...] \
//         [--upstream-mode pooled|per_request] [--policy round_robin|...] \
//         [--admin-port N] [--once]
//   $ curl -s http://127.0.0.1:8888/index.html
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "proxy/proxy_server.hpp"

int main(int argc, char** argv) {
  if (argc < 4) {
    std::puts(
        "http_proxy LISTEN_PORT BACKEND_HOST BACKEND_PORT "
        "[BACKEND_HOST BACKEND_PORT ...]\n"
        "  [--upstream-mode pooled|per_request] [--policy round_robin|"
        "least_connections|p2c|ring_hash]\n"
        "  [--pool-cap N] [--admin-port N] [--once]");
    return 2;
  }
  cops::proxy::ProxyConfig config;
  config.listen_port = static_cast<uint16_t>(std::atoi(argv[1]));

  std::vector<cops::net::InetAddress> backends;
  int arg = 2;
  bool once = false;
  while (arg < argc) {
    const std::string token = argv[arg];
    if (token == "--upstream-mode") {
      if (++arg >= argc) break;
      config.upstream_mode = std::strcmp(argv[arg], "per_request") == 0
                                 ? cops::nserver::UpstreamMode::kPerRequest
                                 : cops::nserver::UpstreamMode::kPooled;
      ++arg;
    } else if (token == "--policy") {
      if (++arg >= argc) break;
      const std::string policy = argv[arg++];
      if (policy == "least_connections") {
        config.policy = cops::cluster::BalancePolicy::kLeastConnections;
      } else if (policy == "p2c") {
        config.policy = cops::cluster::BalancePolicy::kPowerOfTwoChoices;
      } else if (policy == "ring_hash") {
        config.policy = cops::cluster::BalancePolicy::kRingHash;
      } else {
        config.policy = cops::cluster::BalancePolicy::kRoundRobin;
      }
    } else if (token == "--pool-cap") {
      if (++arg >= argc) break;
      config.pool_max_per_backend = static_cast<size_t>(std::atoi(argv[arg++]));
      config.pool_max_idle_per_backend = config.pool_max_per_backend;
    } else if (token == "--admin-port") {
      if (++arg >= argc) break;
      config.admin_enabled = true;
      config.admin_port = static_cast<uint16_t>(std::atoi(argv[arg++]));
    } else if (token == "--once") {
      once = true;
      ++arg;
    } else {
      if (arg + 1 >= argc) {
        std::fprintf(stderr, "backend %s needs a port\n", token.c_str());
        return 2;
      }
      auto addr = cops::net::InetAddress::parse(
          token, static_cast<uint16_t>(std::atoi(argv[arg + 1])));
      if (!addr.is_ok()) {
        std::fprintf(stderr, "bad backend address %s\n", token.c_str());
        return 2;
      }
      backends.push_back(addr.value());
      arg += 2;
    }
  }
  if (backends.empty()) {
    std::fprintf(stderr, "no backends given\n");
    return 2;
  }

  cops::proxy::ProxyServer proxy(config);
  for (const auto& addr : backends) proxy.add_backend(addr);
  auto status = proxy.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("HTTP proxy on 127.0.0.1:%u -> %zu backend(s), %s upstreams\n",
              proxy.port(), backends.size(),
              config.upstream_mode == cops::nserver::UpstreamMode::kPooled
                  ? "pooled"
                  : "per-request");
  if (config.admin_enabled) {
    std::printf("admin endpoint (/stats, /stats.json, /healthz) on port %u\n",
                proxy.admin_port());
  }
  if (once) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    proxy.stop();
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
