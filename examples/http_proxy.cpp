// Forward HTTP proxy — a seventh N-Server application, showing the pattern
// stretching to a middlebox: each proxied request performs blocking upstream
// I/O on an Event Processor worker (the COPS-FTP model: synchronous
// completions + dynamic thread allocation grow the pool under load).
//
//   $ ./http_proxy 8888 127.0.0.1 8080 &     # proxy → upstream
//   $ curl -s http://127.0.0.1:8888/index.html
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/string_util.hpp"
#include "http/request_parser.hpp"
#include "http/response.hpp"
#include "nserver/request_context.hpp"
#include "nserver/server.hpp"

namespace {

// Blocking one-shot upstream exchange (runs on a worker thread).
std::string fetch_upstream(const std::string& host, uint16_t port,
                           const cops::http::HttpRequest& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string wire = std::string(cops::http::to_string(request.method)) +
                     " " + request.target +
                     " HTTP/1.1\r\nHost: upstream\r\nConnection: close\r\n";
  for (const auto& [name, value] : request.headers) {
    // The parser already decoded the body: chunked uploads arrive here
    // de-chunked, so the original framing headers must not be forwarded
    // (and the expectation was already answered on the client side).
    if (name == "host" || name == "connection" ||
        name == "transfer-encoding" || name == "content-length" ||
        name == "expect") {
      continue;
    }
    wire.append(name);
    wire.append(": ");
    wire.append(value);
    wire.append("\r\n");
  }
  // Re-frame the decoded body with an explicit length.
  if (!request.body.empty() ||
      request.headers.find_index("content-length") != cops::http::HeaderMap::npos ||
      request.headers.find_index("transfer-encoding") != cops::http::HeaderMap::npos) {
    wire += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  wire += "\r\n" + request.body;
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ProxyHooks : public cops::nserver::AppHooks {
 public:
  ProxyHooks(std::string upstream_host, uint16_t upstream_port)
      : host_(std::move(upstream_host)), port_(upstream_port) {}

  cops::nserver::DecodeResult decode(cops::nserver::RequestContext& ctx,
                                     cops::ByteBuffer& in) override {
    // 100-continue latch for the request currently dripping in (decode
    // fires needs_continue on every incomplete attempt).
    auto& state = ctx.app_state();
    if (!state) state = std::make_shared<bool>(false);
    auto* continue_sent = static_cast<bool*>(state.get());
    cops::http::HttpRequest request;
    cops::http::ParseEvents events;
    switch (cops::http::parse_request(in, request, {}, events)) {
      case cops::http::ParseOutcome::kIncomplete:
        if (events.needs_continue && !*continue_sent) {
          *continue_sent = true;
          ctx.send("HTTP/1.1 100 Continue\r\n\r\n");
        }
        return cops::nserver::DecodeResult::need_more();
      case cops::http::ParseOutcome::kMalformed:
        return cops::nserver::DecodeResult::error();
      case cops::http::ParseOutcome::kReject:
        // Deterministic rejection (CL+TE, bad chunk framing, ...): answer
        // with the status the parser chose and close — never forward
        // ambiguous framing upstream.
        return cops::nserver::DecodeResult::reject(
            cops::http::make_error_response(events.reject_status,
                                            /*keep_alive=*/false)
                .serialize());
      case cops::http::ParseOutcome::kComplete:
        *continue_sent = false;
        return cops::nserver::DecodeResult::request_ready(std::move(request));
    }
    return cops::nserver::DecodeResult::error();
  }

  void handle(cops::nserver::RequestContext& ctx, std::any request) override {
    const auto req = std::any_cast<cops::http::HttpRequest>(std::move(request));
    const bool keep_alive = req.keep_alive();
    // Blocking upstream round trip on this worker (sync completion model).
    auto upstream = fetch_upstream(host_, port_, req);
    if (!keep_alive) ctx.close_after_reply();
    if (upstream.empty()) {
      ctx.reply_raw(cops::http::make_error_response(
                        cops::http::StatusCode::kServiceUnavailable,
                        keep_alive)
                        .serialize());
      return;
    }
    // The upstream answered with Connection: close framing; since we know
    // the full body, forward it with our own keep-alive framing.
    ctx.reply_raw(upstream);
    if (keep_alive) ctx.close_after_reply();  // body framing is close-based
  }

 private:
  std::string host_;
  uint16_t port_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::puts("http_proxy LISTEN_PORT UPSTREAM_HOST UPSTREAM_PORT [--once]");
    return 2;
  }
  auto options = cops::nserver::ServerOptions{};
  options.listen_port = static_cast<uint16_t>(std::atoi(argv[1]));
  options.separate_processor_pool = true;                              // O2
  options.completion = cops::nserver::CompletionMode::kSynchronous;    // O4
  options.thread_allocation = cops::nserver::ThreadAllocation::kDynamic;  // O5
  options.min_processor_threads = 2;
  options.max_processor_threads = 16;
  options.shutdown_long_idle = true;                                   // O7
  options.idle_timeout = std::chrono::seconds(30);

  auto hooks = std::make_shared<ProxyHooks>(
      argv[2], static_cast<uint16_t>(std::atoi(argv[3])));
  cops::nserver::Server server(options, hooks);
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("HTTP proxy on 127.0.0.1:%u → %s:%s\n", server.port(), argv[2],
              argv[3]);
  if (argc > 4 && std::string(argv[4]) == "--once") {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    server.drain(std::chrono::seconds(2));
    return 0;
  }
  while (true) std::this_thread::sleep_for(std::chrono::seconds(1));
}
