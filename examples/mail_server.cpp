// Minimal SMTP receiving server — the paper's "the pattern can be used to
// generate a mail server" claim, demonstrated.
//
// Implements the RFC 5321 happy path (HELO/EHLO, MAIL FROM, RCPT TO, DATA,
// RSET, NOOP, QUIT) and stores accepted messages in memory.  Note how the
// DATA state lives in the per-connection app_state and how multi-line input
// is handled entirely inside the Decode hook.
//
//   $ ./mail_server 2525 &
//   $ printf 'HELO me\r\nMAIL FROM:<a@x>\r\nRCPT TO:<b@y>\r\nDATA\r\nHi\r\n.\r\nQUIT\r\n' | nc 127.0.0.1 2525
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.hpp"
#include "nserver/request_context.hpp"
#include "nserver/server.hpp"

namespace {

struct Message {
  std::string from;
  std::vector<std::string> recipients;
  std::string body;
};

struct SmtpSession {
  bool greeted = false;
  bool in_data = false;
  Message draft;
};

class MailStore {
 public:
  void deliver(Message message) {
    std::lock_guard lock(mutex_);
    messages_.push_back(std::move(message));
  }
  [[nodiscard]] size_t count() const {
    std::lock_guard lock(mutex_);
    return messages_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Message> messages_;
};

class SmtpHooks : public cops::nserver::AppHooks {
 public:
  void on_connect(cops::nserver::RequestContext& ctx) override {
    ctx.send("220 cops-mail ESMTP ready\r\n");
    ctx.app_state() = std::make_shared<SmtpSession>();
  }

  cops::nserver::DecodeResult decode(cops::nserver::RequestContext&,
                                     cops::ByteBuffer& in) override {
    const size_t eol = in.find("\r\n");
    if (eol == std::string_view::npos) {
      return in.readable() > 4096 ? cops::nserver::DecodeResult::error()
                                  : cops::nserver::DecodeResult::need_more();
    }
    std::string line(in.view().substr(0, eol));
    in.consume(eol + 2);
    return cops::nserver::DecodeResult::request_ready(std::move(line));
  }

  void handle(cops::nserver::RequestContext& ctx, std::any request) override {
    auto line = std::any_cast<std::string>(std::move(request));
    auto session = std::static_pointer_cast<SmtpSession>(ctx.app_state());
    if (!session) {  // direct pipelined client before on_connect state
      session = std::make_shared<SmtpSession>();
      ctx.app_state() = session;
    }

    // DATA mode: accumulate until the lone-dot terminator.
    if (session->in_data) {
      if (line == ".") {
        session->in_data = false;
        store_.deliver(std::move(session->draft));
        session->draft = {};
        ctx.reply_raw("250 OK: queued\r\n");
      } else {
        if (!line.empty() && line[0] == '.') line.erase(0, 1);  // dot-stuffing
        session->draft.body += line;
        session->draft.body += '\n';
        ctx.finish();  // no per-line reply during DATA
      }
      return;
    }

    const auto upper = cops::to_upper(line.substr(0, line.find(' ')));
    if (upper == "HELO" || upper == "EHLO") {
      session->greeted = true;
      ctx.reply_raw("250 cops-mail at your service\r\n");
    } else if (upper == "MAIL") {
      session->draft.from = std::string(cops::trim(
          line.size() > 10 ? std::string_view(line).substr(10) : ""));
      ctx.reply_raw("250 OK\r\n");
    } else if (upper == "RCPT") {
      session->draft.recipients.emplace_back(cops::trim(
          line.size() > 8 ? std::string_view(line).substr(8) : ""));
      ctx.reply_raw("250 OK\r\n");
    } else if (upper == "DATA") {
      if (session->draft.recipients.empty()) {
        ctx.reply_raw("503 RCPT first\r\n");
      } else {
        session->in_data = true;
        ctx.reply_raw("354 End data with <CR><LF>.<CR><LF>\r\n");
      }
    } else if (upper == "RSET") {
      session->draft = {};
      session->in_data = false;
      ctx.reply_raw("250 OK\r\n");
    } else if (upper == "NOOP") {
      ctx.reply_raw("250 OK\r\n");
    } else if (upper == "QUIT") {
      ctx.close_after_reply();
      ctx.reply_raw("221 Bye\r\n");
    } else {
      ctx.reply_raw("502 Command not implemented\r\n");
    }
  }

  [[nodiscard]] size_t delivered() const { return store_.count(); }

 private:
  MailStore store_;
};

}  // namespace

int main(int argc, char** argv) {
  cops::nserver::ServerOptions options;
  options.separate_processor_pool = true;
  options.processor_threads = 2;
  options.shutdown_long_idle = true;  // SMTP sessions should not linger
  options.idle_timeout = std::chrono::seconds(60);
  options.listen_port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  auto hooks = std::make_shared<SmtpHooks>();
  cops::nserver::Server server(options, hooks);
  auto status = server.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("SMTP server on 127.0.0.1:%u\n", server.port());
  if (argc > 2 && std::string(argv[2]) == "--once") {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::printf("delivered: %zu message(s)\n", hooks->delivered());
    server.stop();
    return 0;
  }
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(10));
    std::printf("delivered so far: %zu message(s)\n", hooks->delivered());
  }
}
