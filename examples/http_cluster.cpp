// Distributed COPS-HTTP — the paper's future work (Section VI) running on
// loopback: an event-driven load balancer in front of N worker Web servers,
// with the cluster resilience layer (health checks, circuit breaking,
// bounded retry, graceful drain) switchable from the command line.
//
//   $ ./http_cluster --root ./htdocs --workers 3 --port 8080 --resilient
//   $ curl http://127.0.0.1:8080/index.html
//   $ curl http://127.0.0.1:9090/stats        # balancer admin endpoint
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"

int main(int argc, char** argv) {
  std::string doc_root = ".";
  int workers = 2;
  uint16_t port = 0;
  uint16_t admin_port = 0;
  int run_seconds = 0;
  bool resilient = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--root") {
      doc_root = next();
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--admin-port") {
      admin_port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--resilient") {
      resilient = true;
    } else if (arg == "--run-seconds") {
      run_seconds = std::atoi(next());
    } else {
      std::puts("http_cluster [--root DIR] [--workers N] [--port N] "
                "[--admin-port N] [--resilient] [--run-seconds N]");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Worker fleet (each its own N-Server instance; on real hardware these
  // would be separate workstations).  With --resilient each worker exposes
  // its admin endpoint so the balancer's HTTP health probes have a /healthz
  // to hit — the same endpoint that flips to 503 during drain or overload.
  std::vector<std::unique_ptr<cops::http::CopsHttpServer>> fleet;
  cops::http::HttpServerConfig config;
  config.doc_root = doc_root;
  for (int i = 0; i < workers; ++i) {
    auto options = cops::http::CopsHttpServer::default_options();
    if (resilient) {
      options.profiling = true;
      options.stats_export = cops::nserver::StatsExport::kAdminHttp;
      options.admin_port = 0;  // kernel-assigned
      options.overload_control = true;
      options.overload_shed = true;  // 503 + Retry-After instead of hanging
    }
    fleet.push_back(std::make_unique<cops::http::CopsHttpServer>(
        std::move(options), config));
    auto status = fleet.back()->start();
    if (!status.is_ok()) {
      std::fprintf(stderr, "worker %d failed: %s\n", i,
                   status.to_string().c_str());
      return 1;
    }
  }

  cops::cluster::LoadBalancerConfig balancer_config;
  balancer_config.listen_port = port;
  balancer_config.policy = cops::cluster::BalancePolicy::kLeastConnections;
  if (resilient) {
    auto& r = balancer_config.resilience;
    r.enabled = true;
    r.health_checks = true;
    r.health_http = true;  // GET /healthz against each worker's admin port
    r.health_interval = std::chrono::seconds(2);
    r.slow_start_window = std::chrono::seconds(5);
    balancer_config.admin_enabled = true;
    balancer_config.admin_port = admin_port;
    balancer_config.event_listener = [](const std::string& event) {
      std::printf("[resilience] %s\n", event.c_str());
    };
  }
  cops::cluster::LoadBalancer balancer(balancer_config);
  for (auto& worker : fleet) {
    if (resilient) {
      balancer.add_backend(
          cops::net::InetAddress::loopback(worker->port()),
          cops::net::InetAddress::loopback(worker->admin_port()));
    } else {
      balancer.add_backend(cops::net::InetAddress::loopback(worker->port()));
    }
  }
  auto status = balancer.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "balancer failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("distributed COPS-HTTP: %d workers behind 127.0.0.1:%u\n",
              workers, balancer.port());
  if (resilient) {
    std::printf("balancer admin: http://127.0.0.1:%u/stats\n",
                balancer.admin_port());
  }

  auto report = [&] {
    const auto stats = balancer.backend_stats();
    for (size_t i = 0; i < stats.size(); ++i) {
      std::printf(
          "  worker %zu: %llu connections (%zu active, %llu refused)%s%s\n",
          i, static_cast<unsigned long long>(stats[i].connections),
          stats[i].active,
          static_cast<unsigned long long>(stats[i].connect_failures),
          stats[i].healthy ? "" : " UNHEALTHY",
          stats[i].breaker == cops::cluster::BreakerState::kClosed
              ? ""
              : " BREAKER-TRIPPED");
    }
  };
  if (run_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(run_seconds));
    report();
    balancer.stop();
    for (auto& worker : fleet) worker->stop();
    return 0;
  }
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(10));
    report();
  }
}
