// Distributed COPS-HTTP — the paper's future work (Section VI) running on
// loopback: an event-driven load balancer in front of N worker Web servers.
//
//   $ ./http_cluster --root ./htdocs --workers 3 --port 8080
//   $ curl http://127.0.0.1:8080/index.html
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "http/http_server.hpp"

int main(int argc, char** argv) {
  std::string doc_root = ".";
  int workers = 2;
  uint16_t port = 0;
  int run_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--root") {
      doc_root = next();
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--run-seconds") {
      run_seconds = std::atoi(next());
    } else {
      std::puts("http_cluster [--root DIR] [--workers N] [--port N] "
                "[--run-seconds N]");
      return arg == "--help" ? 0 : 2;
    }
  }

  // Worker fleet (each its own N-Server instance; on real hardware these
  // would be separate workstations).
  std::vector<std::unique_ptr<cops::http::CopsHttpServer>> fleet;
  cops::http::HttpServerConfig config;
  config.doc_root = doc_root;
  for (int i = 0; i < workers; ++i) {
    fleet.push_back(std::make_unique<cops::http::CopsHttpServer>(
        cops::http::CopsHttpServer::default_options(), config));
    auto status = fleet.back()->start();
    if (!status.is_ok()) {
      std::fprintf(stderr, "worker %d failed: %s\n", i,
                   status.to_string().c_str());
      return 1;
    }
  }

  cops::cluster::LoadBalancerConfig balancer_config;
  balancer_config.listen_port = port;
  balancer_config.policy = cops::cluster::BalancePolicy::kLeastConnections;
  cops::cluster::LoadBalancer balancer(balancer_config);
  for (auto& worker : fleet) {
    balancer.add_backend(cops::net::InetAddress::loopback(worker->port()));
  }
  auto status = balancer.start();
  if (!status.is_ok()) {
    std::fprintf(stderr, "balancer failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("distributed COPS-HTTP: %d workers behind 127.0.0.1:%u\n",
              workers, balancer.port());

  auto report = [&] {
    const auto stats = balancer.backend_stats();
    for (size_t i = 0; i < stats.size(); ++i) {
      std::printf("  worker %zu: %llu connections (%zu active, %llu refused)\n",
                  i, static_cast<unsigned long long>(stats[i].connections),
                  stats[i].active,
                  static_cast<unsigned long long>(stats[i].connect_failures));
    }
  };
  if (run_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(run_seconds));
    report();
    balancer.stop();
    for (auto& worker : fleet) worker->stop();
    return 0;
  }
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(10));
    report();
  }
}
